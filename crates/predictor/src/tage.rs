//! TAGE: TAgged GEometric-history-length branch predictor.
//!
//! A from-scratch implementation of the TAGE component of TAGE-SC-L
//! (Seznec, CBP-2016 winner): a bimodal base predictor plus `N` tagged
//! tables indexed by geometrically increasing folded global history.
//! Includes the standard machinery — alternate prediction, the
//! `use_alt_on_na` newly-allocated policy, useful-bit management with
//! periodic graceful reset, and randomized entry allocation on
//! mispredictions.

use br_isa::Pc;

use crate::history::{GlobalHistory, HistoryCheckpoint};
use crate::inline_vec::InlineVec;
use crate::traits::{ConditionalPredictor, PredMeta, Prediction, PredictorCheckpoint};

/// Hard cap on tagged tables: sized for the unlimited (MTAGE-like)
/// configuration so [`TageMeta`]'s per-table lists stay inline.
pub const MAX_TAGE_TABLES: usize = 20;

/// Configuration for a [`Tage`] predictor.
#[derive(Clone, Debug)]
pub struct TageConfig {
    /// Number of tagged tables.
    pub num_tables: usize,
    /// Shortest geometric history length.
    pub min_hist: u32,
    /// Longest geometric history length.
    pub max_hist: u32,
    /// log2 entries of each tagged table.
    pub table_log2: u32,
    /// Tag width in bits for tagged tables.
    pub tag_bits: u32,
    /// log2 entries of the bimodal base table.
    pub bimodal_log2: u32,
    /// Graceful useful-bit reset period (in updates).
    pub reset_period: u64,
    /// Capacity of the global history ring (power of two, > 2×max_hist).
    pub history_capacity: usize,
}

impl TageConfig {
    /// A ~64 KB-class configuration (12 tables, histories 4..1000).
    #[must_use]
    pub fn kb64() -> Self {
        TageConfig {
            num_tables: 12,
            min_hist: 4,
            max_hist: 1000,
            table_log2: 11,
            tag_bits: 12,
            bimodal_log2: 14,
            reset_period: 256 * 1024,
            history_capacity: 4096,
        }
    }

    /// A ~80 KB-class configuration: the 64 KB tables scaled up ~25%.
    /// The paper uses this to show that *more TAGE storage barely helps*
    /// on data-dependent branches (§5.2).
    #[must_use]
    pub fn kb80() -> Self {
        TageConfig {
            num_tables: 13,
            min_hist: 4,
            max_hist: 1200,
            table_log2: 11,
            tag_bits: 13,
            bimodal_log2: 15,
            reset_period: 256 * 1024,
            history_capacity: 4096,
        }
    }

    /// An MTAGE-like unlimited-storage configuration (CBP-2016 unlimited
    /// track winner analogue): many large, wide-tagged tables and very
    /// long histories.
    #[must_use]
    pub fn unlimited() -> Self {
        TageConfig {
            num_tables: 20,
            min_hist: 4,
            max_hist: 3000,
            table_log2: 16,
            tag_bits: 16,
            bimodal_log2: 18,
            reset_period: 1024 * 1024,
            history_capacity: 8192,
        }
    }

    /// The geometric history length of tagged table `i` (0-based, shortest
    /// first).
    #[must_use]
    pub fn history_length(&self, i: usize) -> u32 {
        if self.num_tables == 1 {
            return self.min_hist;
        }
        let ratio = f64::from(self.max_hist) / f64::from(self.min_hist);
        let exp = i as f64 / (self.num_tables - 1) as f64;
        (f64::from(self.min_hist) * ratio.powf(exp)).round() as u32
    }

    /// Total storage in KiB implied by this configuration.
    #[must_use]
    pub fn storage_kib(&self) -> f64 {
        let tagged_bits =
            self.num_tables as u64 * (1u64 << self.table_log2) * (u64::from(self.tag_bits) + 3 + 2);
        let bimodal_bits = (1u64 << self.bimodal_log2) * 2;
        (tagged_bits + bimodal_bits) as f64 / 8.0 / 1024.0
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TaggedEntry {
    ctr: i8, // 3-bit signed: -4..=3
    tag: u16,
    u: u8, // 2-bit useful
}

/// Prediction-time metadata latched for training. Kept `Copy` (inline
/// per-table lists) so predicting never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TageMeta {
    /// Per-table indices computed at prediction time.
    pub indices: InlineVec<u32, MAX_TAGE_TABLES>,
    /// Per-table tags computed at prediction time.
    pub tags: InlineVec<u16, MAX_TAGE_TABLES>,
    /// Provider table (`None` = bimodal provided).
    pub provider: Option<usize>,
    /// Alternate-prediction table (`None` = bimodal).
    pub alt_table: Option<usize>,
    /// Direction the provider gave.
    pub provider_taken: bool,
    /// Direction the alternate gave.
    pub alt_taken: bool,
    /// Whether the final TAGE output used the alternate.
    pub used_alt: bool,
    /// Bimodal index.
    pub bimodal_index: usize,
    /// Whether the provider entry was a weak (newly-allocated-like) one.
    pub weak_provider: bool,
}

/// The TAGE predictor. See module docs.
pub struct Tage {
    cfg: TageConfig,
    bimodal: Vec<u8>, // 2-bit counters
    tables: Vec<Vec<TaggedEntry>>,
    hist: GlobalHistory,
    idx_fold: Vec<usize>,
    tag_fold0: Vec<usize>,
    tag_fold1: Vec<usize>,
    use_alt_on_na: i8, // 4-bit signed counter
    lfsr: u32,
    updates: u64,
}

impl std::fmt::Debug for Tage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tage")
            .field("tables", &self.cfg.num_tables)
            .field("updates", &self.updates)
            .finish()
    }
}

impl Tage {
    /// Builds a TAGE predictor from `cfg`.
    #[must_use]
    pub fn new(cfg: TageConfig) -> Self {
        assert!(
            cfg.num_tables <= MAX_TAGE_TABLES,
            "at most {MAX_TAGE_TABLES} tagged tables supported"
        );
        let mut hist = GlobalHistory::new(cfg.history_capacity);
        let mut idx_fold = Vec::new();
        let mut tag_fold0 = Vec::new();
        let mut tag_fold1 = Vec::new();
        for i in 0..cfg.num_tables {
            let hl = cfg.history_length(i);
            idx_fold.push(hist.add_folded(hl, cfg.table_log2));
            tag_fold0.push(hist.add_folded(hl, cfg.tag_bits));
            tag_fold1.push(hist.add_folded(hl, cfg.tag_bits - 1));
        }
        Tage {
            bimodal: vec![2; 1 << cfg.bimodal_log2], // weakly taken
            tables: vec![vec![TaggedEntry::default(); 1 << cfg.table_log2]; cfg.num_tables],
            hist,
            idx_fold,
            tag_fold0,
            tag_fold1,
            use_alt_on_na: 0,
            lfsr: 0xace1,
            updates: 0,
            cfg,
        }
    }

    fn rand_bit(&mut self) -> bool {
        // 16-bit Galois LFSR: deterministic, cheap allocation tie-breaking.
        let lsb = self.lfsr & 1;
        self.lfsr >>= 1;
        if lsb != 0 {
            self.lfsr ^= 0xB400;
        }
        lsb != 0
    }

    fn table_index(&self, pc: Pc, i: usize) -> usize {
        let mask = (1usize << self.cfg.table_log2) - 1;
        let hl = self.cfg.history_length(i) as u64;
        let folded = u64::from(self.hist.folded(self.idx_fold[i]));
        let path = self.hist.path() & ((1 << hl.min(16)) - 1);
        ((pc ^ (pc >> (self.cfg.table_log2 as u64 - i as u64 % 4))
            ^ folded
            ^ (path >> (i as u64 & 3))) as usize)
            & mask
    }

    fn table_tag(&self, pc: Pc, i: usize) -> u16 {
        let mask = (1u32 << self.cfg.tag_bits) - 1;
        let f0 = self.hist.folded(self.tag_fold0[i]);
        let f1 = self.hist.folded(self.tag_fold1[i]) << 1;
        ((pc as u32) ^ f0 ^ f1) as u16 & mask as u16
    }

    fn bimodal_index(&self, pc: Pc) -> usize {
        (pc as usize) & ((1 << self.cfg.bimodal_log2) - 1)
    }

    fn bimodal_taken(&self, idx: usize) -> bool {
        self.bimodal[idx] >= 2
    }

    /// Computes the metadata and raw TAGE decision for `pc` without
    /// touching any state. Exposed so TAGE-SC-L can wrap it.
    #[must_use]
    pub fn lookup(&self, pc: Pc) -> (bool, TageMeta) {
        let n = self.cfg.num_tables;
        let mut indices = InlineVec::new();
        let mut tags = InlineVec::new();
        for i in 0..n {
            indices.push(self.table_index(pc, i) as u32);
            tags.push(self.table_tag(pc, i));
        }
        // Longest-history match provides; next match (or bimodal) is alt.
        let mut provider = None;
        let mut alt_table = None;
        for i in (0..n).rev() {
            if self.tables[i][indices[i] as usize].tag == tags[i] {
                if provider.is_none() {
                    provider = Some(i);
                } else {
                    alt_table = Some(i);
                    break;
                }
            }
        }
        let bimodal_index = self.bimodal_index(pc);
        let bimodal_dir = self.bimodal_taken(bimodal_index);
        let alt_taken = alt_table.map_or(bimodal_dir, |t| {
            self.tables[t][indices[t] as usize].ctr >= 0
        });
        let (provider_taken, weak_provider) = match provider {
            Some(t) => {
                let e = &self.tables[t][indices[t] as usize];
                (e.ctr >= 0, (2 * i32::from(e.ctr) + 1).abs() == 1)
            }
            None => (bimodal_dir, false),
        };
        let used_alt = provider.is_some() && weak_provider && self.use_alt_on_na >= 0;
        let taken = if provider.is_none() {
            bimodal_dir
        } else if used_alt {
            alt_taken
        } else {
            provider_taken
        };
        (
            taken,
            TageMeta {
                indices,
                tags,
                provider,
                alt_table,
                provider_taken,
                alt_taken,
                used_alt,
                bimodal_index,
                weak_provider,
            },
        )
    }

    fn update_bimodal(&mut self, idx: usize, taken: bool) {
        let c = &mut self.bimodal[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn update_ctr(e: &mut TaggedEntry, taken: bool) {
        if taken {
            e.ctr = (e.ctr + 1).min(3);
        } else {
            e.ctr = (e.ctr - 1).max(-4);
        }
    }

    /// Trains TAGE with the resolved outcome using prediction-time `meta`.
    /// `final_taken` is the direction TAGE itself predicted (for useful-bit
    /// bookkeeping).
    pub fn train(&mut self, taken: bool, tage_taken: bool, meta: &TageMeta) {
        self.updates += 1;
        // Graceful useful-bit reset.
        if self.updates.is_multiple_of(self.cfg.reset_period) {
            let phase_hi = (self.updates / self.cfg.reset_period).is_multiple_of(2);
            for t in &mut self.tables {
                for e in t.iter_mut() {
                    e.u &= if phase_hi { 0b01 } else { 0b10 };
                }
            }
        }

        // use_alt_on_na: track whether alt beats a weak provider.
        if let Some(p) = meta.provider {
            if meta.weak_provider && meta.provider_taken != meta.alt_taken {
                let delta = if meta.alt_taken == taken { 1 } else { -1 };
                self.use_alt_on_na = (self.use_alt_on_na + delta).clamp(-8, 7);
            }
            // Useful bit: provider differed from alt and was right.
            if meta.provider_taken != meta.alt_taken {
                let e = &mut self.tables[p][meta.indices[p] as usize];
                if meta.provider_taken == taken {
                    e.u = (e.u + 1).min(3);
                } else {
                    e.u = e.u.saturating_sub(1);
                }
            }
            // Train provider counter; train alt too if provider was weak
            // and alt was used.
            let e = &mut self.tables[p][meta.indices[p] as usize];
            Self::update_ctr(e, taken);
            if meta.used_alt {
                match meta.alt_table {
                    Some(a) => {
                        Self::update_ctr(&mut self.tables[a][meta.indices[a] as usize], taken);
                    }
                    None => self.update_bimodal(meta.bimodal_index, taken),
                }
            }
        } else {
            self.update_bimodal(meta.bimodal_index, taken);
        }

        // Allocate on a misprediction, in a table with longer history.
        if tage_taken != taken {
            let start = meta.provider.map_or(0, |p| p + 1);
            if start < self.cfg.num_tables {
                // Random skip of up to 2 tables avoids ping-pong allocation.
                let mut first = start;
                if self.rand_bit() && first + 1 < self.cfg.num_tables {
                    first += 1;
                    if self.rand_bit() && first + 1 < self.cfg.num_tables {
                        first += 1;
                    }
                }
                let mut allocated = false;
                for i in first..self.cfg.num_tables {
                    let idx = meta.indices[i] as usize;
                    if self.tables[i][idx].u == 0 {
                        self.tables[i][idx] = TaggedEntry {
                            ctr: if taken { 0 } else { -1 },
                            tag: meta.tags[i],
                            u: 0,
                        };
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    for i in start..self.cfg.num_tables {
                        let idx = meta.indices[i] as usize;
                        let e = &mut self.tables[i][idx];
                        e.u = e.u.saturating_sub(1);
                    }
                }
            }
        }
    }

    /// The configuration this predictor was built with.
    #[must_use]
    pub fn config(&self) -> &TageConfig {
        &self.cfg
    }

    /// Read-only access to the global history (TAGE-SC-L shares it).
    #[must_use]
    pub fn history(&self) -> &GlobalHistory {
        &self.hist
    }

    /// Pushes a speculative outcome into the global history.
    pub fn push_history(&mut self, pc: Pc, taken: bool) {
        self.hist.push(pc, taken);
    }

    /// Checkpoints the speculative history.
    #[must_use]
    pub fn history_checkpoint(&self) -> HistoryCheckpoint {
        self.hist.checkpoint()
    }

    /// Checkpoints the speculative history into an existing buffer.
    pub fn history_checkpoint_into(&self, cp: &mut HistoryCheckpoint) {
        self.hist.checkpoint_into(cp);
    }

    /// Restores a speculative-history checkpoint.
    pub fn restore_history(&mut self, cp: &HistoryCheckpoint) {
        self.hist.restore(cp);
    }
}

impl ConditionalPredictor for Tage {
    fn name(&self) -> &'static str {
        "tage"
    }

    fn predict(&mut self, pc: Pc) -> Prediction {
        let (taken, meta) = self.lookup(pc);
        Prediction {
            taken,
            low_confidence: meta.weak_provider || meta.provider.is_none(),
            meta: PredMeta::Tage(meta),
        }
    }

    fn update_history(&mut self, pc: Pc, taken: bool) {
        self.push_history(pc, taken);
    }

    fn checkpoint(&self) -> PredictorCheckpoint {
        PredictorCheckpoint::History(self.hist.checkpoint())
    }

    fn checkpoint_into(&self, cp: &mut PredictorCheckpoint) {
        match cp {
            PredictorCheckpoint::History(h) => self.hist.checkpoint_into(h),
            _ => *cp = self.checkpoint(),
        }
    }

    fn restore(&mut self, cp: &PredictorCheckpoint) {
        match cp {
            PredictorCheckpoint::History(h) => self.hist.restore(h),
            _ => panic!("checkpoint type mismatch for Tage"),
        }
    }

    fn train(&mut self, _pc: Pc, taken: bool, pred: &Prediction) {
        match &pred.meta {
            PredMeta::Tage(meta) => self.train(taken, pred.taken, meta),
            _ => panic!("metadata type mismatch for Tage"),
        }
    }

    fn storage_kib(&self) -> f64 {
        self.cfg.storage_kib()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tage {
        Tage::new(TageConfig {
            num_tables: 6,
            min_hist: 4,
            max_hist: 128,
            table_log2: 9,
            tag_bits: 9,
            bimodal_log2: 10,
            reset_period: 1 << 20,
            history_capacity: 1024,
        })
    }

    /// Drives the full fetch protocol for one branch outcome.
    fn step(p: &mut Tage, pc: Pc, taken: bool) -> bool {
        let pred = ConditionalPredictor::predict(p, pc);
        let hit = pred.taken == taken;
        p.update_history(pc, taken);
        ConditionalPredictor::train(p, pc, taken, &pred);
        hit
    }

    #[test]
    fn geometric_lengths_monotonic() {
        let cfg = TageConfig::kb64();
        let mut prev = 0;
        for i in 0..cfg.num_tables {
            let l = cfg.history_length(i);
            assert!(l > prev, "table {i} length {l} not > {prev}");
            prev = l;
        }
        assert_eq!(cfg.history_length(0), cfg.min_hist);
        assert_eq!(cfg.history_length(cfg.num_tables - 1), cfg.max_hist);
    }

    #[test]
    fn storage_estimates_sane() {
        assert!((50.0..90.0).contains(&TageConfig::kb64().storage_kib()));
        assert!(TageConfig::kb80().storage_kib() > TageConfig::kb64().storage_kib());
        assert!(TageConfig::unlimited().storage_kib() > 1000.0);
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = small();
        let mut correct = 0;
        for i in 0..200 {
            if step(&mut p, 0x40, true) && i >= 8 {
                correct += 1;
            }
        }
        assert!(correct >= 190, "biased branch learned slowly: {correct}");
    }

    #[test]
    fn learns_history_pattern_bimodal_cannot() {
        // Alternating T/N branch: bimodal ~50%, TAGE should approach 100%.
        let mut p = small();
        let mut correct = 0;
        for i in 0..2000 {
            let taken = i % 2 == 0;
            if step(&mut p, 0x88, taken) && i >= 1000 {
                correct += 1;
            }
        }
        assert!(correct >= 950, "pattern not learned: {correct}/1000");
    }

    #[test]
    fn learns_long_correlation() {
        // Branch B's outcome equals branch A's outcome 8 branches earlier.
        let mut p = small();
        let mut x: u64 = 12345;
        let mut pending = std::collections::VecDeque::new();
        let mut correct = 0;
        let mut total = 0;
        for i in 0..6000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a_taken = x & 1 == 1;
            step(&mut p, 0x100, a_taken);
            pending.push_back(a_taken);
            // 6 noise-free filler branches.
            for f in 0..6 {
                step(&mut p, 0x200 + f, true);
            }
            if pending.len() > 1 {
                let b_taken = pending.pop_front().unwrap();
                let hit = step(&mut p, 0x300, b_taken);
                if i >= 3000 {
                    total += 1;
                    if hit {
                        correct += 1;
                    }
                }
            }
        }
        // The signal (one history bit 14 back) is learnable but the two
        // interleaved random branches churn this deliberately small
        // configuration's tables; well above chance is the requirement.
        assert!(
            correct as f64 / total as f64 > 0.8,
            "correlated branch: {correct}/{total}"
        );
    }

    #[test]
    fn cannot_learn_data_dependent_random() {
        // The motivating case: outcomes are uncorrelated to history.
        let mut p = small();
        let mut x: u64 = 999;
        let mut correct = 0;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // ~50/50 random direction.
            if step(&mut p, 0x500, x & 2 == 2) {
                correct += 1;
            }
        }
        let rate = correct as f64 / 4000.0;
        assert!(
            (0.40..0.62).contains(&rate),
            "TAGE should be near chance on random branches, got {rate}"
        );
    }

    #[test]
    fn checkpoint_restore_round_trips_prediction() {
        let mut p = small();
        for i in 0..300 {
            step(&mut p, 0x40 + (i % 7), i % 3 == 0);
        }
        let cp = ConditionalPredictor::checkpoint(&p);
        let before = ConditionalPredictor::predict(&mut p, 0x77).taken;
        for i in 0..40 {
            p.update_history(0x600 + i, i % 2 == 0);
        }
        ConditionalPredictor::restore(&mut p, &cp);
        let after = ConditionalPredictor::predict(&mut p, 0x77).taken;
        assert_eq!(before, after);
    }
}
