//! TAGE-SC-L: the composed predictor used as the paper's baseline.
//!
//! Composition order follows Seznec's CBP-2016 design: TAGE produces a
//! direction; the statistical corrector may invert a statistically weak
//! one; a confident loop predictor overrides both.

use br_isa::Pc;

use crate::loop_pred::{LoopPredictor, LoopPredictorConfig};
use crate::sc::{StatisticalCorrector, StatisticalCorrectorConfig};
use crate::tage::{Tage, TageConfig};
use crate::traits::{ConditionalPredictor, PredMeta, Prediction, PredictorCheckpoint};

/// Configuration for [`TageScl`].
#[derive(Clone, Debug)]
pub struct TageSclConfig {
    /// TAGE component configuration.
    pub tage: TageConfig,
    /// Statistical-corrector configuration.
    pub sc: StatisticalCorrectorConfig,
    /// Loop-predictor configuration.
    pub loop_pred: LoopPredictorConfig,
    /// Display name (storage class).
    pub name: &'static str,
}

impl TageSclConfig {
    /// The paper's baseline: 64 KB-class TAGE-SC-L.
    #[must_use]
    pub fn kb64() -> Self {
        TageSclConfig {
            tage: TageConfig::kb64(),
            sc: StatisticalCorrectorConfig::default(),
            loop_pred: LoopPredictorConfig::default(),
            name: "tage-sc-l-64kb",
        }
    }

    /// The 80 KB-class variant used in Figure 10 (same storage as Mini
    /// Branch Runahead added to the 64 KB baseline).
    #[must_use]
    pub fn kb80() -> Self {
        TageSclConfig {
            tage: TageConfig::kb80(),
            sc: StatisticalCorrectorConfig::default(),
            loop_pred: LoopPredictorConfig::default(),
            name: "tage-sc-l-80kb",
        }
    }

    /// MTAGE-SC analogue: unlimited-storage history-based predictor
    /// (Figure 1 / Figure 11 comparison point).
    #[must_use]
    pub fn unlimited() -> Self {
        TageSclConfig {
            tage: TageConfig::unlimited(),
            sc: StatisticalCorrectorConfig {
                table_log2: 14,
                history_lengths: vec![4, 8, 13, 20, 32, 50],
                tage_weight: 6,
                threshold: 10,
            },
            loop_pred: LoopPredictorConfig {
                log2_entries: 9,
                ..LoopPredictorConfig::default()
            },
            name: "mtage-unlimited",
        }
    }
}

/// The TAGE-SC-L predictor.
pub struct TageScl {
    tage: Tage,
    sc: StatisticalCorrector,
    loop_pred: LoopPredictor,
    name: &'static str,
}

impl std::fmt::Debug for TageScl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TageScl").field("name", &self.name).finish()
    }
}

impl TageScl {
    /// Builds TAGE-SC-L from `cfg`.
    #[must_use]
    pub fn new(cfg: TageSclConfig) -> Self {
        TageScl {
            tage: Tage::new(cfg.tage),
            sc: StatisticalCorrector::new(cfg.sc),
            loop_pred: LoopPredictor::new(cfg.loop_pred),
            name: cfg.name,
        }
    }
}

impl ConditionalPredictor for TageScl {
    fn name(&self) -> &'static str {
        self.name
    }

    fn predict(&mut self, pc: Pc) -> Prediction {
        let (tage_taken, tage_meta) = self.tage.lookup(pc);
        let sc = self.sc.lookup(pc, tage_taken);
        let loop_lookup = self.loop_pred.lookup(pc);
        let (taken, loop_used, loop_taken) = match loop_lookup {
            Some(l) if l.confident => (l.taken, true, l.taken),
            _ => (sc.taken, false, false),
        };
        let low_confidence = tage_meta.weak_provider || tage_meta.provider.is_none();
        Prediction {
            taken,
            low_confidence: low_confidence && !loop_used,
            meta: PredMeta::TageScl {
                tage: tage_meta,
                tage_taken,
                loop_used,
                loop_taken,
                sc_inverted: sc.inverted,
                sc_indices: sc.indices,
                sc_sum: sc.sum,
            },
        }
    }

    fn update_history(&mut self, pc: Pc, taken: bool) {
        self.tage.push_history(pc, taken);
        self.sc.push_history(pc, taken);
        self.loop_pred.spec_update(pc, taken);
    }

    fn checkpoint(&self) -> PredictorCheckpoint {
        PredictorCheckpoint::Composite {
            tage: self.tage.history_checkpoint(),
            sc: self.sc.checkpoint(),
            loop_spec: self.loop_pred.spec_checkpoint(),
        }
    }

    fn checkpoint_into(&self, cp: &mut PredictorCheckpoint) {
        match cp {
            PredictorCheckpoint::Composite {
                tage,
                sc,
                loop_spec,
            } => {
                self.tage.history_checkpoint_into(tage);
                self.sc.checkpoint_into(sc);
                self.loop_pred.spec_checkpoint_into(loop_spec);
            }
            _ => *cp = self.checkpoint(),
        }
    }

    fn restore(&mut self, cp: &PredictorCheckpoint) {
        match cp {
            PredictorCheckpoint::Composite {
                tage,
                sc,
                loop_spec,
            } => {
                self.tage.restore_history(tage);
                self.sc.restore(sc);
                self.loop_pred.spec_restore(loop_spec);
            }
            _ => panic!("checkpoint type mismatch for TageScl"),
        }
    }

    fn train(&mut self, pc: Pc, taken: bool, pred: &Prediction) {
        let PredMeta::TageScl {
            tage,
            tage_taken,
            loop_used,
            sc_indices,
            sc_sum,
            ..
        } = &pred.meta
        else {
            panic!("metadata type mismatch for TageScl");
        };
        self.tage.train(taken, *tage_taken, tage);
        self.sc.train(taken, pred.taken, sc_indices, *sc_sum);
        // The loop predictor allocates on branches the rest of the
        // predictor mispredicts and trains on everything it tracks.
        let mispredicted = pred.taken != taken;
        self.loop_pred.train(pc, taken, mispredicted && !loop_used);
    }

    fn storage_kib(&self) -> f64 {
        self.tage.storage_kib() + self.sc.storage_kib() + self.loop_pred.storage_kib()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(p: &mut TageScl, pc: Pc, taken: bool) -> bool {
        let pred = p.predict(pc);
        let hit = pred.taken == taken;
        p.update_history(pc, taken);
        p.train(pc, taken, &pred);
        hit
    }

    #[test]
    fn storage_classes_ordered() {
        let p64 = TageScl::new(TageSclConfig::kb64());
        let p80 = TageScl::new(TageSclConfig::kb80());
        let pu = TageScl::new(TageSclConfig::unlimited());
        assert!(p64.storage_kib() < p80.storage_kib());
        assert!(p80.storage_kib() < pu.storage_kib());
    }

    #[test]
    fn learns_long_fixed_loop_via_loop_predictor() {
        // Trip count 40 exceeds what the tagged tables track comfortably in
        // a small config; the loop predictor should nail the exit.
        let mut p = TageScl::new(TageSclConfig::kb64());
        let mut wrong_late = 0;
        for round in 0..60 {
            for i in 0..=40 {
                let taken = i < 40;
                let hit = step(&mut p, 0x1000, taken);
                if round >= 30 && !hit {
                    wrong_late += 1;
                }
            }
        }
        assert!(
            wrong_late <= 30,
            "loop exits still mispredicted {wrong_late} times after warmup"
        );
    }

    #[test]
    fn near_chance_on_data_dependent_branch() {
        let mut p = TageScl::new(TageSclConfig::kb64());
        let mut x: u64 = 0xdead;
        let mut correct = 0;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if step(&mut p, 0x2000, x & 4 == 4) {
                correct += 1;
            }
        }
        let rate = correct as f64 / 4000.0;
        assert!(
            (0.38..0.64).contains(&rate),
            "TAGE-SC-L should hover near chance on random outcomes: {rate}"
        );
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let mut p = TageScl::new(TageSclConfig::kb64());
        for i in 0..500 {
            step(&mut p, 0x30 + (i % 5), i % 3 != 0);
        }
        let cp = p.checkpoint();
        let before = p.predict(0x42).taken;
        for i in 0..30 {
            p.update_history(0x900 + i, i % 2 == 0);
        }
        p.restore(&cp);
        assert_eq!(p.predict(0x42).taken, before);
    }
}
