//! The Chain Extraction Buffer (§4.3, Figure 9): a circular buffer of the
//! most recently retired micro-ops, searched backwards by chain extraction.

use std::collections::VecDeque;

use br_isa::{Pc, RegSet, Uop, Width};
use br_ooo::RetiredUop;

/// A retired uop as held in the CEB: the static uop plus the dynamic facts
/// extraction needs (memory address, branch direction).
#[derive(Clone, Copy, Debug)]
pub struct CebRecord {
    /// Dynamic sequence number (monotonic).
    pub seq: u64,
    /// The static uop.
    pub uop: Uop,
    /// Registers written.
    pub dsts: RegSet,
    /// Registers read.
    pub srcs: RegSet,
    /// Memory access: `(address, width, is_store)`.
    pub mem: Option<(u64, Width, bool)>,
    /// Resolved direction for conditional branches.
    pub taken: Option<bool>,
}

impl CebRecord {
    /// Builds a record from a retired uop.
    #[must_use]
    pub fn from_retired(r: &RetiredUop) -> Self {
        CebRecord {
            seq: r.seq,
            uop: r.uop,
            dsts: r.uop.dsts(),
            srcs: r.uop.srcs(),
            mem: r.rec.mem.map(|m| (m.addr, m.width, m.is_store)),
            taken: if r.uop.is_cond_branch() {
                r.rec.branch.map(|b| b.actual_taken)
            } else {
                None
            },
        }
    }
}

/// The circular retired-uop buffer (512 entries in the Mini config).
#[derive(Clone, Debug)]
pub struct ChainExtractionBuffer {
    capacity: usize,
    buf: VecDeque<CebRecord>,
}

impl ChainExtractionBuffer {
    /// Creates a buffer holding the last `capacity` retired uops.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CEB capacity must be nonzero");
        ChainExtractionBuffer {
            capacity,
            buf: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends a retired uop, evicting the oldest if full.
    pub fn push(&mut self, rec: CebRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(rec);
    }

    /// Number of buffered uops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The records, oldest first.
    #[must_use]
    pub fn as_slices(&self) -> (&[CebRecord], &[CebRecord]) {
        self.buf.as_slices()
    }

    /// Iterates newest-to-oldest (the direction of the backwards dataflow
    /// walk).
    pub fn iter_backwards(&self) -> impl Iterator<Item = &CebRecord> {
        self.buf.iter().rev()
    }

    /// Index (from the back, 0 = newest) of the newest record with `pc`,
    /// if present.
    #[must_use]
    pub fn newest_instance_of(&self, pc: Pc) -> Option<usize> {
        self.iter_backwards().position(|r| r.uop.pc == pc)
    }

    /// Validates structural invariants: occupancy within capacity and
    /// circular ordering (sequence numbers strictly increase oldest to
    /// newest).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.buf.len() > self.capacity {
            return Err(format!(
                "ceb: {} records exceed capacity {}",
                self.buf.len(),
                self.capacity
            ));
        }
        let mut prev: Option<u64> = None;
        for r in &self.buf {
            if let Some(p) = prev {
                if r.seq <= p {
                    return Err(format!(
                        "ceb: sequence {} not after {p} (circular order broken)",
                        r.seq
                    ));
                }
            }
            prev = Some(r.seq);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_isa::UopKind;

    fn rec(seq: u64, pc: Pc) -> CebRecord {
        CebRecord {
            seq,
            uop: Uop {
                pc,
                kind: UopKind::Nop,
            },
            dsts: RegSet::empty(),
            srcs: RegSet::empty(),
            mem: None,
            taken: None,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ceb = ChainExtractionBuffer::new(3);
        for i in 0..5 {
            ceb.push(rec(i, i));
        }
        assert_eq!(ceb.len(), 3);
        let pcs: Vec<Pc> = ceb.iter_backwards().map(|r| r.uop.pc).collect();
        assert_eq!(pcs, vec![4, 3, 2]);
    }

    #[test]
    fn newest_instance_lookup() {
        let mut ceb = ChainExtractionBuffer::new(8);
        for (i, pc) in [10u64, 20, 10, 30].iter().enumerate() {
            ceb.push(rec(i as u64, *pc));
        }
        assert_eq!(ceb.newest_instance_of(10), Some(1), "newest 10 is 1 back");
        assert_eq!(ceb.newest_instance_of(30), Some(0));
        assert_eq!(ceb.newest_instance_of(99), None);
    }
}
