//! GAP benchmark suite-like graph kernels.
//!
//! The GAP workloads (run with `-g 19 -n 300` in the paper) are dominated
//! by data-dependent branches over graph structure: visited checks,
//! label compares, distance relaxations. These kernels stream a synthetic
//! edge list whose destinations are uniformly random vertices — the same
//! "load a random vertex's state and branch on it" pattern, which MTAGE
//! cannot predict (Figure 11's GAP columns) but dependence chains can.

use br_isa::{reg, Cond, MemOperand, MemoryImage, ProgramBuilder};

use crate::util::{emit_do_work, pow2_scale, XorShift64};
use crate::workload::{Suite, Workload, WorkloadImage, WorkloadParams};

const EDGES: u64 = 0x100_0000;
const VSTATE: u64 = 0x200_0000;
const VAUX: u64 = 0x300_0000;

/// Writes a random edge-destination array and a vertex-state array.
fn graph_data(
    seed: u64,
    vertices: u64,
    edges: u64,
    state_gen: impl Fn(&mut XorShift64) -> u64,
) -> MemoryImage {
    let mut rng = XorShift64::new(seed);
    let mut mem = MemoryImage::new();
    let dst: Vec<u64> = (0..edges).map(|_| rng.below(vertices)).collect();
    mem.write_u64_slice(EDGES, &dst);
    let st: Vec<u64> = (0..vertices).map(|_| state_gen(&mut rng)).collect();
    mem.write_u64_slice(VSTATE, &st);
    mem
}

/// Emits the edge-stream prologue: `r3` walks the edge list sequentially,
/// `r6` receives the (random) destination vertex.
fn emit_edge_walk(b: &mut ProgramBuilder, edges: u64) {
    b.addi(reg::R3, reg::R3, 1);
    b.and(reg::R3, reg::R3, (edges - 1) as i64);
    b.load(reg::R6, MemOperand::base_index(reg::R12, reg::R3, 8, 0));
}

/// `cc`: connected components (Shiloach–Vishkin flavour). Compares the
/// labels of an edge's endpoints; the guarded path writes the smaller
/// label forward (store → future loads).
#[derive(Clone, Copy, Debug, Default)]
pub struct Cc;

impl Workload for Cc {
    fn name(&self) -> &'static str {
        "cc"
    }

    fn suite(&self) -> Suite {
        Suite::Gap
    }

    fn description(&self) -> &'static str {
        "connected components: label compare with guarded propagation store"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let v = pow2_scale(params.scale * 8, 1024);
        let e = v * 4;
        let mut mem = graph_data(params.seed ^ 0x6363, v, e, |r| r.below(1 << 24));
        // Second endpoint per edge.
        let mut rng = XorShift64::new(params.seed ^ 0x6363_0002);
        let src: Vec<u64> = (0..e).map(|_| rng.below(v)).collect();
        mem.write_u64_slice(VAUX, &src);

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R3, 0);
        b.mov_imm(reg::R12, EDGES as i64);
        b.mov_imm(reg::R14, VSTATE as i64);
        b.mov_imm(reg::R15, VAUX as i64);
        let top = b.here();
        emit_edge_walk(&mut b, e);
        b.load(reg::R5, MemOperand::base_index(reg::R15, reg::R3, 8, 0));
        // lu = label[u]; lv = label[v]; if (lu < lv) label[v] = lu
        b.load(reg::R7, MemOperand::base_index(reg::R14, reg::R5, 8, 0));
        b.load(reg::R4, MemOperand::base_index(reg::R14, reg::R6, 8, 0));
        b.cmp(reg::R7, reg::R4);
        b.br(Cond::Uge, skip);
        b.store(MemOperand::base_index(reg::R14, reg::R6, 8, 0), reg::R7);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        emit_do_work(&mut b, 3);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("cc assembles").into(),
            memory: mem,
        }
    }
}

/// `bfs`: breadth-first search frontier expansion — the canonical GAP
/// hard branch: "is this random neighbour already visited?"
#[derive(Clone, Copy, Debug, Default)]
pub struct Bfs;

impl Workload for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn suite(&self) -> Suite {
        Suite::Gap
    }

    fn description(&self) -> &'static str {
        "BFS: visited-check on a randomly-destined edge, guarded mark store"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let v = pow2_scale(params.scale * 4, 1024);
        let e = v * 2;
        // ~40% of vertices pre-visited; guarded stores mark more.
        let mem = graph_data(params.seed ^ 0x0062_6673, v, e, |r| {
            u64::from(r.below(5) < 2)
        });

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R3, 0);
        b.mov_imm(reg::R12, EDGES as i64);
        b.mov_imm(reg::R14, VSTATE as i64);
        let top = b.here();
        emit_edge_walk(&mut b, e);
        // if (!visited[v]) { visited[v] = 1; frontier++ }
        b.load(reg::R7, MemOperand::base_index(reg::R14, reg::R6, 8, 0));
        b.cmpi(reg::R7, 0);
        b.br(Cond::Ne, skip);
        b.mov_imm(reg::R4, 1);
        b.store(MemOperand::base_index(reg::R14, reg::R6, 8, 0), reg::R4);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        emit_do_work(&mut b, 3);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("bfs assembles").into(),
            memory: mem,
        }
    }
}

/// `tc`: triangle counting via sorted-adjacency intersection — the
/// two-pointer merge branch, whose direction also steers its own index
/// updates (a self-affecting branch).
#[derive(Clone, Copy, Debug, Default)]
pub struct Tc;

impl Workload for Tc {
    fn name(&self) -> &'static str {
        "tc"
    }

    fn suite(&self) -> Suite {
        Suite::Gap
    }

    fn description(&self) -> &'static str {
        "triangle counting: two-pointer intersection compare (self-affecting)"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let n = pow2_scale(params.scale, 256);
        let mut rng = XorShift64::new(params.seed ^ 0x7463);
        let mut mem = MemoryImage::new();
        // Two sorted random sequences (cumulative gaps).
        for (base, salt) in [(EDGES, 1u64), (VSTATE, 2)] {
            let mut acc = salt;
            let seq: Vec<u64> = (0..n)
                .map(|_| {
                    acc += 1 + rng.below(4);
                    acc
                })
                .collect();
            mem.write_u64_slice(base, &seq);
        }

        let mut b = ProgramBuilder::new();
        let advance_b = b.new_label();
        let after = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R3, 0); // i
        b.mov_imm(reg::R5, 0); // j
        b.mov_imm(reg::R12, EDGES as i64);
        b.mov_imm(reg::R14, VSTATE as i64);
        let top = b.here();
        // a = A[i]; b = B[j]; if (a < b) i++ else j++
        b.load(reg::R6, MemOperand::base_index(reg::R12, reg::R3, 8, 0));
        b.load(reg::R7, MemOperand::base_index(reg::R14, reg::R5, 8, 0));
        b.cmp(reg::R6, reg::R7);
        b.br(Cond::Uge, advance_b);
        b.addi(reg::R3, reg::R3, 1);
        b.and(reg::R3, reg::R3, (n - 1) as i64);
        b.jmp(after);
        b.bind(advance_b);
        b.addi(reg::R5, reg::R5, 1);
        b.and(reg::R5, reg::R5, (n - 1) as i64);
        b.bind(after);
        emit_do_work(&mut b, 3);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("tc assembles").into(),
            memory: mem,
        }
    }
}

/// `bc`: betweenness centrality accumulation — a visited-style check on a
/// path-count parity, with a guarded update store.
#[derive(Clone, Copy, Debug, Default)]
pub struct Bc;

impl Workload for Bc {
    fn name(&self) -> &'static str {
        "bc"
    }

    fn suite(&self) -> Suite {
        Suite::Gap
    }

    fn description(&self) -> &'static str {
        "betweenness: branch on loaded path-count parity with guarded update"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let v = pow2_scale(params.scale * 8, 1024);
        let e = v * 4;
        let mem = graph_data(params.seed ^ 0x6263, v, e, |r| r.below(1 << 16));

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R3, 0);
        b.mov_imm(reg::R12, EDGES as i64);
        b.mov_imm(reg::R14, VSTATE as i64);
        let top = b.here();
        emit_edge_walk(&mut b, e);
        // sigma = sig[v]; if (sigma & 1) { sig[v] = sigma + 3 }
        b.load(reg::R7, MemOperand::base_index(reg::R14, reg::R6, 8, 0));
        b.and(reg::R4, reg::R7, 1i64);
        b.cmpi(reg::R4, 0);
        b.br(Cond::Eq, skip);
        b.addi(reg::R7, reg::R7, 3);
        b.store(MemOperand::base_index(reg::R14, reg::R6, 8, 0), reg::R7);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        emit_do_work(&mut b, 3);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("bc assembles").into(),
            memory: mem,
        }
    }
}

/// `pr`: PageRank — per-vertex convergence test comparing a scaled loaded
/// rank against a loaded threshold (a 2-load + arithmetic slice).
#[derive(Clone, Copy, Debug, Default)]
pub struct Pr;

impl Workload for Pr {
    fn name(&self) -> &'static str {
        "pr"
    }

    fn suite(&self) -> Suite {
        Suite::Gap
    }

    fn description(&self) -> &'static str {
        "PageRank: convergence compare of scaled rank vs per-vertex threshold"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let v = pow2_scale(params.scale * 8, 1024);
        let e = v * 4;
        let mut mem = graph_data(params.seed ^ 0x7072, v, e, |r| r.below(1 << 20));
        let mut rng = XorShift64::new(params.seed ^ 0x7072_0002);
        let thr: Vec<u64> = (0..v).map(|_| rng.below(1 << 18)).collect();
        mem.write_u64_slice(VAUX, &thr);

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R3, 0);
        b.mov_imm(reg::R12, EDGES as i64);
        b.mov_imm(reg::R14, VSTATE as i64);
        b.mov_imm(reg::R15, VAUX as i64);
        let top = b.here();
        emit_edge_walk(&mut b, e);
        // delta = rank[v] >> 2; if (delta > thr[v]) active++
        b.load(reg::R7, MemOperand::base_index(reg::R14, reg::R6, 8, 0));
        b.shr(reg::R7, reg::R7, 2i64);
        b.load(reg::R4, MemOperand::base_index(reg::R15, reg::R6, 8, 0));
        b.cmp(reg::R7, reg::R4);
        b.br(Cond::Ult, skip);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        emit_do_work(&mut b, 3);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("pr assembles").into(),
            memory: mem,
        }
    }
}

/// `sssp`: single-source shortest paths — the relaxation test
/// `dist[u] + w < dist[v]` over random edges, with the guarded
/// distance-update store.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sssp;

impl Workload for Sssp {
    fn name(&self) -> &'static str {
        "sssp"
    }

    fn suite(&self) -> Suite {
        Suite::Gap
    }

    fn description(&self) -> &'static str {
        "SSSP: distance relaxation compare with guarded update store"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let v = pow2_scale(params.scale * 8, 1024);
        let e = v * 4;
        let mut mem = graph_data(params.seed ^ 0x7373, v, e, |r| r.below(1 << 20));
        let mut rng = XorShift64::new(params.seed ^ 0x7373_0002);
        let src: Vec<u64> = (0..e).map(|_| rng.below(v)).collect();
        mem.write_u64_slice(VAUX, &src);

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R3, 0);
        b.mov_imm(reg::R12, EDGES as i64);
        b.mov_imm(reg::R14, VSTATE as i64);
        b.mov_imm(reg::R15, VAUX as i64);
        let top = b.here();
        emit_edge_walk(&mut b, e);
        b.load(reg::R5, MemOperand::base_index(reg::R15, reg::R3, 8, 0));
        // du = dist[u]; dv = dist[v]; w = (u ^ v) & 63
        b.load(reg::R7, MemOperand::base_index(reg::R14, reg::R5, 8, 0));
        b.load(reg::R4, MemOperand::base_index(reg::R14, reg::R6, 8, 0));
        b.xor(reg::R9, reg::R5, reg::R6);
        b.and(reg::R9, reg::R9, 63i64);
        b.add(reg::R7, reg::R7, reg::R9);
        // if (du + w < dv) dist[v] = du + w
        b.cmp(reg::R7, reg::R4);
        b.br(Cond::Uge, skip);
        b.store(MemOperand::base_index(reg::R14, reg::R6, 8, 0), reg::R7);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        emit_do_work(&mut b, 3);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("sssp assembles").into(),
            memory: mem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_isa::Machine;

    fn run(w: &dyn Workload, iters: u64, seed: u64) -> Machine {
        let image = w.build(&WorkloadParams {
            scale: 512,
            iterations: iters,
            seed,
        });
        let mut m = Machine::new(image.memory.into_memory());
        m.run(&image.program, 5_000_000).unwrap();
        assert!(m.halted());
        m
    }

    #[test]
    fn bfs_frontier_shrinks_over_time() {
        // Visited marks accumulate, so the not-visited branch rate decays —
        // run long and confirm fewer discoveries than probes.
        let m = run(&Bfs, 4000, 3);
        let found = m.reg(reg::R2);
        assert!(found > 500, "BFS should discover vertices: {found}");
        assert!(found < 3500, "visited marking must suppress rediscovery");
    }

    #[test]
    fn sssp_relaxations_monotone() {
        let m = run(&Sssp, 3000, 5);
        let relaxed = m.reg(reg::R2);
        assert!(relaxed > 200, "relaxations should fire: {relaxed}");
        assert!(relaxed < 2800, "distances only shrink, rate must damp");
    }

    #[test]
    fn tc_two_pointer_advances_both() {
        let image = Tc.build(&WorkloadParams {
            scale: 512,
            iterations: 2000,
            seed: 9,
        });
        let mut m = Machine::new(image.memory.into_memory());
        m.run(&image.program, 5_000_000).unwrap();
        let (i, j) = (m.reg(reg::R3), m.reg(reg::R5));
        // Both pointers advance (mod mask); total advances = iterations.
        assert!(i > 0 && j > 0, "both sides must advance: i={i} j={j}");
    }

    #[test]
    fn cc_propagation_converges() {
        let m = run(&Cc, 4000, 7);
        let props = m.reg(reg::R2);
        assert!(props > 300, "label propagation should fire: {props}");
    }
}
