//! Profiles the branch character of every workload kernel: per-site
//! execution counts, taken rates, and outcome flip rates — the evidence
//! that each kernel really contains the hard-to-predict, data-dependent
//! branches its SPEC/GAP counterpart is known for.
//!
//! ```text
//! cargo run --release --example workload_report
//! ```

use std::collections::HashMap;

use branch_runahead::isa::Machine;
use branch_runahead::workloads::{all_workloads, WorkloadParams};

fn main() {
    let params = WorkloadParams {
        scale: 4096,
        iterations: 5_000,
        seed: 0x1eaf,
    };
    println!(
        "{:<14}{:>9}{:>10}{:>9}{:>8}{:>8}  hardest-branch profile",
        "workload", "suite", "uops/iter", "branches", "taken%", "flip%"
    );
    for w in all_workloads() {
        let image = w.build(&params);
        let mut m = Machine::new(image.memory.into_memory());
        let mut outcomes: HashMap<u64, Vec<bool>> = HashMap::new();
        while !m.halted() && m.steps() < 3_000_000 {
            let rec = m.step(&image.program, None).expect("kernel runs");
            if let Some(b) = rec.branch {
                if image.program.fetch(rec.pc).is_some_and(br_isa_is_cond) {
                    outcomes.entry(rec.pc).or_default().push(b.actual_taken);
                }
            }
        }
        // The hardest branch = highest flip rate among frequently executed.
        let hardest = outcomes
            .iter()
            .filter(|(_, v)| v.len() > 200)
            .map(|(pc, v)| {
                let taken = v.iter().filter(|t| **t).count() as f64 / v.len() as f64;
                let flips = v.windows(2).filter(|w| w[0] != w[1]).count() as f64
                    / (v.len() - 1).max(1) as f64;
                (*pc, v.len(), taken, flips)
            })
            .max_by(|a, b| a.3.total_cmp(&b.3));
        let uops_per_iter = m.steps() as f64 / params.iterations as f64;
        match hardest {
            Some((pc, n, taken, flips)) => println!(
                "{:<14}{:>9}{:>10.1}{:>9}{:>8.1}{:>8.1}  pc {:#06x} ({} execs)",
                w.name(),
                w.suite().to_string(),
                uops_per_iter,
                outcomes.len(),
                taken * 100.0,
                flips * 100.0,
                pc,
                n
            ),
            None => println!("{:<14} (no frequent branches?)", w.name()),
        }
    }
    println!(
        "\nA history predictor caps out near max(taken%, 100-taken%); a flip rate\n\
         far from 0/100 with taken% near 50 is the 'impossible to predict' zone\n\
         the paper targets."
    );
}

fn br_isa_is_cond(u: &branch_runahead::isa::Uop) -> bool {
    u.is_cond_branch()
}
