//! Simulation configurations (paper Tables 1 and 2).

use br_core::BranchRunaheadConfig;
use br_mem::MemoryConfig;
use br_ooo::CoreConfig;
use br_predictor::{Bimodal, ConditionalPredictor, Gshare, TageScl, TageSclConfig};
use br_telemetry::TelemetryConfig;

/// Which baseline predictor the core uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredictorKind {
    /// 64 KB TAGE-SC-L (the paper's baseline, Table 1).
    TageScl64,
    /// 80 KB TAGE-SC-L (Figure 10's iso-storage comparison).
    TageScl80,
    /// MTAGE-SC analogue with unlimited storage (Figures 1 and 11).
    MtageUnlimited,
    /// Gshare (diagnostics only).
    Gshare,
    /// Bimodal (diagnostics only).
    Bimodal,
}

impl PredictorKind {
    /// Instantiates the predictor.
    #[must_use]
    pub fn build(self) -> Box<dyn ConditionalPredictor> {
        match self {
            PredictorKind::TageScl64 => Box::new(TageScl::new(TageSclConfig::kb64())),
            PredictorKind::TageScl80 => Box::new(TageScl::new(TageSclConfig::kb80())),
            PredictorKind::MtageUnlimited => Box::new(TageScl::new(TageSclConfig::unlimited())),
            PredictorKind::Gshare => Box::new(Gshare::new(16)),
            PredictorKind::Bimodal => Box::new(Bimodal::new(14)),
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::TageScl64 => "tage-sc-l-64kb",
            PredictorKind::TageScl80 => "tage-sc-l-80kb",
            PredictorKind::MtageUnlimited => "mtage-unlimited",
            PredictorKind::Gshare => "gshare",
            PredictorKind::Bimodal => "bimodal",
        }
    }
}

/// A complete system configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Core parameters (Table 1 defaults).
    pub core: CoreConfig,
    /// Memory hierarchy parameters (Table 1 defaults).
    pub memory: MemoryConfig,
    /// Baseline predictor.
    pub predictor: PredictorKind,
    /// Branch Runahead; `None` = baseline system.
    pub runahead: Option<BranchRunaheadConfig>,
    /// Retired-uop budget per run (the SimPoint-region analogue; the paper
    /// runs 200 M instructions per region, this reproduction defaults to
    /// a proportionally scaled-down region).
    pub max_retired: u64,
    /// Hard cycle cap (safety net).
    pub max_cycles: u64,
    /// Telemetry collection (disabled by default; when enabled the run
    /// produces a [`crate::RunResult::telemetry`] record).
    pub telemetry: TelemetryConfig,
    /// Run periodic machine-check invariant sweeps over the Branch
    /// Runahead structures; a violation aborts the run with
    /// [`crate::SimError::InvariantViolation`]. Off by default (it costs
    /// a full structure walk per sweep); always on in soak runs.
    pub machine_check: bool,
    /// Fault-injection schedule (see [`crate::faults`]); `None` = clean
    /// run.
    pub faults: Option<crate::faults::FaultSpec>,
}

impl SimConfig {
    /// Baseline: Table 1 core + 64 KB TAGE-SC-L, no Branch Runahead.
    #[must_use]
    pub fn baseline() -> Self {
        SimConfig {
            core: CoreConfig::default(),
            memory: MemoryConfig::default(),
            predictor: PredictorKind::TageScl64,
            runahead: None,
            max_retired: 400_000,
            max_cycles: 40_000_000,
            telemetry: TelemetryConfig::default(),
            machine_check: false,
            faults: None,
        }
    }

    /// Baseline core with the 80 KB TAGE-SC-L (Figure 10's leftmost bar).
    #[must_use]
    pub fn tage80() -> Self {
        SimConfig {
            predictor: PredictorKind::TageScl80,
            ..Self::baseline()
        }
    }

    /// Baseline core with the unlimited MTAGE-SC analogue.
    #[must_use]
    pub fn mtage() -> Self {
        SimConfig {
            predictor: PredictorKind::MtageUnlimited,
            ..Self::baseline()
        }
    }

    /// Core-Only Branch Runahead (9 KB, Table 2).
    #[must_use]
    pub fn core_only_br() -> Self {
        SimConfig {
            runahead: Some(BranchRunaheadConfig::core_only()),
            ..Self::baseline()
        }
    }

    /// Mini Branch Runahead (17 KB, Table 2).
    #[must_use]
    pub fn mini_br() -> Self {
        SimConfig {
            runahead: Some(BranchRunaheadConfig::mini()),
            ..Self::baseline()
        }
    }

    /// Big Branch Runahead (unlimited, Table 2).
    #[must_use]
    pub fn big_br() -> Self {
        SimConfig {
            runahead: Some(BranchRunaheadConfig::big()),
            ..Self::baseline()
        }
    }

    /// MTAGE + Big Branch Runahead (Figure 11 top, right bar).
    #[must_use]
    pub fn mtage_plus_big_br() -> Self {
        SimConfig {
            predictor: PredictorKind::MtageUnlimited,
            runahead: Some(BranchRunaheadConfig::big()),
            ..Self::baseline()
        }
    }

    /// Renders Table 1 (baseline configuration).
    #[must_use]
    pub fn render_table1(&self) -> String {
        let c = &self.core;
        let m = &self.memory;
        format!(
            "Table 1: Baseline Configuration\n\
             Core      | {}-wide issue, {}-entry ROB, {}-entry RS, {} ALUs,\n\
             \x20         | frontend depth {}, redirect latency {}, {} predictor\n\
             WPB       | managed by Branch Runahead (Table 2)\n\
             L1 Caches | {} KB D-cache, {} B lines, {} ports, {}-cycle hit, {}-way, write-back\n\
             L2 Cache  | {} MB {}-way, {}-cycle latency, write-back\n\
             MemQueue  | {}-entry memory queue\n\
             Prefetcher| stream: 64 streams, distance 16, into L2\n\
             DRAM      | {} banks, {} KB rows, tCAS/tRCD/tRP = {}/{}/{} cycles",
            c.issue_width,
            c.rob_entries,
            c.rs_entries,
            c.num_alus,
            c.frontend_depth,
            c.redirect_latency,
            self.predictor.name(),
            m.l1.size_bytes / 1024,
            m.l1.line_bytes,
            c.load_ports,
            m.l1_hit_latency,
            m.l1.ways,
            m.l2.size_bytes / 1024 / 1024,
            m.l2.ways,
            m.l2_hit_latency,
            m.dram.queue_capacity,
            m.dram.banks,
            (1u64 << m.dram.row_log2) / 1024,
            m.dram.t_cas,
            m.dram.t_rcd,
            m.dram.t_rp,
        )
    }
}

/// Renders Table 2 (the three Branch Runahead configurations).
#[must_use]
pub fn render_table2() -> String {
    let cfgs = [
        BranchRunaheadConfig::core_only(),
        BranchRunaheadConfig::mini(),
        BranchRunaheadConfig::big(),
    ];
    let mut s = String::from(
        "Table 2: Branch Runahead Configuration\n\
         field            | core-only | mini | big\n",
    );
    let row = |name: &str, f: &dyn Fn(&BranchRunaheadConfig) -> String| {
        format!(
            "{:<17}| {:>9} | {:>4} | {}\n",
            name,
            f(&cfgs[0]),
            f(&cfgs[1]),
            f(&cfgs[2])
        )
    };
    s += &row("chain cache", &|c| c.chain_cache_entries.to_string());
    s += &row("window (RF+RS)", &|c| c.window_instances.to_string());
    s += &row("dedicated ALUs", &|c| c.dce_alus.to_string());
    s += &row("MSHRs", &|c| c.dce_mshrs.to_string());
    s += &row("pred queues", &|c| {
        format!("{}x{}", c.num_queues, c.queue_entries)
    });
    s += &row("HBT", &|c| c.hbt_entries.to_string());
    s += &row("CEB", &|c| c.ceb_entries.to_string());
    s += &row("max chain len", &|c| c.max_chain_len.to_string());
    s += &row("storage (KiB)", &|c| format!("{:.1}", c.storage_kib()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_construct() {
        for cfg in [
            SimConfig::baseline(),
            SimConfig::tage80(),
            SimConfig::mtage(),
            SimConfig::core_only_br(),
            SimConfig::mini_br(),
            SimConfig::big_br(),
            SimConfig::mtage_plus_big_br(),
        ] {
            cfg.core.validate();
            let _ = cfg.predictor.build();
        }
    }

    #[test]
    fn tables_render() {
        let t1 = SimConfig::baseline().render_table1();
        assert!(t1.contains("256-entry ROB"));
        assert!(t1.contains("92-entry RS"));
        let t2 = render_table2();
        assert!(t2.contains("core-only"));
        assert!(t2.contains("1024"));
    }
}
