//! Property-based validation of dependence-chain extraction (§4.3).
//!
//! For randomly generated steady loops with a data-dependent,
//! control-independent branch, the chain extracted from the retired-uop
//! stream — executed repeatedly the way the DCE executes it, with
//! live-outs feeding the next instance — must predict the *actual* future
//! outcomes of the branch exactly. This is the core semantic guarantee
//! behind the whole system: a chain is the branch's future, computed
//! early.

use std::collections::BTreeSet;

use br_core::{
    extract_chain, extract_chain_with, CebRecord, ChainExtractionBuffer, ChainOp, ChainSrc,
    DependenceChain, ExtractLimits, ExtractScratch,
};
use br_isa::{
    reg, ArchReg, Cond, Flags, JournaledMemory, Machine, MemOperand, MemoryImage, Program,
    ProgramBuilder,
};

/// Registers the generated loop body operates on.
const BODY_REGS: [ArchReg; 4] = [reg::R3, reg::R4, reg::R5, reg::R6];

fn breg(i: u8) -> ArchReg {
    BODY_REGS[i as usize % BODY_REGS.len()]
}

#[derive(Clone, Debug)]
enum BodyOp {
    Add(u8, u8, i8),
    Xor(u8, u8, u8),
    Shr(u8, u8, u8),
    Mul3(u8, u8),
    /// `dst = table[src & mask]` — the data-dependent load.
    Load(u8, u8),
}

/// Deterministic xorshift64 generator for case generation (the container
/// builds hermetically, so no external property-testing dependency).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn body_op(rng: &mut Rng) -> BodyOp {
    match rng.below(5) {
        0 => BodyOp::Add(rng.next() as u8, rng.next() as u8, rng.next() as i8),
        1 => BodyOp::Xor(rng.next() as u8, rng.next() as u8, rng.next() as u8),
        2 => BodyOp::Shr(rng.next() as u8, rng.next() as u8, 1 + rng.below(4) as u8),
        3 => BodyOp::Mul3(rng.next() as u8, rng.next() as u8),
        _ => BodyOp::Load(rng.next() as u8, rng.next() as u8),
    }
}

const TABLE: u64 = 0x8000;
const TABLE_LEN: u64 = 256;

/// Builds a steady loop: random body ops, then `cmp <reg>, <k>` and a
/// branch whose taken target *is* the fall-through (control-independent
/// by construction, so every iteration executes the same uops).
fn build_loop(ops: &[BodyOp], cmp_reg: u8, cmp_k: i8, trips: u64) -> (Program, u64) {
    let mut b = ProgramBuilder::new();
    b.mov_imm(reg::R0, trips as i64);
    b.mov_imm(reg::R12, TABLE as i64);
    for (i, r) in BODY_REGS.iter().enumerate() {
        b.mov_imm(*r, 0x9E37 + (i as i64) * 0x61c8);
    }
    let top = b.here();
    for op in ops {
        match *op {
            BodyOp::Add(d, s, i) => {
                b.addi(breg(d), breg(s), i64::from(i));
            }
            BodyOp::Xor(d, a, x) => {
                b.xor(breg(d), breg(a), breg(x));
            }
            BodyOp::Shr(d, s, k) => {
                b.shr(breg(d), breg(s), i64::from(k));
            }
            BodyOp::Mul3(d, s) => {
                b.mul(breg(d), breg(s), 3i64);
            }
            BodyOp::Load(d, s) => {
                b.and(reg::R14, breg(s), (TABLE_LEN - 1) as i64);
                b.load(breg(d), MemOperand::base_index(reg::R12, reg::R14, 8, 0));
            }
        }
    }
    b.cmpi(breg(cmp_reg), i64::from(cmp_k));
    // The branch's taken target is the next uop: both directions land on
    // the same instruction, so the branch guards nothing.
    let next = b.new_label();
    let branch_pc = b.br(Cond::Lt, next);
    b.bind(next);
    b.subi(reg::R0, reg::R0, 1);
    b.cmpi(reg::R0, 0);
    b.br(Cond::Ne, top);
    b.halt();
    (b.build().expect("generated loop assembles"), branch_pc)
}

fn table_image() -> MemoryImage {
    let mut img = MemoryImage::new();
    let mut x = 0x1234_5678_9abc_def0u64;
    for i in 0..TABLE_LEN {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        img.write(TABLE + i * 8, br_isa::Width::B8, x % 97);
    }
    img
}

/// Reference interpreter for an extracted chain: one DCE instance, with
/// `ctx` playing the role of the inherited architectural context.
fn run_chain_instance(chain: &DependenceChain, ctx: &mut [u64; 16], mem: &JournaledMemory) -> bool {
    let mut locals = [0u64; 64];
    for (a, l) in &chain.live_ins {
        locals[*l as usize] = ctx[a.index()];
    }
    let resolve = |s: &ChainSrc, locals: &[u64; 64]| -> u64 {
        match s {
            ChainSrc::Reg(l) => locals[*l as usize],
            ChainSrc::Imm(v) => *v as u64,
        }
    };
    let mut flags = Flags::default();
    for op in &chain.ops {
        match op {
            ChainOp::Alu {
                op,
                dst,
                src1,
                src2,
            } => {
                locals[*dst as usize] = op.eval(resolve(src1, &locals), resolve(src2, &locals));
            }
            ChainOp::Mov { dst, src } => locals[*dst as usize] = resolve(src, &locals),
            ChainOp::Load {
                dst,
                base,
                index,
                scale,
                disp,
                width,
                signed,
            } => {
                let b = base.as_ref().map_or(0, |s| resolve(s, &locals));
                let x = index.as_ref().map_or(0, |s| resolve(s, &locals));
                let addr = b
                    .wrapping_add(x.wrapping_mul(u64::from(*scale)))
                    .wrapping_add(*disp as u64);
                let raw = mem.read(addr, *width);
                locals[*dst as usize] = if *signed { width.sign_extend(raw) } else { raw };
            }
            ChainOp::Cmp { src1, src2 } => {
                flags = Flags::from_cmp(resolve(src1, &locals), resolve(src2, &locals));
            }
        }
    }
    for (a, binding) in &chain.live_outs {
        ctx[a.index()] = resolve(binding, &locals);
    }
    chain.cond.eval(flags)
}

/// Whether the chain is *self-sustaining*: every live-in is either
/// loop-invariant (the table base) or reproduced by the chain's own
/// live-outs — where "reproduced" requires that the loop body's *last*
/// writer of that register is inside the slice (otherwise the chain's
/// live-out is an intermediate value and replay goes stale: the
/// divergence §3 of the paper describes, which the real system catches
/// with a resync).
fn self_sustaining(chain: &DependenceChain, program: &Program) -> bool {
    chain.live_ins.iter().all(|(a, _)| {
        if *a == reg::R12 {
            return true;
        }
        if chain.live_out_binding(*a).is_none() {
            return false;
        }
        // Find the last static writer of `a` before the branch.
        let last_writer = program
            .iter()
            .filter(|u| u.pc < chain.branch_pc && u.dsts().contains(*a))
            .map(|u| u.pc)
            .max();
        last_writer.is_some_and(|pc| chain.source_pcs.contains(&pc))
    })
}

/// Runs the whole pipeline: functional execution feeding a CEB, chain
/// extraction at iteration `warmup`, then chain replay vs ground truth.
/// Returns `None` when extraction legitimately rejects the slice.
#[allow(clippy::type_complexity)]
fn extraction_predicts_future(
    ops: &[BodyOp],
    cmp_reg: u8,
    cmp_k: i8,
) -> Option<(Vec<bool>, Vec<bool>, bool)> {
    let warmup = 6u32;
    let check = 24u32;
    let (program, branch_pc) = build_loop(ops, cmp_reg, cmp_k, u64::from(warmup + check) + 2);
    let mut m = Machine::new(table_image().into_memory());
    let mut ceb = ChainExtractionBuffer::new(512);

    // Warm up, capturing retired uops.
    let mut seen = 0u32;
    let mut snapshot: Option<[u64; 16]> = None;
    let mut actual = Vec::new();
    while !m.halted() {
        let rec = m.step(&program, None).expect("loop runs");
        let uop = *program.fetch(rec.pc).expect("fetched");
        ceb.push(CebRecord::from_retired(&br_ooo::RetiredUop {
            seq: m.steps(),
            uop,
            rec,
            cycle: m.steps(),
        }));
        if rec.pc == branch_pc {
            seen += 1;
            if seen == warmup {
                snapshot = Some(m.cpu().regs);
            } else if seen > warmup && actual.len() < check as usize {
                actual.push(rec.branch.expect("branch record").actual_taken);
            }
        }
        if snapshot.is_some() && actual.len() >= check as usize {
            break;
        }
    }
    let mut ctx = snapshot?;

    let limits = ExtractLimits {
        max_chain_len: 32,
        local_regs: 24,
    };
    let chain = match extract_chain(&ceb, branch_pc, &BTreeSet::new(), &limits) {
        Ok(c) => c,
        Err(_) => return None, // legitimately rejected (e.g. too long)
    };

    let sustaining = self_sustaining(&chain, &program);
    let predicted: Vec<bool> = (0..actual.len())
        .map(|_| run_chain_instance(&chain, &mut ctx, m.memory()))
        .collect();
    Some((predicted, actual, sustaining))
}

/// The headline invariant, split by chain class:
/// * self-sustaining chains (live-ins reproduced by live-outs) must
///   predict the branch's entire future exactly;
/// * all chains must predict at least the *first* future instance
///   (their live-ins are exact at the synchronization point).
#[test]
fn chain_replay_predicts_branch_future() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0xfeed_f00d ^ (case << 32) ^ case);
        let n_ops = 1 + rng.below(7) as usize;
        let ops: Vec<BodyOp> = (0..n_ops).map(|_| body_op(&mut rng)).collect();
        let cmp_reg = rng.next() as u8;
        let cmp_k = rng.next() as i8;
        if let Some((predicted, actual, sustaining)) =
            extraction_predicts_future(&ops, cmp_reg, cmp_k)
        {
            if sustaining {
                assert_eq!(predicted, actual, "case {case}: {ops:?}");
            } else {
                assert_eq!(
                    predicted[0], actual[0],
                    "case {case}: first instance must be exact: {ops:?}"
                );
            }
        }
    }
}

/// The property must not pass vacuously: this fixed case extracts.
#[test]
fn deterministic_case_extracts_and_predicts() {
    let ops = vec![
        BodyOp::Add(0, 0, 7),
        BodyOp::Load(1, 0),
        BodyOp::Xor(2, 2, 1),
    ];
    let (predicted, actual, sustaining) =
        extraction_predicts_future(&ops, 1, 40).expect("this case must extract");
    assert!(sustaining, "r3 feeds itself: the chain is self-sustaining");
    assert_eq!(predicted.len(), 24);
    assert_eq!(predicted, actual);
    // The branch must actually vary, or the test proves nothing.
    assert!(
        actual.iter().any(|t| *t) && actual.iter().any(|t| !*t),
        "branch is degenerate: {actual:?}"
    );
}

/// Scratch reuse is observationally invisible: running extractions
/// through one long-lived [`ExtractScratch`] — including attempts that
/// *reject* partway through and leave the buffers mid-state — must
/// produce exactly the chains a fresh-buffer [`extract_chain`] produces.
/// This is the contract the engine relies on when it reuses one scratch
/// across every extraction attempt of a run.
#[test]
fn scratch_reuse_matches_fresh_buffers() {
    let mut scratch = ExtractScratch::default();
    let mut compared = 0;
    for case in 0..24u64 {
        let mut rng = Rng::new(0xabad_cafe ^ (case << 24) ^ case);
        let n_ops = 1 + rng.below(7) as usize;
        let ops: Vec<BodyOp> = (0..n_ops).map(|_| body_op(&mut rng)).collect();
        let (program, branch_pc) = build_loop(&ops, rng.next() as u8, rng.next() as i8, 40);

        let mut m = Machine::new(table_image().into_memory());
        let mut ceb = ChainExtractionBuffer::new(512);
        while !m.halted() && m.steps() < 2_000 {
            let rec = m.step(&program, None).expect("loop runs");
            let uop = *program.fetch(rec.pc).expect("fetched");
            ceb.push(CebRecord::from_retired(&br_ooo::RetiredUop {
                seq: m.steps(),
                uop,
                rec,
                cycle: m.steps(),
            }));
        }

        let limits = ExtractLimits {
            max_chain_len: 32,
            local_regs: 24,
        };
        let ag = BTreeSet::new();
        // Interleave rejecting attempts between two real extractions:
        // a missing target aborts at the walk's first stage, and a
        // one-uop cap aborts mid-walk, both leaving the scratch dirty.
        let tight = ExtractLimits {
            max_chain_len: 1,
            local_regs: 24,
        };
        let first = extract_chain_with(&mut scratch, &ceb, branch_pc, &ag, &limits);
        assert!(
            extract_chain_with(&mut scratch, &ceb, 0xdead_0000, &ag, &limits).is_err(),
            "absent target must reject"
        );
        let mid = extract_chain_with(&mut scratch, &ceb, branch_pc, &ag, &tight);
        let second = extract_chain_with(&mut scratch, &ceb, branch_pc, &ag, &limits);

        let reference = extract_chain(&ceb, branch_pc, &ag, &limits);
        assert_eq!(first, reference, "case {case}: first reuse diverged");
        assert_eq!(second, reference, "case {case}: post-reject reuse diverged");
        if let Ok(c) = &reference {
            // The tight-cap interleave must reject whenever the real
            // chain is longer than one uop (it always is: cmp + branch
            // feeders), or match the reference otherwise.
            if c.ops.len() > 1 {
                assert_eq!(mid, Err(br_core::ExtractOutcome::TooLong), "case {case}");
            }
            compared += 1;
        }
    }
    assert!(
        compared >= 12,
        "too few successful extractions to exercise reuse: {compared}/24"
    );
}

/// Measures non-vacuity across a fixed sample of generated cases: most
/// random loops must produce extractable chains.
#[test]
fn extraction_rate_is_high() {
    let mut x = 42u64;
    let mut rng = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut extracted = 0;
    let total = 40;
    for _ in 0..total {
        let n = 1 + (rng() % 6) as usize;
        let ops: Vec<BodyOp> = (0..n)
            .map(|_| match rng() % 5 {
                0 => BodyOp::Add((rng() % 4) as u8, (rng() % 4) as u8, (rng() % 9) as i8),
                1 => BodyOp::Xor((rng() % 4) as u8, (rng() % 4) as u8, (rng() % 4) as u8),
                2 => BodyOp::Shr((rng() % 4) as u8, (rng() % 4) as u8, 1 + (rng() % 4) as u8),
                3 => BodyOp::Mul3((rng() % 4) as u8, (rng() % 4) as u8),
                _ => BodyOp::Load((rng() % 4) as u8, (rng() % 4) as u8),
            })
            .collect();
        if extraction_predicts_future(&ops, (rng() % 4) as u8, (rng() % 64) as i8).is_some() {
            extracted += 1;
        }
    }
    assert!(
        extracted > total / 2,
        "too many rejections for the property to mean anything: {extracted}/{total}"
    );
}
