//! The `figures --bench` performance suite.
//!
//! Runs a fixed matrix of simulation jobs — every workload in the setup
//! under the baseline core and under Mini Branch Runahead — **one at a
//! time on the calling thread**, timing each job's simulation loop in
//! isolation. Workload images are built (and therefore warmed) before the
//! clock starts, so a job's `seconds` is the cost of the cycle loop alone:
//! fetch/rename/issue/retire, predictor lookups, DCE and chain extraction,
//! and the memory system.
//!
//! With the `bench-alloc` cargo feature the binary installs a counting
//! global allocator and each job also reports how many heap allocations
//! the loop performed — the tentpole claim of the allocation-free hot
//! loop is checked by this number staying flat as `max_retired` grows.
//!
//! The report serialises to the JSON consumed by `tools/check_bench.py`,
//! which compares a fresh run against the committed `BENCH_quick.json`
//! and fails CI on a >25% per-job regression.

use br_sim::experiments::ExperimentSetup;
use br_sim::{SimConfig, SimError, SimJob};

/// One timed job of the suite.
#[derive(Clone, Debug)]
pub struct BenchJob {
    /// `workload/config` label.
    pub name: String,
    /// Wall-clock seconds of the simulation loop (image build excluded).
    pub seconds: f64,
    /// Retired uops in the run.
    pub retired_uops: u64,
    /// Simulation throughput: retired uops per wall-clock second.
    pub uops_per_sec: f64,
    /// Heap allocations during the loop (`bench-alloc` builds only).
    pub allocations: Option<u64>,
}

/// The whole suite's results.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Suite flavour: `"quick"` or `"full"`.
    pub suite: String,
    /// Retired-uop budget per job.
    pub max_retired: u64,
    /// Per-job measurements, in suite order.
    pub jobs: Vec<BenchJob>,
    /// Sum of per-job seconds.
    pub total_seconds: f64,
    /// Sum of per-job retired uops.
    pub total_retired_uops: u64,
    /// Reference total seconds for the same suite on a pre-optimisation
    /// build (recorded via `--bench-ref`), if provided.
    pub reference_seconds: Option<f64>,
}

impl BenchReport {
    /// Aggregate throughput across the suite.
    #[must_use]
    pub fn uops_per_sec(&self) -> f64 {
        self.total_retired_uops as f64 / self.total_seconds.max(1e-9)
    }

    /// Speedup versus the recorded reference build, when one was given.
    #[must_use]
    pub fn speedup(&self) -> Option<f64> {
        self.reference_seconds
            .map(|r| r / self.total_seconds.max(1e-9))
    }

    /// Renders the report as the JSON contract of `tools/check_bench.py`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"suite\": \"{}\",\n", self.suite));
        out.push_str(&format!("  \"max_retired\": {},\n", self.max_retired));
        out.push_str("  \"jobs\": [\n");
        for (i, j) in self.jobs.iter().enumerate() {
            let allocs = j
                .allocations
                .map_or_else(|| "null".to_string(), |a| a.to_string());
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"seconds\": {:.4}, \"retired_uops\": {}, \
                 \"uops_per_sec\": {:.0}, \"allocations\": {}}}{}\n",
                j.name,
                j.seconds,
                j.retired_uops,
                j.uops_per_sec,
                allocs,
                if i + 1 < self.jobs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"total_seconds\": {:.4},\n",
            self.total_seconds
        ));
        out.push_str(&format!(
            "  \"total_retired_uops\": {},\n",
            self.total_retired_uops
        ));
        out.push_str(&format!(
            "  \"uops_per_sec\": {:.0},\n",
            self.uops_per_sec()
        ));
        match self.reference_seconds {
            Some(r) => {
                out.push_str(&format!("  \"reference_seconds\": {r:.4},\n"));
                out.push_str(&format!(
                    "  \"speedup_vs_reference\": {:.2}\n",
                    self.speedup().unwrap_or(0.0)
                ));
            }
            None => {
                out.push_str("  \"reference_seconds\": null,\n");
                out.push_str("  \"speedup_vs_reference\": null\n");
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Allocation count since process start (`bench-alloc` builds), else `None`.
fn allocations_now() -> Option<u64> {
    #[cfg(feature = "bench-alloc")]
    {
        Some(crate::alloc_count::allocations())
    }
    #[cfg(not(feature = "bench-alloc"))]
    {
        None
    }
}

/// Runs the suite: `setup.workloads` × {baseline, mini-br}, sequentially.
///
/// `reference_seconds` is recorded verbatim into the report (the total of
/// the same suite measured on a reference build).
///
/// # Errors
///
/// Propagates [`SimError`] from workload resolution or execution.
pub fn run_bench(
    setup: &ExperimentSetup,
    suite: &str,
    reference_seconds: Option<f64>,
) -> Result<BenchReport, SimError> {
    let configs = [SimConfig::baseline(), SimConfig::mini_br()];
    let mut jobs = Vec::new();
    let mut total_seconds = 0.0;
    let mut total_retired = 0u64;
    for workload in &setup.workloads {
        for cfg in &configs {
            let job = SimJob {
                config: cfg.clone(),
                workload: workload.clone(),
                params: setup.params,
                region_seed: 0,
                weight: 1.0,
                max_retired: setup.max_retired,
            };
            // Build (and warm) the image outside the timed section: the
            // bench measures the simulation loop, not kernel generation.
            let img = job.build_image()?;
            let allocs_before = allocations_now();
            let started = std::time::Instant::now();
            let result = job.try_execute(&img)?;
            let seconds = started.elapsed().as_secs_f64();
            let allocations = allocations_now().zip(allocs_before).map(|(a, b)| a - b);
            let retired = result.core.retired_uops;
            total_seconds += seconds;
            total_retired += retired;
            jobs.push(BenchJob {
                name: format!("{workload}/{}", result.config_name),
                seconds,
                retired_uops: retired,
                uops_per_sec: retired as f64 / seconds.max(1e-9),
                allocations,
            });
        }
    }
    Ok(BenchReport {
        suite: suite.to_string(),
        max_retired: setup.max_retired,
        jobs,
        total_seconds,
        total_retired_uops: total_retired,
        reference_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_setup() -> ExperimentSetup {
        let mut setup = ExperimentSetup::quick();
        setup.workloads = vec!["leela_17".into()];
        setup.max_retired = 5_000;
        setup
    }

    #[test]
    fn suite_times_every_job() {
        let report = run_bench(&tiny_setup(), "quick", None).unwrap();
        assert_eq!(report.jobs.len(), 2, "baseline + mini-br per workload");
        for j in &report.jobs {
            assert!(j.seconds > 0.0, "{} must be timed", j.name);
            assert!(j.retired_uops >= 5_000, "{} must retire", j.name);
            assert!(j.uops_per_sec > 0.0);
        }
        assert!(report.total_seconds > 0.0);
        assert!(report.speedup().is_none());
    }

    #[test]
    fn json_is_well_formed_and_carries_reference() {
        let mut report = run_bench(&tiny_setup(), "quick", Some(1.0)).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"suite\": \"quick\""));
        assert!(json.contains("\"reference_seconds\": 1.0000"));
        assert!(json.contains("\"speedup_vs_reference\""));
        assert_eq!(
            json.matches("\"name\"").count(),
            report.jobs.len(),
            "one name per job"
        );
        report.reference_seconds = None;
        assert!(report.to_json().contains("\"reference_seconds\": null"));
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let mut setup = tiny_setup();
        setup.workloads = vec!["bogus".into()];
        assert!(run_bench(&setup, "quick", None).is_err());
    }
}
