//! Workload timeline: run one kernel under Mini Branch Runahead with
//! telemetry enabled and print the time-resolved view the end-of-run
//! totals flatten away — IPC, MPKI, and DCE coverage per sampling
//! interval, plus the event-trace summary.
//!
//! ```text
//! cargo run --release --example workload_timeline [workload] [sample_interval]
//! ```

use branch_runahead::sim::{SimConfig, System};
use branch_runahead::telemetry::{EventKind, TelemetryConfig};
use branch_runahead::workloads::{workload_by_name, WorkloadParams};

/// One-character bar for a value scaled against `max`.
fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    let mut s = "#".repeat(filled.min(width));
    s.push_str(&" ".repeat(width - filled.min(width)));
    s
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "leela_17".into());
    let interval: u64 = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let Some(w) = workload_by_name(&name) else {
        eprintln!("unknown workload {name:?}");
        std::process::exit(1);
    };
    println!("workload: {} — {}", w.name(), w.description());

    let image = w.build(&WorkloadParams::default());
    let mut cfg = SimConfig::mini_br();
    cfg.max_retired = 300_000;
    cfg.telemetry = TelemetryConfig {
        enabled: true,
        sample_interval: interval,
        event_capacity: 65_536,
    };
    let mut result = System::new(cfg, &image).run();
    let run = result.telemetry.take().expect("telemetry was enabled");

    println!(
        "\n{} samples every {} retired uops; overall IPC {:.3}, MPKI {:.2}\n",
        run.samples.len(),
        interval,
        result.ipc(),
        result.mpki()
    );
    let max_mpki = run
        .samples
        .iter()
        .map(|s| s.mpki)
        .fold(f64::EPSILON, f64::max);
    println!(
        "{:>12} {:>8} {:>22} {:>8} {:>8} {:>6}",
        "cycle", "ipc", "mpki", "coverage", "late", "dce"
    );
    for s in &run.samples {
        println!(
            "{:>12} {:>8.3} |{}| {:>5.2} {:>7.1}% {:>7.1}% {:>6}",
            s.cycle,
            s.ipc,
            bar(s.mpki, max_mpki, 14),
            s.mpki,
            s.coverage_rate * 100.0,
            s.late_rate * 100.0,
            s.dce_active
        );
    }

    println!(
        "\nevents ({} traced, {} dropped):",
        run.events.len(),
        run.dropped_events
    );
    for kind in EventKind::ALL {
        let n = run.event_count(kind);
        if n > 0 {
            println!("  {:<14} {n}", kind.name());
        }
    }
    println!("\nfinal counters:");
    for (name, v) in &run.counters {
        println!("  {name:<24} {v}");
    }
}
