//! Branch Runahead statistics (drives Figures 2, 3, 5, 12 and the
//! merge-point accuracy claim).

use std::collections::HashMap;

/// Figure 12's prediction categories for covered branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PredictionCategory {
    /// No chain instance had been activated for this dynamic branch.
    Inactive,
    /// A chain was active but its outcome arrived too late for fetch.
    Late,
    /// A prediction existed but the throttle counter suppressed it.
    Throttled,
    /// A DCE prediction was used and was correct.
    Correct,
    /// A DCE prediction was used and was wrong.
    Incorrect,
}

impl PredictionCategory {
    /// All categories in the paper's stacking order.
    pub const ALL: [PredictionCategory; 5] = [
        PredictionCategory::Inactive,
        PredictionCategory::Late,
        PredictionCategory::Throttled,
        PredictionCategory::Incorrect,
        PredictionCategory::Correct,
    ];
}

/// Aggregate Branch Runahead statistics.
#[derive(Clone, Debug, Default)]
pub struct BrStats {
    /// Chain extraction attempts.
    pub extraction_attempts: u64,
    /// Chains successfully extracted and installed.
    pub chains_extracted: u64,
    /// Extractions rejected, by coarse reason.
    pub extraction_rejects: u64,
    /// Sum of installed chain lengths (uops), for Figure 2.
    pub chain_len_sum: u64,
    /// Installed chains that terminated at an affector/guard branch or
    /// whose target has registered affector/guards (Figure 5).
    pub chains_with_ag: u64,
    /// Uops eliminated by move / store→load elimination.
    pub uops_eliminated: u64,

    /// Chain instances initiated on the DCE.
    pub instances_initiated: u64,
    /// Instances flushed (mispredicted predictive initiation or sync).
    pub instances_flushed: u64,
    /// Instances that completed and produced an outcome.
    pub instances_completed: u64,
    /// Chain uops executed by the DCE (Figure 3's extra uops).
    pub dce_uops: u64,
    /// DCE load uops issued to the memory system.
    pub dce_loads: u64,
    /// Synchronizations (live-in copies from the core).
    pub syncs: u64,

    /// Per-category counts over retired covered branches (Figure 12).
    pub prediction_breakdown: HashMap<PredictionCategory, u64>,

    /// Merge-point predictions made.
    pub merge_points_found: u64,
    /// Merge-point searches that failed.
    pub merge_points_failed: u64,
    /// Merge-point validations performed (diagnostic sampling).
    pub merge_validated: u64,
    /// Of the validated ones, how many were correct.
    pub merge_correct: u64,
    /// Validations of the *static* code-layout heuristic (merge = the
    /// branch's taken target), the prior-work baseline §4.4 compares
    /// against (92% vs 78%).
    pub static_merge_validated: u64,
    /// Of those, how many were correct.
    pub static_merge_correct: u64,
    /// Affector/guard pairs registered in the HBT.
    pub ag_pairs: u64,

    /// Retired covered-branch executions (Figure 12 denominator).
    pub covered_branch_retires: u64,
}

impl BrStats {
    /// Mean installed chain length (Figure 2).
    #[must_use]
    pub fn avg_chain_len(&self) -> f64 {
        if self.chains_extracted == 0 {
            0.0
        } else {
            self.chain_len_sum as f64 / self.chains_extracted as f64
        }
    }

    /// Fraction of chains impacted by affectors/guards (Figure 5).
    #[must_use]
    pub fn ag_fraction(&self) -> f64 {
        if self.chains_extracted == 0 {
            0.0
        } else {
            self.chains_with_ag as f64 / self.chains_extracted as f64
        }
    }

    /// Fraction of covered-branch retires in `cat` (Figure 12 bars).
    #[must_use]
    pub fn category_fraction(&self, cat: PredictionCategory) -> f64 {
        if self.covered_branch_retires == 0 {
            return 0.0;
        }
        let n = self.prediction_breakdown.get(&cat).copied().unwrap_or(0);
        n as f64 / self.covered_branch_retires as f64
    }

    /// Merge-point prediction accuracy over validated samples (§4.4).
    #[must_use]
    pub fn merge_accuracy(&self) -> f64 {
        if self.merge_validated == 0 {
            0.0
        } else {
            self.merge_correct as f64 / self.merge_validated as f64
        }
    }

    /// Accuracy of the static code-layout merge heuristic (prior work).
    #[must_use]
    pub fn static_merge_accuracy(&self) -> f64 {
        if self.static_merge_validated == 0 {
            0.0
        } else {
            self.static_merge_correct as f64 / self.static_merge_validated as f64
        }
    }

    /// Bumps a prediction category counter.
    pub fn count_category(&mut self, cat: PredictionCategory) {
        *self.prediction_breakdown.entry(cat).or_insert(0) += 1;
        self.covered_branch_retires += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_zero_when_empty() {
        let s = BrStats::default();
        assert_eq!(s.avg_chain_len(), 0.0);
        assert_eq!(s.ag_fraction(), 0.0);
        assert_eq!(s.merge_accuracy(), 0.0);
        assert_eq!(s.category_fraction(PredictionCategory::Late), 0.0);
    }

    #[test]
    fn category_fractions_sum_to_one() {
        let mut s = BrStats::default();
        for (cat, n) in [
            (PredictionCategory::Correct, 6),
            (PredictionCategory::Late, 3),
            (PredictionCategory::Inactive, 1),
        ] {
            for _ in 0..n {
                s.count_category(cat);
            }
        }
        let total: f64 = PredictionCategory::ALL
            .iter()
            .map(|c| s.category_fraction(*c))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((s.category_fraction(PredictionCategory::Correct) - 0.6).abs() < 1e-12);
    }
}
