//! Experiment drivers: one function per table/figure of the paper's
//! evaluation (§5). Each returns an [`ExpTable`] whose rows are workloads
//! and whose summary row reproduces the paper's mean.
//!
//! Absolute values differ from the paper (different substrate, scaled
//! regions); the *shape* — orderings, rough factors, crossovers — is the
//! reproduction target. See `EXPERIMENTS.md` at the repository root for
//! the recorded paper-vs-measured comparison.
//!
//! Every driver follows the same job-based discipline: it first
//! *enumerates* the full `(configuration, workload)` matrix it needs, then
//! expands that into [`SimJob`]s (one per SimPoint region) and executes
//! them on the runner — sequentially or across worker threads, chosen by
//! [`ExperimentSetup::threads`]. Table assembly happens afterwards from
//! the ordered results, so output is bit-identical for any thread count.

use br_core::{BranchRunaheadConfig, InitiationMode, PredictionCategory};
use br_energy::{AreaBreakdown, EnergyModel};
use br_telemetry::TelemetryConfig;
use br_workloads::{all_workloads, WorkloadParams};

use crate::config::SimConfig;
use crate::job::{SimError, SimJob};
use crate::runner::{aggregate, run_jobs};
use crate::system::RunResult;
use crate::table::{ExpTable, MeanKind};

pub use crate::table::MeanKind as Mean;

/// Shared experiment parameters.
#[derive(Clone, Debug)]
pub struct ExperimentSetup {
    /// Workload build parameters.
    pub params: WorkloadParams,
    /// Retired-uop budget per run.
    pub max_retired: u64,
    /// Workload names to include (defaults to all 18).
    pub workloads: Vec<String>,
    /// SimPoint-style regions: `(seed, weight)` pairs. The paper runs
    /// one to five representative regions per benchmark and reports the
    /// weighted average; each region here is the kernel rebuilt with a
    /// different seed. Default: a single full-weight region.
    pub regions: Vec<(u64, f64)>,
    /// Worker threads for job execution: `1` = sequential (the default),
    /// `0` = one per available CPU, `n` = exactly `n`.
    pub threads: usize,
    /// Telemetry collection, stamped onto every enumerated job's
    /// configuration (disabled by default).
    pub telemetry: TelemetryConfig,
}

impl Default for ExperimentSetup {
    fn default() -> Self {
        ExperimentSetup {
            params: WorkloadParams::default(),
            max_retired: 400_000,
            workloads: all_workloads()
                .iter()
                .map(|w| w.name().to_string())
                .collect(),
            regions: vec![(0, 1.0)],
            threads: 1,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl ExperimentSetup {
    /// A reduced setup for fast smoke runs and CI.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentSetup {
            params: WorkloadParams {
                scale: 1024,
                iterations: 1_000_000,
                seed: 0xfeed_beef,
            },
            max_retired: 60_000,
            workloads: vec![
                "leela_17".into(),
                "mcf_06".into(),
                "bfs".into(),
                "sssp".into(),
            ],
            regions: vec![(0, 1.0)],
            threads: 1,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// Replaces the region list with `k` regions of decaying SimPoint
    /// weight (`1, 1/2, …, 1/k`) — region `i` rebuilds the kernel with a
    /// seed salted by `i`. `k == 0` is clamped to one region.
    #[must_use]
    pub fn with_regions(mut self, k: usize) -> Self {
        self.regions = (0..k.max(1))
            .map(|i| (i as u64, 1.0 / (i + 1) as f64))
            .collect();
        self
    }

    /// Enumerates the jobs for one `(configuration, workload)` pair: one
    /// per region, carrying the region's weight.
    #[must_use]
    pub fn jobs(&self, cfg: &SimConfig, workload: &str) -> Vec<SimJob> {
        let mut config = cfg.clone();
        config.telemetry = self.telemetry;
        self.regions
            .iter()
            .map(|(salt, weight)| SimJob {
                config: config.clone(),
                workload: workload.to_string(),
                params: self.params,
                region_seed: *salt,
                weight: *weight,
                max_retired: self.max_retired,
            })
            .collect()
    }

    /// Runs a batch of `(configuration, workload)` specs and returns one
    /// aggregated result per spec, in spec order. All regions of all
    /// specs execute as one job batch, so parallelism spans the whole
    /// matrix rather than one cell at a time.
    pub fn run_specs(&self, specs: &[(SimConfig, &str)]) -> Result<Vec<RunResult>, SimError> {
        assert!(!self.regions.is_empty(), "need at least one region");
        let jobs: Vec<SimJob> = specs
            .iter()
            .flat_map(|(cfg, w)| self.jobs(cfg, w))
            .collect();
        let results = run_jobs(&jobs, self.threads)?;
        let mut iter = results.into_iter();
        Ok(specs
            .iter()
            .map(|_| {
                let runs: Vec<(f64, RunResult)> = self
                    .regions
                    .iter()
                    .map(|(_, w)| (*w, iter.next().expect("runner returns one result per job")))
                    .collect();
                aggregate(runs)
            })
            .collect())
    }

    /// Runs one workload under one configuration. With multiple regions,
    /// scalar statistics are combined as the weighted average (the
    /// paper's SimPoint methodology); structural results (chains, branch
    /// sites, breakdowns) come from the heaviest region's run.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownWorkload`] when `workload` is not registered;
    /// the error lists every valid name.
    pub fn run(&self, cfg: SimConfig, workload: &str) -> Result<RunResult, SimError> {
        Ok(self
            .run_specs(&[(cfg, workload)])?
            .pop()
            .expect("one spec yields one result"))
    }
}

/// Runs `configs` × `setup.workloads` as one batch; returns, per workload,
/// the aggregated results in `configs` order.
fn matrix(setup: &ExperimentSetup, configs: &[SimConfig]) -> Result<Vec<Vec<RunResult>>, SimError> {
    let mut specs: Vec<(SimConfig, &str)> =
        Vec::with_capacity(setup.workloads.len() * configs.len());
    for w in &setup.workloads {
        for cfg in configs {
            specs.push((cfg.clone(), w.as_str()));
        }
    }
    // Partition by moving results out of the flat batch; `chunks().to_vec()`
    // would clone every RunResult (per-site maps, chains) once per cell.
    let mut flat = setup.run_specs(&specs)?.into_iter();
    Ok((0..setup.workloads.len())
        .map(|_| flat.by_ref().take(configs.len()).collect())
        .collect())
}

/// Misprediction rate (%) over a fixed set of branch sites in a run.
fn site_rate(r: &RunResult, sites: &[u64]) -> f64 {
    let (mut exec, mut misp) = (0u64, 0u64);
    for pc in sites {
        if let Some(s) = r.core.branch_sites.get(pc) {
            exec += s.executed;
            misp += s.mispredicted;
        }
    }
    if exec == 0 {
        0.0
    } else {
        misp as f64 / exec as f64 * 100.0
    }
}

/// Figure 1: misprediction rate on the hardest branches — 64 KB
/// TAGE-SC-L vs unlimited MTAGE vs dependence chains (Big BR).
pub fn fig1(setup: &ExperimentSetup) -> Result<ExpTable, SimError> {
    let mut t = ExpTable::new(
        "Figure 1: misprediction rate of the hardest branches (%)",
        vec![
            "tage-sc-l-64kb".into(),
            "mtage-unlimited".into(),
            "dep-chains".into(),
        ],
        MeanKind::Arithmetic,
    );
    let rows = matrix(
        setup,
        &[
            SimConfig::baseline(),
            SimConfig::mtage(),
            SimConfig::big_br(),
        ],
    )?;
    for (w, runs) in setup.workloads.iter().zip(rows) {
        let base = &runs[0];
        // The paper selects the 32 most mispredicted branches.
        let sites: Vec<u64> = base
            .core
            .hardest_branches(32)
            .into_iter()
            .filter(|(_, s)| s.mispredicted > 0)
            .map(|(pc, _)| pc)
            .collect();
        t.push_row(
            w.clone(),
            vec![
                site_rate(base, &sites),
                site_rate(&runs[1], &sites),
                site_rate(&runs[2], &sites),
            ],
        );
    }
    Ok(t)
}

/// Figure 2: average dependence-chain length in uops.
pub fn fig2(setup: &ExperimentSetup) -> Result<ExpTable, SimError> {
    let mut t = ExpTable::new(
        "Figure 2: average dependence chain length (uops)",
        vec!["chain-length".into()],
        MeanKind::Arithmetic,
    );
    let rows = matrix(setup, &[SimConfig::mini_br()])?;
    for (w, runs) in setup.workloads.iter().zip(rows) {
        t.push_row(
            w.clone(),
            vec![runs[0].br.as_ref().map_or(0.0, |b| b.avg_chain_len())],
        );
    }
    Ok(t)
}

/// Figure 3: increase in micro-ops issued (total and loads) due to
/// Branch Runahead, in percent.
pub fn fig3(setup: &ExperimentSetup) -> Result<ExpTable, SimError> {
    let mut t = ExpTable::new(
        "Figure 3: extra micro-ops issued due to Branch Runahead (%)",
        vec![
            "net-uops".into(),
            "net-load-uops".into(),
            "dce-overhead".into(),
        ],
        MeanKind::Arithmetic,
    );
    let rows = matrix(setup, &[SimConfig::baseline(), SimConfig::mini_br()])?;
    for (w, runs) in setup.workloads.iter().zip(rows) {
        let (base, with) = (&runs[0], &runs[1]);
        let br = with.br.as_ref().expect("BR enabled");
        // Net change includes the wrong-path work Branch Runahead removes
        // (it can be negative); `dce-overhead` is the pure added work the
        // paper's +34.3% mean refers to, relative to retired uops.
        let uops_pct =
            ((with.core.issued_uops + br.dce_uops) as f64 / base.core.issued_uops as f64 - 1.0)
                * 100.0;
        let loads_pct = ((with.core.issued_loads + br.dce_loads) as f64
            / base.core.issued_loads.max(1) as f64
            - 1.0)
            * 100.0;
        let overhead_pct = br.dce_uops as f64 / with.core.retired_uops.max(1) as f64 * 100.0;
        t.push_row(w.clone(), vec![uops_pct, loads_pct, overhead_pct]);
    }
    Ok(t)
}

/// Figure 5: fraction of dependence chains impacted by affector or guard
/// branches, in percent.
pub fn fig5(setup: &ExperimentSetup) -> Result<ExpTable, SimError> {
    let mut t = ExpTable::new(
        "Figure 5: chains with affectors or guards (%)",
        vec!["with-ag".into()],
        MeanKind::Arithmetic,
    );
    let rows = matrix(setup, &[SimConfig::mini_br()])?;
    for (w, runs) in setup.workloads.iter().zip(rows) {
        t.push_row(
            w.clone(),
            vec![runs[0].br.as_ref().map_or(0.0, |b| b.ag_fraction() * 100.0)],
        );
    }
    Ok(t)
}

/// Figure 10: MPKI and IPC improvement of 80 KB TAGE-SC-L and the three
/// Branch Runahead configurations over the 64 KB baseline. Returns
/// `(mpki_table, ipc_table)`.
pub fn fig10(setup: &ExperimentSetup) -> Result<(ExpTable, ExpTable), SimError> {
    let series = vec![
        "80kb-tage".into(),
        "core-only".into(),
        "mini".into(),
        "big".into(),
    ];
    let mut mpki = ExpTable::new(
        "Figure 10 (top): relative MPKI improvement (%)",
        series.clone(),
        MeanKind::Arithmetic,
    );
    let mut ipc = ExpTable::new(
        "Figure 10 (bottom): relative IPC improvement (%)",
        series,
        MeanKind::GeometricPct,
    );
    let rows = matrix(
        setup,
        &[
            SimConfig::baseline(),
            SimConfig::tage80(),
            SimConfig::core_only_br(),
            SimConfig::mini_br(),
            SimConfig::big_br(),
        ],
    )?;
    for (w, runs) in setup.workloads.iter().zip(rows) {
        let base = &runs[0];
        mpki.push_row(
            w.clone(),
            runs[1..]
                .iter()
                .map(|r| r.mpki_improvement_pct(base))
                .collect(),
        );
        ipc.push_row(
            w.clone(),
            runs[1..]
                .iter()
                .map(|r| r.ipc_improvement_pct(base))
                .collect(),
        );
    }
    Ok((mpki, ipc))
}

/// Figure 11 (top): MPKI improvement of MTAGE, Big BR, and MTAGE+Big BR
/// over the 64 KB baseline.
pub fn fig11_top(setup: &ExperimentSetup) -> Result<ExpTable, SimError> {
    let mut t = ExpTable::new(
        "Figure 11 (top): MPKI improvement over 64KB TAGE-SC-L (%)",
        vec!["mtage".into(), "big-br".into(), "mtage+big-br".into()],
        MeanKind::Arithmetic,
    );
    let rows = matrix(
        setup,
        &[
            SimConfig::baseline(),
            SimConfig::mtage(),
            SimConfig::big_br(),
            SimConfig::mtage_plus_big_br(),
        ],
    )?;
    for (w, runs) in setup.workloads.iter().zip(rows) {
        let base = &runs[0];
        t.push_row(
            w.clone(),
            runs[1..]
                .iter()
                .map(|r| r.mpki_improvement_pct(base))
                .collect(),
        );
    }
    Ok(t)
}

/// Figure 11 (bottom): MPKI improvement of the three chain-initiation
/// policies (Mini configuration).
pub fn fig11_bottom(setup: &ExperimentSetup) -> Result<ExpTable, SimError> {
    let mut t = ExpTable::new(
        "Figure 11 (bottom): MPKI improvement by initiation policy (%)",
        vec![
            "non-speculative".into(),
            "independent-early".into(),
            "predictive".into(),
        ],
        MeanKind::Arithmetic,
    );
    let mut configs = vec![SimConfig::baseline()];
    for mode in InitiationMode::ALL {
        let mut cfg = SimConfig::mini_br();
        if let Some(rc) = &mut cfg.runahead {
            rc.initiation = mode;
        }
        configs.push(cfg);
    }
    let rows = matrix(setup, &configs)?;
    for (w, runs) in setup.workloads.iter().zip(rows) {
        let base = &runs[0];
        t.push_row(
            w.clone(),
            runs[1..]
                .iter()
                .map(|r| r.mpki_improvement_pct(base))
                .collect(),
        );
    }
    Ok(t)
}

/// Figure 12: breakdown of DCE predictions for covered branches
/// (inactive / late / throttled / incorrect / correct), in percent.
pub fn fig12(setup: &ExperimentSetup) -> Result<ExpTable, SimError> {
    let mut t = ExpTable::new(
        "Figure 12: prediction breakdown for covered branches (%)",
        vec![
            "inactive".into(),
            "late".into(),
            "throttled".into(),
            "incorrect".into(),
            "correct".into(),
        ],
        MeanKind::Arithmetic,
    );
    let rows = matrix(setup, &[SimConfig::mini_br()])?;
    for (w, runs) in setup.workloads.iter().zip(rows) {
        let br = runs[0].br.as_ref().expect("BR enabled");
        t.push_row(
            w.clone(),
            PredictionCategory::ALL
                .iter()
                .map(|c| br.category_fraction(*c) * 100.0)
                .collect(),
        );
    }
    Ok(t)
}

/// Figure 13: parameter sweeps from the Mini configuration toward Big.
/// Rows are `param=value`; the single column is the mean MPKI improvement
/// over the 64 KB baseline across the setup's workloads. As in the paper
/// (footnote 16), sweeps run shorter regions than the other experiments.
pub fn fig13(setup: &ExperimentSetup) -> Result<ExpTable, SimError> {
    let setup = &ExperimentSetup {
        max_retired: (setup.max_retired / 4).max(10_000),
        ..setup.clone()
    };
    let mut t = ExpTable::new(
        "Figure 13: MPKI improvement across parameter sweeps (%)",
        vec!["mean-mpki-improvement".into()],
        MeanKind::Arithmetic,
    );
    type Apply = fn(&mut BranchRunaheadConfig, usize);
    let sweeps: Vec<(&str, Vec<usize>, Apply)> = vec![
        ("chain-cache", vec![16, 32, 64, 256], |c, v| {
            c.chain_cache_entries = v;
        }),
        ("queue-entries", vec![2, 8, 64, 256], |c, v| {
            c.queue_entries = v;
        }),
        ("ceb", vec![128, 512, 2048], |c, v| c.ceb_entries = v),
        ("window", vec![8, 64, 256, 1024], |c, v| {
            c.window_instances = v;
        }),
        ("hbt", vec![16, 64, 1024], |c, v| c.hbt_entries = v),
        ("max-chain-len", vec![8, 16, 32], |c, v| {
            c.max_chain_len = v;
        }),
    ];
    // Enumerate every swept configuration once, then run the whole
    // baseline + sweep matrix as one batch.
    let mut labels = Vec::new();
    let mut configs = vec![SimConfig::baseline()];
    for (name, values, apply) in &sweeps {
        for v in values {
            let mut cfg = SimConfig::mini_br();
            if let Some(rc) = &mut cfg.runahead {
                apply(rc, *v);
            }
            labels.push(format!("{name}={v}"));
            configs.push(cfg);
        }
    }
    let rows = matrix(setup, &configs)?;
    for (i, label) in labels.into_iter().enumerate() {
        let mean = rows
            .iter()
            .map(|runs| runs[i + 1].mpki_improvement_pct(&runs[0]))
            .sum::<f64>()
            / setup.workloads.len() as f64;
        t.push_row(label, vec![mean]);
    }
    Ok(t)
}

/// Figure 14: relative energy change (%) of the three Branch Runahead
/// configurations (negative = saves energy).
pub fn fig14(setup: &ExperimentSetup) -> Result<ExpTable, SimError> {
    let model = EnergyModel::default();
    let mut t = ExpTable::new(
        "Figure 14: energy change vs baseline (%) — lower is better",
        vec!["core-only".into(), "mini".into(), "big".into()],
        MeanKind::Arithmetic,
    );
    let rows = matrix(
        setup,
        &[
            SimConfig::baseline(),
            SimConfig::core_only_br(),
            SimConfig::mini_br(),
            SimConfig::big_br(),
        ],
    )?;
    for (w, runs) in setup.workloads.iter().zip(rows) {
        let base = runs[0].energy_events();
        t.push_row(
            w.clone(),
            runs[1..]
                .iter()
                .map(|r| model.relative_change_pct(&base, &r.energy_events()))
                .collect(),
        );
    }
    Ok(t)
}

/// Design-choice ablations (DESIGN.md §5): Mini Branch Runahead versus
/// (a) in-order intra-chain scheduling — §4.2 reports it "was not able to
/// expose enough MLP" — and (b) disabled affector/guard detection — the
/// paper's contribution bullet "we demonstrate the importance of
/// accurately identifying affector and guard dependencies".
pub fn ablations(setup: &ExperimentSetup) -> Result<ExpTable, SimError> {
    let mut t = ExpTable::new(
        "Ablations: MPKI improvement over baseline (%)",
        vec![
            "mini".into(),
            "mini-inorder-dce".into(),
            "mini-no-ag".into(),
        ],
        MeanKind::Arithmetic,
    );
    let mut inorder_cfg = SimConfig::mini_br();
    if let Some(rc) = &mut inorder_cfg.runahead {
        rc.dce_in_order = true;
    }
    let mut noag_cfg = SimConfig::mini_br();
    if let Some(rc) = &mut noag_cfg.runahead {
        rc.enable_affector_guards = false;
    }
    let rows = matrix(
        setup,
        &[
            SimConfig::baseline(),
            SimConfig::mini_br(),
            inorder_cfg,
            noag_cfg,
        ],
    )?;
    for (w, runs) in setup.workloads.iter().zip(rows) {
        let base = &runs[0];
        t.push_row(
            w.clone(),
            runs[1..]
                .iter()
                .map(|r| r.mpki_improvement_pct(base))
                .collect(),
        );
    }
    Ok(t)
}

/// §4.4 merge-point prediction accuracy (%), per workload.
pub fn merge_point(setup: &ExperimentSetup) -> Result<ExpTable, SimError> {
    let mut t = ExpTable::new(
        "Merge-point prediction accuracy (%) [paper: WPB 92% vs prior-work 78%]",
        vec!["wpb".into(), "static-heuristic".into(), "validated".into()],
        MeanKind::Arithmetic,
    );
    let rows = matrix(setup, &[SimConfig::mini_br()])?;
    for (w, runs) in setup.workloads.iter().zip(rows) {
        let br = runs[0].br.as_ref().expect("BR enabled");
        t.push_row(
            w.clone(),
            vec![
                br.merge_accuracy() * 100.0,
                br.static_merge_accuracy() * 100.0,
                br.merge_validated as f64,
            ],
        );
    }
    Ok(t)
}

/// §5.2 area report.
#[must_use]
pub fn area_report() -> String {
    let a = AreaBreakdown::paper_mini();
    format!(
        "Area model (22nm, McPAT-substitute):\n\
         baseline OoO core      {:.2} mm2\n\
         64KB TAGE-SC-L         {:.2} mm2\n\
         DCE chain cache        {:.2} mm2\n\
         DCE exec (FUs/RS/PRF)  {:.2} mm2\n\
         chain extraction + HBT {:.2} mm2\n\
         DCE total              {:.2} mm2 = {:.1}% of core (paper: 2.2%)\n\
         Core-Only adds         {:.1}% of core (paper: 1.4%)",
        a.core_mm2,
        a.tage_mm2,
        a.chain_cache_mm2,
        a.dce_exec_mm2,
        a.extraction_mm2,
        a.dce_mm2(),
        a.dce_fraction() * 100.0,
        a.core_only_fraction() * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_report_contains_paper_numbers() {
        let s = area_report();
        assert!(s.contains("16.96"));
        assert!(s.contains("0.38"));
    }

    #[test]
    fn quick_setup_is_small() {
        let q = ExperimentSetup::quick();
        assert!(q.workloads.len() <= 6);
        assert!(q.max_retired <= 100_000);
        assert_eq!(q.threads, 1, "quick() defaults to sequential");
    }

    #[test]
    fn with_regions_decays_weights() {
        let s = ExperimentSetup::quick().with_regions(3);
        assert_eq!(s.regions, vec![(0, 1.0), (1, 0.5), (2, 1.0 / 3.0)]);
        assert_eq!(ExperimentSetup::quick().with_regions(0).regions.len(), 1);
    }

    #[test]
    fn run_rejects_unknown_workload() {
        let setup = ExperimentSetup::quick();
        let err = setup
            .run(SimConfig::baseline(), "not_a_kernel")
            .unwrap_err();
        assert!(err.to_string().contains("not_a_kernel"));
    }

    #[test]
    fn jobs_enumerate_regions() {
        let setup = ExperimentSetup::quick().with_regions(3);
        let jobs = setup.jobs(&SimConfig::baseline(), "bfs");
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[2].region_seed, 2);
        assert!((jobs[1].weight - 0.5).abs() < 1e-12);
        // Each job is independently hashable and distinct.
        assert_ne!(jobs[0].fingerprint(), jobs[1].fingerprint());
    }
}
