//! Bounded ring-buffer tracing of discrete microarchitectural events.

use std::collections::VecDeque;

/// The discrete event vocabulary. Each variant corresponds to one
/// instrumentation site in the core or the Branch Runahead engine; the
/// payload interpretation of [`TraceEvent::pc`] / [`TraceEvent::arg`] is
/// documented per variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EventKind {
    /// A mispredicted branch triggered pipeline recovery. `pc` = branch,
    /// `arg` = wrong-path uops squashed.
    Recovery,
    /// A dependence chain was extracted and installed. `pc` = target
    /// branch, `arg` = chain length in uops.
    ChainExtract,
    /// A chain extraction attempt was rejected. `pc` = target branch.
    ChainReject,
    /// A branch was allocated into the Hard Branch Table. `pc` = the
    /// retiring branch that triggered the poll (allocation attribution is
    /// at HBT-churn granularity).
    HbtInsert,
    /// An HBT entry was overwritten by a new allocation. `pc` as for
    /// [`EventKind::HbtInsert`].
    HbtEvict,
    /// The Wrong-Path Buffer confirmed a merge point at retirement.
    /// `pc` = branch, `arg` = merge PC.
    WpbMerge,
    /// A DCE-caused misprediction flushed all chain instances.
    /// `pc` = diverging branch, `arg` = instances active before the flush.
    DceFlush,
    /// The DCE synchronized (copied live-ins) and re-initiated chains.
    /// `pc` = triggering branch, `arg` = resolved direction (0/1).
    DceSync,
    /// The fault harness injected a fault into a Branch Runahead
    /// structure. `pc` = affected branch (0 when structural), `arg` =
    /// fault kind code (see `br_sim::faults::FaultKind`).
    FaultInject,
    /// The machine-check layer ran an invariant sweep. `pc` = 0, `arg` =
    /// 0 when clean, 1 when a violation was detected (the run then
    /// terminates with the violation as its error).
    MachineCheck,
}

impl EventKind {
    /// Every kind, in a fixed reporting order.
    pub const ALL: [EventKind; 10] = [
        EventKind::Recovery,
        EventKind::ChainExtract,
        EventKind::ChainReject,
        EventKind::HbtInsert,
        EventKind::HbtEvict,
        EventKind::WpbMerge,
        EventKind::DceFlush,
        EventKind::DceSync,
        EventKind::FaultInject,
        EventKind::MachineCheck,
    ];

    /// Stable snake_case name used by every exporter.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Recovery => "recovery",
            EventKind::ChainExtract => "chain_extract",
            EventKind::ChainReject => "chain_reject",
            EventKind::HbtInsert => "hbt_insert",
            EventKind::HbtEvict => "hbt_evict",
            EventKind::WpbMerge => "wpb_merge",
            EventKind::DceFlush => "dce_flush",
            EventKind::DceSync => "dce_sync",
            EventKind::FaultInject => "fault_inject",
            EventKind::MachineCheck => "machine_check",
        }
    }
}

/// One traced event. Fixed-size and `Copy` so the ring buffer is a flat
/// allocation with no per-event boxing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
    /// Primary subject (usually a branch PC); see [`EventKind`].
    pub pc: u64,
    /// Kind-specific payload; see [`EventKind`].
    pub arg: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s: pushes beyond `capacity`
/// evict the oldest event and count it as dropped, so a trace always
/// holds the *most recent* window and memory stays bounded no matter how
/// long the run.
#[derive(Clone, Debug)]
pub struct EventRing {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events (a capacity of 0
    /// drops everything).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        EventRing {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or rejected) because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring, returning the buffered events oldest-first and
    /// the dropped count.
    #[must_use]
    pub fn into_parts(self) -> (Vec<TraceEvent>, u64) {
        (self.events.into_iter().collect(), self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            kind: EventKind::Recovery,
            pc: 0x40,
            arg: cycle,
        }
    }

    #[test]
    fn ring_keeps_most_recent_window() {
        let mut r = EventRing::new(3);
        for c in 0..5 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let (events, dropped) = r.into_parts();
        assert_eq!(dropped, 2);
        assert_eq!(
            events.iter().map(|e| e.cycle).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn kind_names_are_unique() {
        let names: std::collections::BTreeSet<_> =
            EventKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), EventKind::ALL.len());
    }
}
