#!/usr/bin/env python3
"""Validate a figures --telemetry-out directory.

Checks that every exporter's output parses (Chrome trace JSON, JSONL,
CSV) and that the views agree with each other: same sample count in
samples.jsonl and samples.csv, event lines covered by counters.json
totals, and nonzero progress counters.

Usage: check_telemetry.py DIR
"""

import csv
import json
import sys
from pathlib import Path

EXPECTED_FILES = [
    "trace.json",
    "samples.jsonl",
    "samples.csv",
    "events.jsonl",
    "counters.json",
]

SAMPLE_KEYS = {"job", "cycle", "retired_uops", "ipc", "mpki", "coverage_rate"}
EVENT_KEYS = {"job", "cycle", "kind", "pc", "arg"}


def fail(msg: str) -> None:
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_telemetry.py DIR")
    out = Path(sys.argv[1])
    for name in EXPECTED_FILES:
        if not (out / name).is_file():
            fail(f"missing {name}")

    trace = json.loads((out / "trace.json").read_text())
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace.json has no traceEvents")
    phases = {e.get("ph") for e in events}
    if "M" not in phases or "C" not in phases:
        fail(f"trace.json missing metadata/counter events: phases {phases}")
    for e in events:
        if e.get("ph") != "M" and not isinstance(e.get("ts"), (int, float)):
            fail(f"trace event without numeric ts: {e}")

    samples = [json.loads(l) for l in (out / "samples.jsonl").read_text().splitlines()]
    if not samples:
        fail("samples.jsonl is empty")
    for s in samples:
        missing = SAMPLE_KEYS - s.keys()
        if missing:
            fail(f"sample missing keys {missing}: {s}")

    with (out / "samples.csv").open(newline="") as f:
        rows = list(csv.DictReader(f))
    if len(rows) != len(samples):
        fail(f"samples.csv has {len(rows)} rows, samples.jsonl {len(samples)}")
    for row in rows:
        float(row["ipc"])
        int(row["retired_uops"])

    traced = [json.loads(l) for l in (out / "events.jsonl").read_text().splitlines()]
    for e in traced:
        missing = EVENT_KEYS - e.keys()
        if missing:
            fail(f"event missing keys {missing}: {e}")

    counters = json.loads((out / "counters.json").read_text())
    jobs = counters.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        fail("counters.json has no jobs")
    retired = sum(j["counters"].get("core.retired_uops", 0) for j in jobs)
    if retired <= 0:
        fail("no retired uops recorded across jobs")
    dropped = sum(j.get("dropped_events", 0) for j in jobs)
    extracted = sum(j["counters"].get("br.chains_extracted", 0) for j in jobs)
    event_kinds = {e["kind"] for e in traced}
    if extracted > 0 and dropped == 0 and "chain_extract" not in event_kinds:
        fail("chains extracted but no chain_extract events traced")

    print(
        f"check_telemetry: OK: {len(jobs)} jobs, {len(samples)} samples, "
        f"{len(traced)} events ({dropped} dropped), {retired} retired uops"
    )


if __name__ == "__main__":
    main()
