//! The unit of schedulable simulation work.
//!
//! A [`SimJob`] bundles everything one simulation run needs — the system
//! configuration, the workload name, the region's seed salt and SimPoint
//! weight, and the retired-uop budget — into a self-contained value that
//! is `Send`, independently executable, and hashable (for caching and
//! run-log identification). Experiment drivers *enumerate* jobs up front
//! and hand them to a runner (sequential or the sharded thread pool in
//! [`crate::runner`]); they never interleave enumeration with execution,
//! which is what makes the parallel and sequential paths bit-identical.

use std::sync::Arc;

use br_workloads::{all_workloads, workload_by_name, Workload, WorkloadImage, WorkloadParams};

use crate::config::SimConfig;
use crate::system::{RunResult, System};

/// Errors from experiment setup or execution.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A workload name did not match any registered kernel.
    UnknownWorkload {
        /// The name that failed to resolve.
        name: String,
        /// Every valid workload name, for the error message.
        valid: Vec<&'static str>,
    },
    /// A worker thread panicked while executing a job. The runner converts
    /// the panic into this error so the caller learns *which* job died
    /// instead of seeing a bare thread-join abort.
    JobPanicked {
        /// [`SimJob::label`] of the failing job.
        job: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The machine-check layer caught a structural invariant violation
    /// mid-run (see `crate::faults`): the simulated hardware state became
    /// inconsistent, so the run's results cannot be trusted.
    InvariantViolation {
        /// [`SimJob::label`] of the failing job (the system itself only
        /// knows its config name; the runner patches in the full label).
        job: String,
        /// Cycle of the failing invariant sweep.
        cycle: u64,
        /// Which invariant broke, and how.
        what: String,
    },
    /// A fault-injected run broke the prediction-as-hint contract: its
    /// retired instruction stream diverged from the fault-free reference
    /// run. Replay deterministically with the same `(job, fault_seed)`.
    FaultedRun {
        /// [`SimJob::label`] of the failing job.
        job: String,
        /// Seed of the fault schedule that exposed the divergence.
        fault_seed: u64,
        /// How the run diverged.
        what: String,
    },
    /// A user-supplied option (CLI flag, fault spec, experiment name) did
    /// not parse or referred to something that does not exist.
    InvalidConfig(String),
    /// A filesystem operation failed. Stores the rendered OS error
    /// (`std::io::Error` is neither `Clone` nor `Eq`).
    Io {
        /// Path the operation targeted.
        path: String,
        /// The rendered I/O error.
        message: String,
    },
}

impl SimError {
    /// Stable snake_case discriminant name, used as the `kind` field of
    /// machine-readable failure reports.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::UnknownWorkload { .. } => "unknown_workload",
            SimError::JobPanicked { .. } => "job_panicked",
            SimError::InvariantViolation { .. } => "invariant_violation",
            SimError::FaultedRun { .. } => "faulted_run",
            SimError::InvalidConfig(_) => "invalid_config",
            SimError::Io { .. } => "io",
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownWorkload { name, valid } => {
                write!(
                    f,
                    "unknown workload {name:?}; valid names: {}",
                    valid.join(", ")
                )
            }
            SimError::JobPanicked { job, message } => {
                write!(f, "job {job} panicked: {message}")
            }
            SimError::InvariantViolation { job, cycle, what } => {
                write!(
                    f,
                    "job {job}: machine check failed at cycle {cycle}: {what}"
                )
            }
            SimError::FaultedRun {
                job,
                fault_seed,
                what,
            } => {
                write!(
                    f,
                    "job {job} under fault seed {fault_seed}: {what} \
                     (replay with --faults seed={fault_seed} on this job)"
                )
            }
            SimError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            SimError::Io { path, message } => write!(f, "io error on {path}: {message}"),
        }
    }
}

impl std::error::Error for SimError {}

/// One independently executable simulation: a configuration, a workload
/// region, and a budget. The SimPoint `weight` rides along so the caller
/// can aggregate region results without tracking a side table.
#[derive(Clone, Debug)]
pub struct SimJob {
    /// The full system configuration (its `max_retired` is overridden by
    /// [`SimJob::max_retired`] at execution time).
    pub config: SimConfig,
    /// Registered workload name (e.g. `"leela_17"`).
    pub workload: String,
    /// Base build parameters; [`SimJob::region_seed`] salts the seed.
    pub params: WorkloadParams,
    /// Region index/salt: region `k` rebuilds the kernel with a seed
    /// derived from `params.seed` and `k` (the SimPoint analogue).
    pub region_seed: u64,
    /// SimPoint weight of this region in the workload's aggregate.
    pub weight: f64,
    /// Retired-uop budget for this run.
    pub max_retired: u64,
}

impl SimJob {
    /// The build parameters for this job's region: the base parameters
    /// with the seed salted by the region index.
    #[must_use]
    pub fn effective_params(&self) -> WorkloadParams {
        WorkloadParams {
            seed: self.params.seed ^ (self.region_seed.wrapping_mul(0x9E37_79B9)),
            ..self.params
        }
    }

    /// Resolves the workload, or reports the valid names.
    pub fn resolve(&self) -> Result<Box<dyn Workload>, SimError> {
        workload_by_name(&self.workload).ok_or_else(|| SimError::UnknownWorkload {
            name: self.workload.clone(),
            valid: all_workloads().iter().map(|w| w.name()).collect(),
        })
    }

    /// Builds this job's workload image. Runners that execute many jobs
    /// should build each distinct `(workload, params)` image once and
    /// share it via [`SimJob::execute`] instead.
    pub fn build_image(&self) -> Result<Arc<WorkloadImage>, SimError> {
        Ok(Arc::new(self.resolve()?.build(&self.effective_params())))
    }

    /// Executes the job against an already built image (the image must
    /// match [`SimJob::effective_params`]).
    ///
    /// # Panics
    ///
    /// Panics on a machine-check violation; use [`SimJob::try_execute`]
    /// to receive it as a typed error instead.
    #[must_use]
    pub fn execute(&self, image: &WorkloadImage) -> RunResult {
        match self.try_execute(image) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Executes the job against an already built image, surfacing
    /// machine-check violations as [`SimError::InvariantViolation`] with
    /// this job's label.
    pub fn try_execute(&self, image: &WorkloadImage) -> Result<RunResult, SimError> {
        let mut cfg = self.config.clone();
        cfg.max_retired = self.max_retired;
        System::new(cfg, image).try_run().map_err(|e| match e {
            SimError::InvariantViolation { cycle, what, .. } => SimError::InvariantViolation {
                job: self.label(),
                cycle,
                what,
            },
            other => other,
        })
    }

    /// Builds and runs the job in one step.
    pub fn run(&self) -> Result<RunResult, SimError> {
        let image = self.build_image()?;
        self.try_execute(&image)
    }

    /// A short human-readable identity for logs and panic reports, e.g.
    /// `"tage-sc-l-64kb+br-mini/leela_17/r2"`.
    #[must_use]
    pub fn label(&self) -> String {
        let predictor = self.config.predictor.name();
        match &self.config.runahead {
            Some(rc) => format!(
                "{predictor}+br-{}/{}/r{}",
                rc.name, self.workload, self.region_seed
            ),
            None => format!("{predictor}/{}/r{}", self.workload, self.region_seed),
        }
    }

    /// The cache key identifying this job's workload image: distinct keys
    /// build distinct images, equal keys may share one.
    #[must_use]
    pub fn image_key(&self) -> (String, WorkloadParams) {
        (self.workload.clone(), self.effective_params())
    }

    /// A stable 64-bit fingerprint of the whole job (FNV-1a over the
    /// canonical debug form). Two jobs with the same fingerprint run the
    /// same simulation; useful for run logs and result caches.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let repr = format!(
            "{:?}|{}|{:?}|{}|{}|{}",
            self.config,
            self.workload,
            self.params,
            self.region_seed,
            self.weight.to_bits(),
            self.max_retired,
        );
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(workload: &str) -> SimJob {
        SimJob {
            config: SimConfig::baseline(),
            workload: workload.into(),
            params: WorkloadParams {
                scale: 512,
                iterations: 1_000_000,
                seed: 7,
            },
            region_seed: 0,
            weight: 1.0,
            max_retired: 5_000,
        }
    }

    #[test]
    fn job_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SimJob>();
        assert_send::<System>();
    }

    #[test]
    fn unknown_workload_lists_valid_names() {
        let err = job("no_such_kernel").run().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("no_such_kernel"));
        assert!(msg.contains("leela_17"), "must list valid names: {msg}");
    }

    #[test]
    fn job_runs_independently() {
        let r = job("leela_17").run().unwrap();
        assert!(r.core.retired_uops >= 5_000);
    }

    #[test]
    fn region_seed_salts_params() {
        let mut j = job("leela_17");
        let base = j.effective_params();
        j.region_seed = 1;
        assert_ne!(base.seed, j.effective_params().seed);
        assert_eq!(base.scale, j.effective_params().scale);
    }

    #[test]
    fn label_is_human_readable() {
        let mut j = job("leela_17");
        j.region_seed = 2;
        assert_eq!(j.label(), "tage-sc-l-64kb/leela_17/r2");
        j.config = SimConfig::mini_br();
        assert_eq!(j.label(), "tage-sc-l-64kb+br-mini/leela_17/r2");
    }

    #[test]
    fn fingerprint_distinguishes_jobs() {
        let a = job("leela_17");
        let mut b = job("leela_17");
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.region_seed = 3;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = job("bfs");
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
