//! System composition: core + memory + (optional) Branch Runahead.

use br_core::{BrLiveState, BrStats, BranchRunahead, PredictionCategory};
use br_energy::EnergyEvents;
use br_isa::{CpuState, Machine, Pc};
use br_mem::{MemResp, MemoryStats, MemorySystem};
use br_ooo::{
    BranchOutcome, CoreHooks, CoreStats, CycleReport, FetchedBranch, MispredictInfo, RetiredUop,
    WrongPathUop,
};
use br_ooo::{Core, NullHooks};
use br_telemetry::{Sample, Telemetry, TelemetryRun};
use br_workloads::WorkloadImage;

use crate::config::SimConfig;
use crate::faults::{FaultInjector, FaultStats, FaultedHooks};
use crate::job::SimError;

/// Cycles between machine-check invariant sweeps (when enabled).
const MACHINE_CHECK_INTERVAL: u64 = 1024;

/// The uniform observation/steering attachment of a [`System`]: either the
/// baseline no-op hooks or a Branch Runahead engine. [`System::run`] drives
/// one code path regardless of which is attached — the paper's "baseline
/// vs. BR" distinction is data, not control flow.
#[derive(Debug)]
pub enum SystemHooks {
    /// Baseline system: observe nothing, never override.
    Baseline(NullHooks),
    /// Branch Runahead attached (boxed: the engine is large).
    Runahead(Box<BranchRunahead>),
}

impl SystemHooks {
    /// Builds the hooks for a configuration.
    #[must_use]
    pub fn from_config(cfg: &SimConfig, retire_width: usize) -> Self {
        match &cfg.runahead {
            Some(rc) => SystemHooks::Runahead(Box::new(BranchRunahead::new(*rc, retire_width))),
            None => SystemHooks::Baseline(NullHooks),
        }
    }

    /// The Branch Runahead engine, when attached.
    #[must_use]
    pub fn runahead(&self) -> Option<&BranchRunahead> {
        match self {
            SystemHooks::Baseline(_) => None,
            SystemHooks::Runahead(br) => Some(br),
        }
    }

    /// Mutable access to the attached engine (telemetry attach/detach).
    #[must_use]
    pub fn runahead_mut(&mut self) -> Option<&mut BranchRunahead> {
        match self {
            SystemHooks::Baseline(_) => None,
            SystemHooks::Runahead(br) => Some(br),
        }
    }

    /// Advances the attached engine one cycle after the core's tick (the
    /// DCE runs in the shadow of the core, consuming its spare resources).
    fn post_tick(
        &mut self,
        cycle: u64,
        machine: &Machine,
        mem: &mut MemorySystem,
        responses: &[MemResp],
        report: &CycleReport,
    ) {
        if let SystemHooks::Runahead(br) = self {
            br.tick(cycle, machine, mem, responses, report);
        }
    }
}

impl CoreHooks for SystemHooks {
    fn override_prediction(&mut self, pc: Pc, base: bool, cycle: u64) -> Option<bool> {
        match self {
            SystemHooks::Baseline(h) => h.override_prediction(pc, base, cycle),
            SystemHooks::Runahead(br) => br.override_prediction(pc, base, cycle),
        }
    }

    fn on_branch_fetch(&mut self, b: &FetchedBranch) {
        match self {
            SystemHooks::Baseline(h) => h.on_branch_fetch(b),
            SystemHooks::Runahead(br) => br.on_branch_fetch(b),
        }
    }

    fn on_mispredict(
        &mut self,
        info: &MispredictInfo,
        wrong_path: &[WrongPathUop],
        cpu: &CpuState,
    ) {
        match self {
            SystemHooks::Baseline(h) => h.on_mispredict(info, wrong_path, cpu),
            SystemHooks::Runahead(br) => br.on_mispredict(info, wrong_path, cpu),
        }
    }

    fn on_retire(&mut self, u: &RetiredUop) {
        match self {
            SystemHooks::Baseline(h) => h.on_retire(u),
            SystemHooks::Runahead(br) => br.on_retire(u),
        }
    }

    fn on_branch_retire(&mut self, b: &BranchOutcome) {
        match self {
            SystemHooks::Baseline(h) => h.on_branch_retire(b),
            SystemHooks::Runahead(br) => br.on_branch_retire(b),
        }
    }
}

/// Results of one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Core statistics.
    pub core: CoreStats,
    /// Memory statistics.
    pub mem: MemoryStats,
    /// Branch Runahead statistics (when enabled).
    pub br: Option<BrStats>,
    /// Configuration name the run used.
    pub config_name: String,
    /// Collected telemetry (when [`SimConfig::telemetry`] is enabled).
    pub telemetry: Option<TelemetryRun>,
    /// Faults injected (when [`SimConfig::faults`] set a schedule).
    pub faults: Option<FaultStats>,
}

impl RunResult {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.core.ipc()
    }

    /// Branch mispredictions per kilo-uop.
    #[must_use]
    pub fn mpki(&self) -> f64 {
        self.core.mpki()
    }

    /// MPKI improvement of `self` over `base`, in percent (the paper's
    /// metric: `(base − this) / base × 100`).
    #[must_use]
    pub fn mpki_improvement_pct(&self, base: &RunResult) -> f64 {
        let b = base.mpki();
        if b == 0.0 {
            0.0
        } else {
            (b - self.mpki()) / b * 100.0
        }
    }

    /// IPC improvement over `base`, in percent.
    #[must_use]
    pub fn ipc_improvement_pct(&self, base: &RunResult) -> f64 {
        let b = base.ipc();
        if b == 0.0 {
            0.0
        } else {
            (self.ipc() - b) / b * 100.0
        }
    }

    /// Event counts for the energy model.
    #[must_use]
    pub fn energy_events(&self) -> EnergyEvents {
        let br = self.br.as_ref();
        EnergyEvents {
            cycles: self.core.cycles,
            core_uops: self.core.issued_uops,
            l1_accesses: self.mem.l1.hits + self.mem.l1.misses,
            l2_accesses: self.mem.l2.hits + self.mem.l2.misses,
            dram_accesses: self.mem.dram.reads + self.mem.dram.writes,
            predictor_lookups: self.core.fetched_branches,
            dce_uops: br.map_or(0, |b| b.dce_uops),
            dce_loads: br.map_or(0, |b| b.dce_loads),
            chain_extractions: br.map_or(0, |b| b.extraction_attempts),
            br_present: self.br.is_some(),
        }
    }
}

/// Cumulative counter values at the previous interval sample; the
/// sampler differences against these to get per-interval rates.
#[derive(Clone, Copy, Debug, Default)]
struct SampleSnapshot {
    cycles: u64,
    retired: u64,
    mispredicts: u64,
    l1_hits: u64,
    l1_misses: u64,
    retired_branches: u64,
    covered: u64,
    correct: u64,
    incorrect: u64,
    late: u64,
    throttled: u64,
    cc_lookups: u64,
    cc_hits: u64,
}

/// The interval sampler: snapshots the system every `interval` retired
/// uops, turning cumulative statistics into a time series of interval
/// rates (the time axis the end-of-run totals flatten away).
#[derive(Clone, Debug)]
struct Sampler {
    interval: u64,
    next: u64,
    samples: Vec<Sample>,
    prev: SampleSnapshot,
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl Sampler {
    fn new(interval: u64) -> Self {
        Sampler {
            interval: interval.max(1),
            next: interval.max(1),
            samples: Vec::new(),
            prev: SampleSnapshot::default(),
        }
    }

    fn take(&mut self, cycle: u64, core: &Core, mem: &MemorySystem, hooks: &SystemHooks) {
        let cs = core.stats();
        let ms = mem.stats();
        let (br_stats, live) = match hooks.runahead() {
            Some(br) => (Some(br.stats()), br.live_state()),
            None => (None, BrLiveState::default()),
        };
        let category = |cat: PredictionCategory| -> u64 {
            br_stats
                .as_ref()
                .and_then(|s| s.prediction_breakdown.get(&cat).copied())
                .unwrap_or(0)
        };
        let now = SampleSnapshot {
            cycles: cs.cycles,
            retired: cs.retired_uops,
            mispredicts: cs.mispredicts,
            l1_hits: ms.l1.hits,
            l1_misses: ms.l1.misses,
            retired_branches: cs.retired_branches,
            covered: br_stats.as_ref().map_or(0, |s| s.covered_branch_retires),
            correct: category(PredictionCategory::Correct),
            incorrect: category(PredictionCategory::Incorrect),
            late: category(PredictionCategory::Late),
            throttled: category(PredictionCategory::Throttled),
            cc_lookups: live.cache_lookups,
            cc_hits: live.cache_hits,
        };
        let p = self.prev;
        let d = |f: fn(&SampleSnapshot) -> u64| f(&now).saturating_sub(f(&p));
        let d_covered = d(|s| s.covered);
        self.samples.push(Sample {
            cycle,
            retired_uops: now.retired,
            ipc: rate(d(|s| s.retired), d(|s| s.cycles)),
            mpki: rate(d(|s| s.mispredicts), d(|s| s.retired)) * 1000.0,
            l1_miss_rate: rate(d(|s| s.l1_misses), d(|s| s.l1_hits) + d(|s| s.l1_misses)),
            mshr_in_use: mem.mshrs_in_use() as u64,
            dce_active: live.dce_active as u64,
            queue_slots: live.queue_slots as u64,
            cached_chains: live.cached_chains as u64,
            chain_cache_hit_rate: rate(d(|s| s.cc_hits), d(|s| s.cc_lookups)),
            coverage_rate: rate(d_covered, d(|s| s.retired_branches)),
            late_rate: rate(d(|s| s.late), d_covered),
            throttle_rate: rate(d(|s| s.throttled), d_covered),
            correct_rate: rate(d(|s| s.correct), d_covered),
            incorrect_rate: rate(d(|s| s.incorrect), d_covered),
        });
        self.prev = now;
        while self.next <= now.retired {
            self.next += self.interval;
        }
    }
}

/// A runnable system instance. `System` is `Send`: it is a fully
/// self-contained unit of work that a sharded runner can move to any
/// worker thread (see `crate::runner`).
pub struct System {
    core: Core,
    mem: MemorySystem,
    hooks: SystemHooks,
    max_cycles: u64,
    config_name: String,
    sampler: Option<Sampler>,
    machine_check: bool,
    injector: Option<FaultInjector>,
    /// Per-cycle memory-response buffer, reused across the run loop.
    resp_scratch: Vec<MemResp>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("config", &self.config_name)
            .finish()
    }
}

impl System {
    /// Builds a system from a configuration and a shared workload image.
    /// The image is not consumed: its program is reference-shared and its
    /// memory pages are copied, so one built image can seed every
    /// configuration and region of an experiment.
    #[must_use]
    pub fn new(cfg: SimConfig, image: &WorkloadImage) -> Self {
        let machine = Machine::new(image.memory.to_memory());
        let mut core = Core::new(
            cfg.core,
            image.program.clone(),
            machine,
            cfg.predictor.build(),
        );
        core.set_max_retired(cfg.max_retired);
        let mut hooks = SystemHooks::from_config(&cfg, cfg.core.retire_width);
        let config_name = match hooks.runahead() {
            Some(br) => format!("{}+br-{}", cfg.predictor.name(), br.config().name),
            None => cfg.predictor.name().to_string(),
        };
        let sampler = if cfg.telemetry.enabled {
            core.attach_telemetry(Telemetry::from_config(&cfg.telemetry));
            if let Some(br) = hooks.runahead_mut() {
                br.attach_telemetry(Telemetry::from_config(&cfg.telemetry));
            }
            Some(Sampler::new(cfg.telemetry.sample_interval))
        } else {
            None
        };
        System {
            core,
            mem: MemorySystem::new(cfg.memory),
            hooks,
            max_cycles: cfg.max_cycles,
            config_name,
            sampler,
            machine_check: cfg.machine_check,
            injector: cfg.faults.map(FaultInjector::new),
            resp_scratch: Vec::new(),
        }
    }

    /// Runs to completion like [`System::try_run`], panicking on a
    /// machine-check violation (kept for callers that treat a violated
    /// invariant as a bug, e.g. unit tests).
    ///
    /// # Panics
    ///
    /// Panics when a machine-check invariant sweep fails.
    pub fn run(&mut self) -> RunResult {
        match self.try_run() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs periodic machine-check sweeps over the Branch Runahead
    /// structures, surfacing the first violation as a typed error.
    fn check_machine(&mut self, cycle: u64) -> Result<(), SimError> {
        let name = &self.config_name;
        if let Some(br) = self.hooks.runahead_mut() {
            br.check_invariants(cycle)
                .map_err(|what| SimError::InvariantViolation {
                    job: name.clone(),
                    cycle,
                    what,
                })?;
        }
        Ok(())
    }

    /// Runs to completion (program halt, retired-uop budget, or the cycle
    /// safety cap) and returns the statistics. Baseline and Branch
    /// Runahead systems share this single loop: the hooks enum decides
    /// what observes the core, not the loop. When the configuration
    /// carries a fault schedule the injector perturbs the BR/core
    /// boundary each cycle; when machine checks are on, periodic
    /// invariant sweeps abort the run with
    /// [`SimError::InvariantViolation`] at the first inconsistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvariantViolation`] (with the config name as
    /// the job field; [`crate::SimJob::try_execute`] patches in the full
    /// job label) when a machine-check sweep fails.
    pub fn try_run(&mut self) -> Result<RunResult, SimError> {
        let mut last_cycle = 0;
        for cycle in 0..self.max_cycles {
            last_cycle = cycle;
            let mut responses = std::mem::take(&mut self.resp_scratch);
            self.mem.tick_into(cycle, &mut responses);
            if let Some(inj) = &mut self.injector {
                if let Some(br) = self.hooks.runahead_mut() {
                    let delayed_before = inj.stats().delayed_responses;
                    responses = inj.filter_responses(cycle, responses, br);
                    inj.note_delays(cycle, delayed_before, br);
                    if inj.chaos_due(cycle) {
                        inj.chaos_tick(cycle, br);
                    }
                }
            }
            let report = match &mut self.injector {
                Some(inj) => {
                    let mut hooks = FaultedHooks::new(&mut self.hooks, inj);
                    self.core.tick(&responses, &mut self.mem, &mut hooks)
                }
                None => self.core.tick(&responses, &mut self.mem, &mut self.hooks),
            };
            self.hooks.post_tick(
                cycle,
                self.core.machine(),
                &mut self.mem,
                &responses,
                &report,
            );
            if let Some(s) = &mut self.sampler {
                if self.core.stats().retired_uops >= s.next {
                    s.take(cycle, &self.core, &self.mem, &self.hooks);
                }
            }
            if self.machine_check && cycle.is_multiple_of(MACHINE_CHECK_INTERVAL) {
                self.check_machine(cycle)?;
            }
            self.resp_scratch = responses;
            if report.done {
                break;
            }
        }
        if self.machine_check {
            // Terminal sweep: catch damage done after the last periodic one.
            self.check_machine(last_cycle)?;
        }
        let telemetry = self.sampler.take().map(|s| {
            let core_t = self.core.take_telemetry();
            let br_t = self
                .hooks
                .runahead_mut()
                .map_or_else(Telemetry::off, BranchRunahead::take_telemetry);
            TelemetryRun::collect(s.samples, vec![core_t, br_t])
        });
        Ok(RunResult {
            core: self.core.stats().clone(),
            mem: self.mem.stats(),
            br: self.hooks.runahead().map(BranchRunahead::stats),
            config_name: self.config_name.clone(),
            telemetry,
            faults: self.injector.as_ref().map(FaultInjector::stats),
        })
    }

    /// The core (for inspection after a run).
    #[must_use]
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// The Branch Runahead system, if enabled.
    #[must_use]
    pub fn runahead(&self) -> Option<&BranchRunahead> {
        self.hooks.runahead()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_workloads::{workload_by_name, WorkloadParams};

    fn small_params() -> WorkloadParams {
        WorkloadParams {
            scale: 512,
            iterations: 1_000_000,
            seed: 17,
        }
    }

    fn run_one(mut cfg: SimConfig, name: &str) -> RunResult {
        cfg.max_retired = 60_000;
        let w = workload_by_name(name).unwrap();
        System::new(cfg, &w.build(&small_params())).run()
    }

    #[test]
    fn baseline_runs_and_reports() {
        let r = run_one(SimConfig::baseline(), "leela_17");
        assert!(r.core.retired_uops >= 60_000);
        assert!(r.ipc() > 0.1 && r.ipc() <= 4.0);
        assert!(r.mpki() > 1.0, "leela-like kernel must mispredict");
        assert!(r.br.is_none());
    }

    #[test]
    #[ignore = "paper-shape tier (threshold assertion): run with --ignored"]
    fn mini_br_beats_baseline_on_leela() {
        let base = run_one(SimConfig::baseline(), "leela_17");
        let with = run_one(SimConfig::mini_br(), "leela_17");
        assert!(with.br.is_some());
        assert!(
            with.mpki_improvement_pct(&base) > 15.0,
            "mini BR should cut MPKI well: base {:.2} vs br {:.2}",
            base.mpki(),
            with.mpki()
        );
    }

    #[test]
    fn multi_region_weighted_average() {
        use crate::experiments::ExperimentSetup;
        let mut setup = ExperimentSetup::quick();
        setup.max_retired = 20_000;
        setup.workloads = vec!["leela_17".into()];
        let single = setup.run(SimConfig::baseline(), "leela_17").unwrap();
        setup.regions = vec![(0, 1.0), (1, 0.5)];
        let multi = setup.run(SimConfig::baseline(), "leela_17").unwrap();
        // Weighted result must lie between the two regions' extremes; a
        // loose sanity bound: within 50% of the single-region MPKI.
        assert!(multi.core.retired_uops >= 20_000);
        assert!(
            (multi.mpki() - single.mpki()).abs() / single.mpki() < 0.5,
            "weighted MPKI implausible: {} vs {}",
            multi.mpki(),
            single.mpki()
        );
    }

    #[test]
    fn energy_events_populated() {
        let r = run_one(SimConfig::mini_br(), "bfs");
        let e = r.energy_events();
        assert!(e.cycles > 0 && e.core_uops > 0 && e.l1_accesses > 0);
        assert!(e.br_present);
    }
}
