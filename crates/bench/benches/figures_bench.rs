//! One Criterion bench per paper table/figure: times a reduced version of
//! each experiment (the `figures` binary produces the full-size numbers).

use criterion::{criterion_group, criterion_main, Criterion};

use br_sim::experiments::{self, ExperimentSetup};
use br_sim::{render_table2, SimConfig};

fn tiny_setup() -> ExperimentSetup {
    let mut s = ExperimentSetup::quick();
    s.max_retired = 15_000;
    s.workloads = vec!["leela_17".into(), "bfs".into()];
    s
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1_render", |b| {
        b.iter(|| SimConfig::baseline().render_table1())
    });
    c.bench_function("table2_render", |b| b.iter(render_table2));
    c.bench_function("area_report", |b| b.iter(experiments::area_report));
}

fn bench_figures(c: &mut Criterion) {
    let setup = tiny_setup();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig1_hard_branch_rates", |b| {
        b.iter(|| experiments::fig1(&setup))
    });
    g.bench_function("fig2_chain_length", |b| b.iter(|| experiments::fig2(&setup)));
    g.bench_function("fig3_extra_uops", |b| b.iter(|| experiments::fig3(&setup)));
    g.bench_function("fig5_affector_guard_fraction", |b| {
        b.iter(|| experiments::fig5(&setup))
    });
    g.bench_function("fig10_ipc_mpki_improvement", |b| {
        b.iter(|| experiments::fig10(&setup))
    });
    g.bench_function("fig11_top_mtage_vs_br", |b| {
        b.iter(|| experiments::fig11_top(&setup))
    });
    g.bench_function("fig11_bottom_initiation_policies", |b| {
        b.iter(|| experiments::fig11_bottom(&setup))
    });
    g.bench_function("fig12_prediction_breakdown", |b| {
        b.iter(|| experiments::fig12(&setup))
    });
    g.bench_function("fig14_energy", |b| b.iter(|| experiments::fig14(&setup)));
    g.bench_function("merge_point_accuracy", |b| {
        b.iter(|| experiments::merge_point(&setup))
    });
    g.bench_function("ablations", |b| b.iter(|| experiments::ablations(&setup)));
    g.finish();

    // Figure 13 sweeps many configurations; bench it with one workload.
    let mut sweep_setup = tiny_setup();
    sweep_setup.workloads = vec!["leela_17".into()];
    sweep_setup.max_retired = 8_000;
    let mut g = c.benchmark_group("figures_sweep");
    g.sample_size(10);
    g.bench_function("fig13_parameter_sweeps", |b| {
        b.iter(|| experiments::fig13(&sweep_setup))
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
