#!/usr/bin/env python3
"""Perf tripwire: compare a fresh BENCH json against the committed baseline.

Usage:
    check_bench.py <committed.json> <fresh.json> [--tolerance PCT]

Fails (exit 1) when the fresh run regresses on the committed baseline:

* total wall-clock more than PCT slower (default 25%),
* any single job more than PCT slower *and* more than 50 ms slower in
  absolute terms (tiny jobs are pure timing noise),
* any job's allocation count more than 1.5x the committed count (when
  both runs counted allocations — allocation counts are deterministic,
  so this catches a reintroduced per-cycle allocation immediately even
  when wall-clock noise would hide it).

Machine-to-machine absolute times differ; this check is meant for CI
runs comparing against a baseline recorded on comparable hardware, with
a tolerance wide enough to absorb shared-runner noise.
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if data.get("schema") != 1:
        sys.exit(f"{path}: unsupported schema {data.get('schema')!r}")
    return data


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("committed")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=25.0,
                    help="allowed slowdown in percent (default 25)")
    args = ap.parse_args()

    committed = load(args.committed)
    fresh = load(args.fresh)
    factor = 1.0 + args.tolerance / 100.0
    failures = []

    base_jobs = {j["name"]: j for j in committed["jobs"]}
    for job in fresh["jobs"]:
        base = base_jobs.get(job["name"])
        if base is None:
            print(f"note: job {job['name']} not in committed baseline, skipping")
            continue
        slow = job["seconds"] > base["seconds"] * factor
        material = job["seconds"] - base["seconds"] > 0.05
        if slow and material:
            failures.append(
                f"{job['name']}: {job['seconds']:.3f}s vs {base['seconds']:.3f}s "
                f"(+{(job['seconds'] / base['seconds'] - 1) * 100:.0f}%)"
            )
        if job.get("allocations") is not None and base.get("allocations") is not None:
            if job["allocations"] > base["allocations"] * 1.5 + 64:
                failures.append(
                    f"{job['name']}: {job['allocations']} allocations vs "
                    f"{base['allocations']} committed (>1.5x)"
                )

    if fresh["total_seconds"] > committed["total_seconds"] * factor:
        failures.append(
            f"total: {fresh['total_seconds']:.3f}s vs "
            f"{committed['total_seconds']:.3f}s "
            f"(+{(fresh['total_seconds'] / committed['total_seconds'] - 1) * 100:.0f}%)"
        )

    missing = set(base_jobs) - {j["name"] for j in fresh["jobs"]}
    for name in sorted(missing):
        failures.append(f"{name}: present in baseline but missing from fresh run")

    if failures:
        print("perf regression detected:")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print(
        f"bench ok: {fresh['total_seconds']:.2f}s total vs "
        f"{committed['total_seconds']:.2f}s committed "
        f"({len(fresh['jobs'])} jobs, tolerance {args.tolerance:.0f}%)"
    )


if __name__ == "__main__":
    main()
