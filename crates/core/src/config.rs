//! Branch Runahead configurations (paper Table 2).

/// Chain initiation policy (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InitiationMode {
    /// A chain must finish execution before initiating successors.
    NonSpeculative,
    /// Wildcard-tagged successors initiate as soon as the predecessor
    /// *initiates*; non-wildcard successors wait for its outcome.
    IndependentEarly,
    /// Non-wildcard successors are initiated early using a per-branch
    /// 3-bit counter prediction; mispredicted initiations are flushed.
    Predictive,
}

impl InitiationMode {
    /// All three policies, in increasing aggressiveness (Figure 11 bottom).
    pub const ALL: [InitiationMode; 3] = [
        InitiationMode::NonSpeculative,
        InitiationMode::IndependentEarly,
        InitiationMode::Predictive,
    ];
}

/// Parameters of the Branch Runahead hardware (Table 2 presets below).
#[derive(Clone, Copy, Debug)]
pub struct BranchRunaheadConfig {
    /// Display name.
    pub name: &'static str,
    /// Dependence chain cache entries (LRU).
    pub chain_cache_entries: usize,
    /// Concurrent dynamic chain instances (local RF + RS pairs). This is
    /// the "window size" of Figure 13.
    pub window_instances: usize,
    /// Dedicated DCE ALUs; 0 = Core-Only (shares the core's FUs, executing
    /// only in issue slots the core leaves idle).
    pub dce_alus: usize,
    /// DCE outstanding-miss budget.
    pub dce_mshrs: usize,
    /// Number of per-branch prediction queues.
    pub num_queues: usize,
    /// Entries per prediction queue.
    pub queue_entries: usize,
    /// Hard Branch Table entries.
    pub hbt_entries: usize,
    /// Chain Extraction Buffer entries (retired uops).
    pub ceb_entries: usize,
    /// Maximum dependence-chain length in uops (§1: < 16).
    pub max_chain_len: usize,
    /// Local registers per chain register file.
    pub local_regs: usize,
    /// Wrong Path Buffer entries.
    pub wpb_entries: usize,
    /// Wrong Path Buffer associativity.
    pub wpb_ways: usize,
    /// Maximum merge-point distance in uops (§4.4: 100 in experiments).
    pub max_merge_distance: usize,
    /// Chain initiation policy.
    pub initiation: InitiationMode,
    /// Schedule chain uops in order instead of out of order (§4.2 reports
    /// in-order scheduling cannot expose enough MLP; kept as an ablation).
    pub dce_in_order: bool,
    /// Detect and use affector/guard relationships (§4.4; disabling this
    /// is the ablation for the paper's second contribution bullet).
    pub enable_affector_guards: bool,
}

impl BranchRunaheadConfig {
    /// Core-Only (9 KB): shares reservation stations, physical registers
    /// and functional units with the core.
    #[must_use]
    pub fn core_only() -> Self {
        BranchRunaheadConfig {
            name: "core-only",
            chain_cache_entries: 32,
            window_instances: 8,
            dce_alus: 0,
            dce_mshrs: 48,
            num_queues: 16,
            queue_entries: 256,
            hbt_entries: 64,
            ceb_entries: 512,
            max_chain_len: 16,
            local_regs: 8,
            wpb_entries: 128,
            wpb_ways: 4,
            max_merge_distance: 100,
            initiation: InitiationMode::Predictive,
            dce_in_order: false,
            enable_affector_guards: true,
        }
    }

    /// Mini (17 KB): 64 local register files and reservation stations.
    #[must_use]
    pub fn mini() -> Self {
        BranchRunaheadConfig {
            name: "mini",
            window_instances: 64,
            dce_alus: 2,
            ..Self::core_only()
        }
    }

    /// Big (unlimited): parameters raised far beyond reasonable limits to
    /// expose the technique's ceiling (§5.2).
    #[must_use]
    pub fn big() -> Self {
        BranchRunaheadConfig {
            name: "big",
            chain_cache_entries: 1024,
            window_instances: 1024,
            dce_alus: 4,
            dce_mshrs: 64,
            num_queues: 1024,
            queue_entries: 256,
            hbt_entries: 1024,
            ceb_entries: 2048,
            max_chain_len: 16,
            ..Self::mini()
        }
    }

    /// Approximate storage in KiB (chain cache + window + queues + HBT +
    /// CEB), mirroring the paper's 9 KB / 17 KB labels.
    #[must_use]
    pub fn storage_kib(&self) -> f64 {
        let chain_cache = self.chain_cache_entries * self.max_chain_len * 4; // 4B/uop
        let window = self.window_instances * (self.local_regs * 8 + 16); // RF + RS tags
        let queues = self.num_queues * self.queue_entries / 8; // ~1 bit/entry + ctl
        let hbt = self.hbt_entries * 16;
        let ceb = self.ceb_entries * 4;
        (chain_cache + window + queues + hbt + ceb) as f64 / 1024.0
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized structures or a chain length above 64.
    pub fn validate(&self) {
        assert!(self.chain_cache_entries > 0);
        assert!(self.window_instances > 0);
        assert!(self.num_queues > 0 && self.queue_entries > 0);
        assert!(self.hbt_entries > 0 && self.ceb_entries > 0);
        assert!(
            (1..=128).contains(&self.max_chain_len),
            "chain length cap out of range"
        );
        assert!(self.local_regs >= 2 && self.local_regs <= 32);
        assert!(self.wpb_entries.is_multiple_of(self.wpb_ways));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_scale() {
        for cfg in [
            BranchRunaheadConfig::core_only(),
            BranchRunaheadConfig::mini(),
            BranchRunaheadConfig::big(),
        ] {
            cfg.validate();
        }
        let co = BranchRunaheadConfig::core_only().storage_kib();
        let mini = BranchRunaheadConfig::mini().storage_kib();
        let big = BranchRunaheadConfig::big().storage_kib();
        assert!(co < mini && mini < big);
        assert!(co < 12.0, "core-only should be ~9KB class: {co}");
        assert!((10.0..30.0).contains(&mini), "mini ~17KB class: {mini}");
    }

    #[test]
    fn initiation_modes_enumerated() {
        assert_eq!(InitiationMode::ALL.len(), 3);
    }
}
