//! Property-based architectural equivalence: for randomly generated
//! programs, the out-of-order core (with speculation, wrong-path
//! execution, recovery, and optionally Branch Runahead steering fetch)
//! must compute exactly the same architectural state as the functional
//! emulator. This is the strongest cross-crate invariant in the system.

use branch_runahead::isa::{
    reg, ArchReg, Cond, Machine, MemOperand, MemoryImage, Program, ProgramBuilder,
};
use branch_runahead::mem::{MemoryConfig, MemorySystem};
use branch_runahead::ooo::{Core, CoreConfig, NullHooks};
use branch_runahead::predictor::Bimodal;
use branch_runahead::runahead::{BranchRunahead, BranchRunaheadConfig};

/// One loop-body operation in the generated program.
#[derive(Clone, Debug)]
enum GenOp {
    Add(u8, u8, i16),
    Sub(u8, u8, u8),
    Mul(u8, u8),
    Xor(u8, u8, u8),
    Shift(u8, u8, u8),
    Load(u8, u8),
    Store(u8, u8),
    /// A data-dependent skip: `if (reg & mask) skip next ops`.
    Branch(u8, u8, u8),
    /// A call to a tiny helper function (exercises RAS + link register
    /// across speculation).
    CallHelper,
}

const GPRS: [ArchReg; 6] = [reg::R2, reg::R3, reg::R4, reg::R5, reg::R6, reg::R7];
// (R7 doubles as the helper function's accumulator; it stays in the
// compared set so call effects are checked too.)

fn gpr(i: u8) -> ArchReg {
    GPRS[i as usize % GPRS.len()]
}

/// Deterministic xorshift64 generator for case generation (the container
/// builds hermetically, so no external property-testing dependency).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn gen_op(rng: &mut Rng) -> GenOp {
    // Weights 3×8 : 2, as in the original strategy.
    match rng.below(26) {
        0..=2 => GenOp::Add(rng.next() as u8, rng.next() as u8, rng.next() as i16),
        3..=5 => GenOp::Sub(rng.next() as u8, rng.next() as u8, rng.next() as u8),
        6..=8 => GenOp::Mul(rng.next() as u8, rng.next() as u8),
        9..=11 => GenOp::Xor(rng.next() as u8, rng.next() as u8, rng.next() as u8),
        12..=14 => GenOp::Shift(rng.next() as u8, rng.next() as u8, rng.below(6) as u8),
        15..=17 => GenOp::Load(rng.next() as u8, rng.next() as u8),
        18..=20 => GenOp::Store(rng.next() as u8, rng.next() as u8),
        21..=23 => GenOp::Branch(
            rng.next() as u8,
            1 + rng.below(7) as u8,
            1 + rng.below(3) as u8,
        ),
        _ => GenOp::CallHelper,
    }
}

/// Builds a bounded program: `trips` iterations of a loop whose body is
/// the generated op list. Memory accesses are masked into a small window
/// so loads and stores alias frequently (stressing forwarding).
fn build_program(ops: &[GenOp], trips: u8) -> Program {
    let mut b = ProgramBuilder::new();
    // Helper function used by CallHelper ops: r7 = r7*3 + 1; ret.
    let helper = b.new_label();
    let entry = b.new_label();
    b.jmp(entry);
    b.bind(helper);
    b.mul(reg::R7, reg::R7, 3i64);
    b.addi(reg::R7, reg::R7, 1);
    b.ret(reg::R15);
    b.bind(entry);
    b.mov_imm(reg::R0, i64::from(trips));
    b.mov_imm(reg::R12, 0x1000); // data window base
    for (i, r) in GPRS.iter().enumerate() {
        b.mov_imm(*r, (i as i64 + 1) * 0x0001_2345);
    }
    let top = b.here();
    let mut pending_skip: Option<(branch_runahead::isa::Label, u8)> = None;
    for op in ops {
        if let Some((label, remaining)) = pending_skip {
            if remaining == 0 {
                b.bind(label);
                pending_skip = None;
            } else {
                pending_skip = Some((label, remaining - 1));
            }
        }
        match *op {
            GenOp::Add(d, s, i) => {
                b.addi(gpr(d), gpr(s), i64::from(i));
            }
            GenOp::Sub(d, a, s) => {
                b.sub(gpr(d), gpr(a), gpr(s));
            }
            GenOp::Mul(d, s) => {
                b.mul(gpr(d), gpr(s), 3i64);
            }
            GenOp::Xor(d, a, s) => {
                b.xor(gpr(d), gpr(a), gpr(s));
            }
            GenOp::Shift(d, s, k) => {
                b.shr(gpr(d), gpr(s), i64::from(k));
            }
            GenOp::Load(d, a) => {
                b.and(reg::R14, gpr(a), 0xf8i64);
                b.load(gpr(d), MemOperand::base_index(reg::R12, reg::R14, 1, 0));
            }
            GenOp::Store(v, a) => {
                b.and(reg::R14, gpr(a), 0xf8i64);
                b.store(MemOperand::base_index(reg::R12, reg::R14, 1, 0), gpr(v));
            }
            GenOp::Branch(r, m, n) => {
                if pending_skip.is_none() {
                    let l = b.new_label();
                    b.and(reg::R14, gpr(r), i64::from(m));
                    b.cmpi(reg::R14, 0);
                    b.br(Cond::Eq, l);
                    pending_skip = Some((l, n));
                }
            }
            GenOp::CallHelper => {
                b.call(helper, reg::R15);
            }
        }
    }
    if let Some((label, _)) = pending_skip {
        b.bind(label);
    }
    b.subi(reg::R0, reg::R0, 1);
    b.cmpi(reg::R0, 0);
    b.br(Cond::Ne, top);
    b.halt();
    b.build().expect("generated program assembles")
}

fn reference_state(program: &Program) -> Vec<u64> {
    let mut m = Machine::new(MemoryImage::new().into_memory());
    m.run(program, 5_000_000).expect("reference run");
    assert!(m.halted(), "reference must halt");
    GPRS.iter().map(|r| m.reg(*r)).collect()
}

fn core_state(program: &Program, with_br: bool) -> Vec<u64> {
    let machine = Machine::new(MemoryImage::new().into_memory());
    let mut core = Core::new(
        CoreConfig::default(),
        program.clone(),
        machine,
        Box::new(Bimodal::new(10)), // weak predictor => constant recovery stress
    );
    let mut mem = MemorySystem::new(MemoryConfig::default());
    let mut br = with_br.then(|| BranchRunahead::new(BranchRunaheadConfig::mini(), 4));
    for cycle in 0..3_000_000u64 {
        let resps = mem.tick(cycle);
        let report = match &mut br {
            Some(b) => {
                let report = core.tick(&resps, &mut mem, b);
                b.tick(cycle, core.machine(), &mut mem, &resps, &report);
                report
            }
            None => core.tick(&resps, &mut mem, &mut NullHooks),
        };
        if report.done {
            let m = core.machine();
            return GPRS.iter().map(|r| m.reg(*r)).collect();
        }
    }
    panic!("core did not finish");
}

#[test]
fn core_matches_functional_reference() {
    for case in 0..24u64 {
        let mut rng = Rng::new(0xa5a5_5a5a ^ (case << 32) ^ case);
        let n_ops = 1 + rng.below(23) as usize;
        let ops: Vec<GenOp> = (0..n_ops).map(|_| gen_op(&mut rng)).collect();
        let trips = 1 + rng.below(23) as u8;
        let program = build_program(&ops, trips);
        let expected = reference_state(&program);
        assert_eq!(
            core_state(&program, false),
            expected,
            "case {case}: {ops:?} trips={trips}"
        );
    }
}

#[test]
fn core_with_branch_runahead_matches_reference() {
    for case in 0..24u64 {
        let mut rng = Rng::new(0x1357_9bdf ^ (case << 32) ^ case);
        let n_ops = 1 + rng.below(19) as usize;
        let ops: Vec<GenOp> = (0..n_ops).map(|_| gen_op(&mut rng)).collect();
        let trips = 1 + rng.below(15) as u8;
        let program = build_program(&ops, trips);
        let expected = reference_state(&program);
        assert_eq!(
            core_state(&program, true),
            expected,
            "case {case}: {ops:?} trips={trips}"
        );
    }
}
