//! The complete Branch Runahead system, wired into the core's hooks.
//!
//! Placement mirrors Figure 6: extraction hardware observes retirement
//! (CEB, HBT), the merge-point predictor observes flushes and retirement
//! (WPB + poison), the prediction queues sit in front of the branch
//! predictor at fetch, and the DCE runs asynchronously, synchronized by
//! mispredictions.

use br_isa::{CpuState, Machine, Pc};
use br_mem::{MemResp, MemorySystem};
use br_ooo::{
    BranchOutcome, CoreHooks, CycleReport, FetchedBranch, MispredictInfo, RetiredUop, WrongPathUop,
};
use br_telemetry::{CounterId, EventKind, GaugeId, HistId, Telemetry};

use crate::agdetect::PoisonDetector;
use crate::ceb::{CebRecord, ChainExtractionBuffer};
use crate::chain_cache::DependenceChainCache;
use crate::config::BranchRunaheadConfig;
use crate::dce::DependenceChainEngine;
use crate::extract::{extract_chain_with, ExtractLimits, ExtractScratch};
use crate::hbt::HardBranchTable;
use crate::pqueue::{FetchVerdict, PredictionQueues, QueueCheckpoint};
use crate::stats::{BrStats, PredictionCategory};
use crate::wpb::WrongPathBuffer;

#[derive(Clone, Copy, Debug)]
enum Consumed {
    Used { slot: u64, value: bool },
    Late { slot: u64 },
    Throttled { slot: u64 },
    Inactive,
}

#[derive(Clone, Copy, Debug)]
struct Consumption {
    pc: Pc,
    kind: Consumed,
}

/// Diagnostic validation of merge-point predictions (the §4.4 "92%
/// accurate" measurement): a prediction is correct when the predicted
/// merge PC is observed on *both* future directions of the branch.
#[derive(Clone, Debug)]
struct MergeValidation {
    merge_pc: Pc,
    /// The prior-work static heuristic's merge point: the branch's taken
    /// target (filled in lazily from the first retired instance).
    static_pc: Option<Pc>,
    /// Found-on-path result per direction (index 0 = not-taken): (wpb
    /// merge found, static merge found).
    seen: [Option<(bool, bool)>; 2],
    /// Active scan: (direction, remaining uops, wpb found, static found).
    tracking: Option<(bool, usize, bool, bool)>,
}

/// Pre-registered telemetry ids for the engine's instrumentation sites
/// (inert defaults when the sink is disabled).
#[derive(Clone, Copy, Debug, Default)]
struct BrTeleIds {
    extraction_attempts: CounterId,
    chains_extracted: CounterId,
    extraction_rejects: CounterId,
    dce_flushes: CounterId,
    dce_syncs: CounterId,
    merge_events: CounterId,
    hbt_inserts: CounterId,
    hbt_evicts: CounterId,
    faults_injected: CounterId,
    machine_checks: CounterId,
    chain_len: HistId,
    cached_chains: GaugeId,
}

impl BrTeleIds {
    fn register(tele: &mut Telemetry) -> Self {
        BrTeleIds {
            extraction_attempts: tele.counter("br.extraction_attempts"),
            chains_extracted: tele.counter("br.chains_extracted"),
            extraction_rejects: tele.counter("br.extraction_rejects"),
            dce_flushes: tele.counter("br.dce_flushes"),
            dce_syncs: tele.counter("br.dce_syncs"),
            merge_events: tele.counter("br.merge_events"),
            hbt_inserts: tele.counter("br.hbt_inserts"),
            hbt_evicts: tele.counter("br.hbt_evicts"),
            faults_injected: tele.counter("br.faults_injected"),
            machine_checks: tele.counter("br.machine_checks"),
            chain_len: tele.histogram("br.chain_len"),
            cached_chains: tele.gauge("br.cached_chains"),
        }
    }
}

/// Point-in-time occupancy of the Branch Runahead structures, read by the
/// interval sampler.
#[derive(Clone, Copy, Debug, Default)]
pub struct BrLiveState {
    /// Chain instances currently executing in the DCE.
    pub dce_active: usize,
    /// Live prediction-queue slots across all queues.
    pub queue_slots: usize,
    /// Chains resident in the dependence chain cache.
    pub cached_chains: usize,
    /// Lifetime chain-cache lookups.
    pub cache_lookups: u64,
    /// Lifetime chain-cache lookups that matched at least one chain.
    pub cache_hits: u64,
}

/// The Branch Runahead system. Implements [`CoreHooks`]; call
/// [`BranchRunahead::tick`] once per cycle after the core's tick.
pub struct BranchRunahead {
    cfg: BranchRunaheadConfig,
    retire_width: usize,
    hbt: HardBranchTable,
    ceb: ChainExtractionBuffer,
    wpb: WrongPathBuffer,
    poison: Option<PoisonDetector>,
    cache: DependenceChainCache,
    queues: PredictionQueues,
    dce: DependenceChainEngine,
    stats: BrStats,

    pending_consumption: Option<Consumption>,
    /// In-flight bookkeeping keyed by fetch sequence number. Every squash
    /// funnels through [`CoreHooks::on_mispredict`] before sequence
    /// numbers are recycled, so the live key sets stay strictly
    /// increasing — sorted Vecs with binary search replace hash maps on
    /// the per-fetched-branch path.
    consumptions: Vec<(u64, Consumption)>,
    checkpoints: Vec<(u64, QueueCheckpoint)>,
    /// Recycled checkpoint buffers: `on_branch_fetch` runs once per
    /// fetched branch, so pooling removes a per-branch allocation.
    checkpoint_pool: Vec<QueueCheckpoint>,
    validations: Vec<(Pc, MergeValidation)>,
    /// Scratch for [`BranchRunahead::feed_merge_validator`].
    finished_scans: Vec<(Pc, bool, bool, bool)>,
    /// Reusable extraction buffers.
    extract_scratch: ExtractScratch,

    tele: Telemetry,
    tids: BrTeleIds,
    /// HBT `(inserts, evicts)` at the last telemetry poll.
    last_hbt_churn: (u64, u64),
}

impl std::fmt::Debug for BranchRunahead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BranchRunahead")
            .field("config", &self.cfg.name)
            .field("chains", &self.cache.len())
            .finish()
    }
}

impl BranchRunahead {
    /// Creates a Branch Runahead system. `retire_width` models the ROB
    /// walk copy rate into the WPB (footnote 14).
    #[must_use]
    pub fn new(cfg: BranchRunaheadConfig, retire_width: usize) -> Self {
        cfg.validate();
        BranchRunahead {
            retire_width,
            hbt: HardBranchTable::new(cfg.hbt_entries),
            ceb: ChainExtractionBuffer::new(cfg.ceb_entries),
            wpb: WrongPathBuffer::new(cfg.wpb_entries, cfg.wpb_ways, cfg.max_merge_distance),
            poison: None,
            cache: DependenceChainCache::new(cfg.chain_cache_entries),
            queues: PredictionQueues::new(cfg.num_queues, cfg.queue_entries),
            dce: DependenceChainEngine::new(cfg),
            stats: BrStats::default(),
            pending_consumption: None,
            consumptions: Vec::new(),
            checkpoints: Vec::new(),
            checkpoint_pool: Vec::new(),
            validations: Vec::new(),
            finished_scans: Vec::new(),
            extract_scratch: ExtractScratch::default(),
            tele: Telemetry::off(),
            tids: BrTeleIds::default(),
            last_hbt_churn: (0, 0),
            cfg,
        }
    }

    /// Attaches a telemetry sink; the engine registers its metrics against
    /// it and records into it until [`BranchRunahead::take_telemetry`].
    pub fn attach_telemetry(&mut self, mut tele: Telemetry) {
        self.tids = BrTeleIds::register(&mut tele);
        self.tele = tele;
        self.last_hbt_churn = self.hbt.churn();
    }

    /// Detaches and returns the telemetry sink (a disabled sink remains).
    pub fn take_telemetry(&mut self) -> Telemetry {
        std::mem::take(&mut self.tele)
    }

    /// Current occupancy of the engine's structures (interval sampling).
    #[must_use]
    pub fn live_state(&self) -> BrLiveState {
        let (cache_lookups, cache_hits) = self.cache.lookup_stats();
        BrLiveState {
            dce_active: self.dce.active_instances(),
            queue_slots: self.queues.occupied_slots(),
            cached_chains: self.cache.len(),
            cache_lookups,
            cache_hits,
        }
    }

    /// Advances the DCE one cycle. Call after the core's tick with the
    /// same memory responses and the core's resource report.
    pub fn tick(
        &mut self,
        cycle: u64,
        machine: &Machine,
        mem: &mut MemorySystem,
        responses: &[MemResp],
        report: &CycleReport,
    ) {
        self.dce.tick(
            cycle,
            machine,
            mem,
            responses,
            report.free_load_ports,
            report.free_issue_slots,
            &mut self.cache,
            &mut self.queues,
            &mut self.stats,
        );
    }

    /// Accumulated statistics, with WPB counters folded in.
    #[must_use]
    pub fn stats(&self) -> BrStats {
        let mut s = self.stats.clone();
        let (_, found, failed) = self.wpb.stats();
        s.merge_points_found = found;
        s.merge_points_failed = failed;
        s
    }

    /// The dependence chain cache (inspection / examples).
    #[must_use]
    pub fn chain_cache(&self) -> &DependenceChainCache {
        &self.cache
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &BranchRunaheadConfig {
        &self.cfg
    }

    /// The Hard Branch Table (inspection / examples).
    #[must_use]
    pub fn hard_branch_table(&self) -> &HardBranchTable {
        &self.hbt
    }

    // ---------------------------------------------- fault injection
    //
    // The `chaos_*` entry points below are driven by the simulator's
    // fault harness (`br_sim::faults`). Every one of them perturbs only
    // *speculative assist* state — chain outcomes are hints, so the
    // worst any of these can do is cost performance. The machine-check
    // layer (`check_invariants`) plus the harness's architectural-
    // equivalence comparison prove that claim under soak.

    /// Fault injection: evicts a pseudo-random chain-cache entry
    /// (selected by `sel`). Returns whether an entry existed to evict.
    pub fn chaos_evict_chain(&mut self, sel: u64, cycle: u64) -> bool {
        let evicted = self.cache.chaos_evict(sel);
        if evicted {
            self.tele.add(self.tids.faults_injected, 1);
            self.tele.event(cycle, EventKind::FaultInject, 0, 2);
        }
        evicted
    }

    /// Fault injection: forces an HBT decay storm.
    pub fn chaos_decay_storm(&mut self, cycle: u64) {
        self.hbt.chaos_decay_storm();
        self.tele.add(self.tids.faults_injected, 1);
        self.tele.event(cycle, EventKind::FaultInject, 0, 3);
    }

    /// Fault injection: swallows the next DCE→prediction-queue push.
    pub fn chaos_drop_next_fill(&mut self, cycle: u64) {
        self.queues.chaos_drop_next_fill();
        self.tele.add(self.tids.faults_injected, 1);
        self.tele.event(cycle, EventKind::FaultInject, 0, 1);
    }

    /// Whether memory request `id` is an outstanding DCE load (the fault
    /// harness delays only DCE traffic; core responses are never touched).
    #[must_use]
    pub fn owns_mem_request(&self, id: br_mem::ReqId) -> bool {
        self.dce.owns_request(id)
    }

    /// Records a fault injected outside the engine (outcome flips and
    /// DCE memory delays live in the simulator) so telemetry still sees
    /// it. `kind_code` follows `br_sim::faults::FaultKind`.
    pub fn record_external_fault(&mut self, cycle: u64, pc: Pc, kind_code: u64) {
        self.tele.add(self.tids.faults_injected, 1);
        self.tele
            .event(cycle, EventKind::FaultInject, pc, kind_code);
    }

    /// Deliberately corrupts a prediction-queue fetch pointer. Exists
    /// only so CI can prove the machine-check layer catches and reports
    /// real violations; never called outside that fixture.
    #[doc(hidden)]
    pub fn chaos_sabotage(&mut self) {
        self.queues.sabotage_fetch_pointer();
    }

    /// Runs a machine-check sweep over every structure's invariants:
    /// prediction-queue pointer ordering, chain-cache LRU consistency,
    /// HBT counter saturation bounds, CEB circularity, and DCE window /
    /// MSHR bounds.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, described.
    pub fn check_invariants(&mut self, cycle: u64) -> Result<(), String> {
        self.tele.add(self.tids.machine_checks, 1);
        let result = self
            .queues
            .check_invariants()
            .and_then(|()| self.cache.check_invariants())
            .and_then(|()| self.hbt.check_invariants())
            .and_then(|()| self.ceb.check_invariants())
            .and_then(|()| self.dce.check_invariants());
        self.tele.event(
            cycle,
            EventKind::MachineCheck,
            0,
            u64::from(result.is_err()),
        );
        result
    }

    fn run_extraction(&mut self, pc: Pc, cycle: u64) {
        self.stats.extraction_attempts += 1;
        self.tele.add(self.tids.extraction_attempts, 1);
        let mut ag = self.hbt.affector_guards(pc);
        if !self.cfg.enable_affector_guards {
            ag.clear();
        }
        ag.retain(|p| !self.hbt.is_biased(*p));
        let limits = ExtractLimits {
            max_chain_len: self.cfg.max_chain_len,
            local_regs: self.cfg.local_regs,
        };
        match extract_chain_with(&mut self.extract_scratch, &self.ceb, pc, &ag, &limits) {
            Ok(chain) => {
                self.stats.chains_extracted += 1;
                self.stats.chain_len_sum += chain.len() as u64;
                if chain.guard_terminated || !ag.is_empty() {
                    self.stats.chains_with_ag += 1;
                }
                self.stats.uops_eliminated += chain.eliminated_uops as u64;
                self.tele.add(self.tids.chains_extracted, 1);
                self.tele.record(self.tids.chain_len, chain.len() as u64);
                self.tele
                    .event(cycle, EventKind::ChainExtract, pc, chain.len() as u64);
                self.cache.install(chain);
                self.tele
                    .set_gauge(self.tids.cached_chains, self.cache.len() as i64);
            }
            Err(_) => {
                self.stats.extraction_rejects += 1;
                self.tele.add(self.tids.extraction_rejects, 1);
                self.tele.event(cycle, EventKind::ChainReject, pc, 0);
            }
        }
    }

    fn feed_merge_validator(&mut self, u: &RetiredUop) {
        // Advance active scans.
        let mut finished = std::mem::take(&mut self.finished_scans);
        finished.clear();
        for (bpc, v) in &mut self.validations {
            if let Some((dir, remaining, found, found_static)) = &mut v.tracking {
                *found |= u.uop.pc == v.merge_pc;
                *found_static |= v.static_pc == Some(u.uop.pc);
                // The scan ends at the distance bound or at the next
                // dynamic instance of the branch itself (one control-flow
                // region, like the WPB's own walk).
                let at_next_instance = u.uop.pc == *bpc;
                if (*found && *found_static) || *remaining == 0 || at_next_instance {
                    finished.push((*bpc, *dir, *found, *found_static));
                    v.tracking = None;
                } else {
                    *remaining -= 1;
                }
            }
        }
        for &(bpc, dir, found, found_static) in &finished {
            if let Some(i) = self.validations.iter().position(|(p, _)| *p == bpc) {
                let v = &mut self.validations[i].1;
                v.seen[usize::from(dir)] = Some((found, found_static));
                if let [Some((nt, snt)), Some((t, st))] = v.seen {
                    self.stats.merge_validated += 1;
                    if nt && t {
                        self.stats.merge_correct += 1;
                    }
                    self.stats.static_merge_validated += 1;
                    if snt && st {
                        self.stats.static_merge_correct += 1;
                    }
                    self.validations.remove(i);
                }
            }
        }
        self.finished_scans = finished;
        // Start a scan when a validated branch retires in an unseen
        // direction.
        if u.uop.is_cond_branch() {
            if let Some(b) = u.rec.branch {
                let dir = b.actual_taken;
                if let Some(v) = self
                    .validations
                    .iter_mut()
                    .find_map(|(p, v)| (*p == u.uop.pc).then_some(v))
                {
                    // The static prior-work heuristic: merge = taken target.
                    if v.static_pc.is_none() {
                        v.static_pc = Some(b.target);
                    }
                    if v.tracking.is_none() && v.seen[usize::from(dir)].is_none() {
                        v.tracking = Some((dir, self.cfg.max_merge_distance, false, false));
                    }
                }
            }
        }
    }
}

impl CoreHooks for BranchRunahead {
    fn override_prediction(&mut self, pc: Pc, _base: bool, _cycle: u64) -> Option<bool> {
        if !self.cache.covers_branch(pc) {
            self.pending_consumption = None;
            return None;
        }
        let (kind, result) = match self.queues.consume_at_fetch(pc) {
            FetchVerdict::Use { slot, value } => (Consumed::Used { slot, value }, Some(value)),
            FetchVerdict::Throttled { slot, .. } => (Consumed::Throttled { slot }, None),
            FetchVerdict::Late { slot } => (Consumed::Late { slot }, None),
            FetchVerdict::Inactive | FetchVerdict::NoQueue => (Consumed::Inactive, None),
        };
        self.pending_consumption = Some(Consumption { pc, kind });
        result
    }

    fn on_branch_fetch(&mut self, b: &FetchedBranch) {
        if let Some(c) = self.pending_consumption.take() {
            debug_assert_eq!(c.pc, b.pc, "consumption/fetch pairing broke");
            debug_assert!(self.consumptions.last().is_none_or(|(s, _)| *s < b.seq));
            self.consumptions.push((b.seq, c));
        }
        let mut cp = self.checkpoint_pool.pop().unwrap_or_default();
        self.queues.checkpoint_into(&mut cp);
        debug_assert!(self.checkpoints.last().is_none_or(|(s, _)| *s < b.seq));
        self.checkpoints.push((b.seq, cp));
    }

    fn on_mispredict(
        &mut self,
        info: &MispredictInfo,
        wrong_path: &[WrongPathUop],
        cpu: &CpuState,
    ) {
        // Rewind prediction-queue fetch pointers to this branch.
        if let Ok(i) = self.checkpoints.binary_search_by_key(&info.seq, |e| e.0) {
            self.queues.restore(&self.checkpoints[i].1);
        }
        // Squash bookkeeping for younger branches (keys sorted: truncate).
        let keep = self.consumptions.partition_point(|e| e.0 <= info.seq);
        self.consumptions.truncate(keep);
        let keep = self.checkpoints.partition_point(|e| e.0 <= info.seq);
        self.checkpoint_pool
            .extend(self.checkpoints.drain(keep..).map(|(_, cp)| cp));

        // Merge-point prediction: capture the wrong path. Only
        // conditional branches have merge points / guard semantics;
        // indirect-target mispredictions still rewind the queues above
        // but must not pollute the HBT's affector/guard lists.
        if info.conditional {
            self.wpb
                .arm(info.pc, info.seq, wrong_path, info.cycle, self.retire_width);
        }

        // Synchronization policy (§3, §4.1): chains run asynchronously
        // "until a misprediction from the dependence chains is detected".
        // A misprediction the DCE caused means the chains diverged —
        // flush and re-copy live-ins. A TAGE misprediction while the DCE
        // is idle is the entry into runahead mode. A TAGE misprediction
        // while chains are already running leaves them alone: the queue
        // fetch-pointer restore above re-aligns consumption.
        let dce_diverged = info.provenance == br_ooo::PredictionProvenance::Dce;
        if dce_diverged {
            // Throttle bookkeeping must happen *before* the slots vanish
            // in the flush: a DCE-wrong/TAGE-right event silences this
            // branch's queue (§4.2 Prediction Throttling).
            if info.base_prediction == info.actual_taken {
                self.queues.penalize(info.pc);
            }
            self.tele.add(self.tids.dce_flushes, 1);
            self.tele.event(
                info.cycle,
                EventKind::DceFlush,
                info.pc,
                self.dce.active_instances() as u64,
            );
            self.dce.flush_all(&mut self.queues, &mut self.stats);
            self.queues.clear_all();
            if self.cache.has_match(info.pc, info.actual_taken) {
                self.tele.add(self.tids.dce_syncs, 1);
                self.tele.event(
                    info.cycle,
                    EventKind::DceSync,
                    info.pc,
                    u64::from(info.actual_taken),
                );
                self.dce.sync_initiate(
                    info.pc,
                    info.actual_taken,
                    cpu,
                    &mut self.cache,
                    &mut self.queues,
                    &mut self.stats,
                );
            }
        } else if self.dce.active_instances() == 0
            && self.cache.has_match(info.pc, info.actual_taken)
        {
            self.queues.clear_all();
            self.tele.add(self.tids.dce_syncs, 1);
            self.tele.event(
                info.cycle,
                EventKind::DceSync,
                info.pc,
                u64::from(info.actual_taken),
            );
            self.dce.sync_initiate(
                info.pc,
                info.actual_taken,
                cpu,
                &mut self.cache,
                &mut self.queues,
                &mut self.stats,
            );
        }
    }

    fn on_retire(&mut self, u: &RetiredUop) {
        // Indirect jumps get queue-pointer checkpoints at fetch (any flush
        // must rewind the queues) but no branch-retire callback; clean
        // their checkpoints here.
        if u.uop.is_indirect() {
            if let Ok(i) = self.checkpoints.binary_search_by_key(&u.seq, |e| e.0) {
                self.checkpoint_pool.push(self.checkpoints.remove(i).1);
            }
        }
        self.ceb.push(CebRecord::from_retired(u));

        if let Some(ev) = self.wpb.on_correct_retire(u) {
            self.tele.add(self.tids.merge_events, 1);
            self.tele
                .event(u.cycle, EventKind::WpbMerge, ev.branch_pc, ev.merge_pc);
            // Guard registration: the merge-predicted branch guards every
            // branch observed before the merge point.
            if self.cfg.enable_affector_guards {
                for guarded in &ev.guarded {
                    if self.hbt.add_affector_guard(*guarded, ev.branch_pc) {
                        self.stats.ag_pairs += 1;
                    }
                }
            }
            // Begin affector detection from the merge point.
            self.poison = Some(PoisonDetector::new(&ev, self.cfg.max_merge_distance));
            // Register for diagnostic validation (bounded).
            if self.validations.len() < 64
                && !self.validations.iter().any(|(p, _)| *p == ev.branch_pc)
            {
                self.validations.push((
                    ev.branch_pc,
                    MergeValidation {
                        merge_pc: ev.merge_pc,
                        static_pc: None,
                        seen: [None, None],
                        tracking: None,
                    },
                ));
            }
        }

        if let Some(p) = &mut self.poison {
            if let Some(affectee) = p.step(u) {
                let affector = p.affector();
                if self.cfg.enable_affector_guards
                    && self.hbt.add_affector_guard(affectee, affector)
                {
                    self.stats.ag_pairs += 1;
                }
            }
            if p.is_done() {
                self.poison = None;
            }
        }

        self.feed_merge_validator(u);
    }

    fn on_branch_retire(&mut self, b: &BranchOutcome) {
        if let Ok(i) = self.checkpoints.binary_search_by_key(&b.seq, |e| e.0) {
            self.checkpoint_pool.push(self.checkpoints.remove(i).1);
        }
        self.dce.train_init_counter(b.pc, b.taken);

        // Prediction-queue retirement + Figure 12 accounting.
        let covered = self.cache.covers_branch(b.pc);
        let consumed = self
            .consumptions
            .binary_search_by_key(&b.seq, |e| e.0)
            .ok()
            .map(|i| self.consumptions.remove(i).1);
        if let Some(c) = consumed {
            let tage_correct = b.base_prediction == b.taken;
            match c.kind {
                Consumed::Used { slot, value } => {
                    self.queues.retire(b.pc, slot, b.taken, tage_correct);
                    self.stats.count_category(if value == b.taken {
                        PredictionCategory::Correct
                    } else {
                        PredictionCategory::Incorrect
                    });
                }
                Consumed::Late { slot } => {
                    self.queues.retire(b.pc, slot, b.taken, tage_correct);
                    self.stats.count_category(PredictionCategory::Late);
                }
                Consumed::Throttled { slot } => {
                    self.queues.retire(b.pc, slot, b.taken, tage_correct);
                    self.stats.count_category(PredictionCategory::Throttled);
                }
                Consumed::Inactive => {
                    self.stats.count_category(PredictionCategory::Inactive);
                }
            }
        } else if covered {
            self.stats.count_category(PredictionCategory::Inactive);
        }

        // HBT update; saturation or AG changes trigger chain extraction.
        if self.hbt.on_branch_retire(b.pc, b.taken, b.mispredicted) {
            self.run_extraction(b.pc, b.cycle);
        }

        // HBT allocation churn, polled as deltas (allocations happen both
        // here and inside guard registration; attribution is at the
        // granularity of the triggering retirement).
        if self.tele.is_on() {
            let (inserts, evicts) = self.hbt.churn();
            let (last_i, last_e) = self.last_hbt_churn;
            for _ in last_i..inserts {
                self.tele.add(self.tids.hbt_inserts, 1);
                self.tele.event(b.cycle, EventKind::HbtInsert, b.pc, 0);
            }
            for _ in last_e..evicts {
                self.tele.add(self.tids.hbt_evicts, 1);
                self.tele.event(b.cycle, EventKind::HbtEvict, b.pc, 0);
            }
            self.last_hbt_churn = (inserts, evicts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_isa::{reg, Cond, Machine, MemOperand, MemoryImage, ProgramBuilder};
    use br_mem::MemoryConfig;
    use br_ooo::{Core, CoreConfig, NullHooks};
    use br_predictor::{TageScl, TageSclConfig};

    /// A leela-like kernel: loop over a table of pseudo-random values with
    /// a data-dependent branch (plus a guarded second branch), exactly the
    /// structure of Figure 4a.
    fn board_scan_program(n: u64) -> (br_isa::Program, MemoryImage) {
        let mut img = MemoryImage::new();
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        let mut board = Vec::new();
        for _ in 0..1024 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            board.push(x % 3); // values 0..2; "EMPTY" == 2
        }
        img.write_u64_slice(0x10000, &board);

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0); // i
        b.mov_imm(reg::R12, 0x10000); // board base
        b.mov_imm(reg::R10, 0x243f_6a88); // xorshift state (random probe)
        let top = b.here();
        // xorshift: r10 ^= r10<<13; r10 ^= r10>>7; r10 ^= r10<<17
        b.shl(reg::R11, reg::R10, 13i64);
        b.xor(reg::R10, reg::R10, reg::R11);
        b.shr(reg::R11, reg::R10, 7i64);
        b.xor(reg::R10, reg::R10, reg::R11);
        b.shl(reg::R11, reg::R10, 17i64);
        b.xor(reg::R10, reg::R10, reg::R11);
        // r5 = random board position; r6 = board[r5]
        b.and(reg::R5, reg::R10, 1023i64);
        b.load(reg::R6, MemOperand::base_index(reg::R12, reg::R5, 8, 0));
        b.cmpi(reg::R6, 2);
        b.br(Cond::Ne, skip); // Branch A: data-dependent, ~2/3 taken
                              // Guarded work: a second data-dependent branch (Branch B).
        b.load(reg::R7, MemOperand::base_index(reg::R12, reg::R5, 8, 8));
        b.cmpi(reg::R7, 1);
        b.br(Cond::Ne, skip); // Branch B
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        // do_work(): per-iteration work, as in Figure 4a. Gives the loop a
        // realistic body so the DCE has slack to run ahead.
        for _ in 0..4 {
            b.mul(reg::R8, reg::R8, 3i64);
            b.addi(reg::R9, reg::R9, 7);
            b.xor(reg::R13, reg::R13, reg::R9);
        }
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, n as i64);
        b.br(Cond::Ne, top);
        b.halt();
        (b.build().unwrap(), img)
    }

    fn run(with_br: bool, n: u64) -> (br_ooo::CoreStats, Option<BrStats>) {
        let (program, img) = board_scan_program(n);
        let machine = Machine::new(img.into_memory());
        let mut core = Core::new(
            CoreConfig::default(),
            program,
            machine,
            Box::new(TageScl::new(TageSclConfig::kb64())),
        );
        let mut mem = MemorySystem::new(MemoryConfig::default());
        if with_br {
            let mut br = BranchRunahead::new(BranchRunaheadConfig::mini(), 4);
            for c in 0..4_000_000u64 {
                let resps = mem.tick(c);
                let report = core.tick(&resps, &mut mem, &mut br);
                br.tick(c, core.machine(), &mut mem, &resps, &report);
                if report.done {
                    break;
                }
            }
            (core.stats().clone(), Some(br.stats()))
        } else {
            let mut hooks = NullHooks;
            for c in 0..4_000_000u64 {
                let resps = mem.tick(c);
                if core.tick(&resps, &mut mem, &mut hooks).done {
                    break;
                }
            }
            (core.stats().clone(), None)
        }
    }

    #[test]
    fn branch_runahead_reduces_mispredictions_end_to_end() {
        let n = 6000;
        let (base, _) = run(false, n);
        let (with, br) = run(true, n);
        let br = br.unwrap();

        assert!(
            base.mispredicts > 500,
            "baseline must struggle on the data-dependent branch: {}",
            base.mispredicts
        );
        assert!(br.chains_extracted > 0, "chains must be extracted");
        assert!(br.instances_completed > 100, "chains must run");
        assert!(
            (with.mpki()) < base.mpki() * 0.75,
            "Branch Runahead should cut MPKI by >25%: base {:.2}, BR {:.2}",
            base.mpki(),
            with.mpki()
        );
        assert!(
            with.ipc() > base.ipc(),
            "IPC should improve: base {:.3}, BR {:.3}",
            base.ipc(),
            with.ipc()
        );
        // Architectural correctness is implied by completing the program
        // (the functional machine is shared), but check the DCE actually
        // supplied predictions.
        let used = br.category_fraction(PredictionCategory::Correct)
            + br.category_fraction(PredictionCategory::Incorrect);
        assert!(used > 0.2, "DCE should supply predictions: {used:.3}");
        let correct = br.category_fraction(PredictionCategory::Correct);
        let incorrect = br.category_fraction(PredictionCategory::Incorrect);
        assert!(
            correct > incorrect * 5.0,
            "used predictions should be overwhelmingly correct: {correct:.3} vs {incorrect:.3}"
        );
    }

    #[test]
    fn chain_length_matches_figure2_shape() {
        let (_, br) = run(true, 4000);
        let br = br.unwrap();
        let len = br.avg_chain_len();
        assert!(
            (1.0..=16.0).contains(&len),
            "chains must be short (Fig 2): {len}"
        );
    }

    #[test]
    fn merge_point_prediction_mostly_correct() {
        let (_, br) = run(true, 4000);
        let br = br.unwrap();
        assert!(br.merge_points_found > 0, "merge points must be found");
        if br.merge_validated >= 3 {
            assert!(
                br.merge_accuracy() > 0.6,
                "merge accuracy too low: {:.2} over {}",
                br.merge_accuracy(),
                br.merge_validated
            );
        }
    }
}
