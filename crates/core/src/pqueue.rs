//! Per-branch prediction queues (§4.2).
//!
//! Queues synchronize DCE-computed outcomes with fetch. Slots are
//! allocated at chain initiation (so predictions appear in program
//! order), filled at chain completion, consumed at fetch, and released at
//! retirement. Three pointers per queue — DCE-push (implicit in slot
//! ids), core-fetch, and core-retire (the deque front) — plus a 2-bit
//! throttle counter that silences the DCE when TAGE is doing better.

use std::collections::VecDeque;

use br_isa::Pc;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    /// Allocated, outcome not yet computed.
    Empty,
    /// Outcome available.
    Filled(bool),
    /// The producing chain instance was flushed but the branch execution
    /// it corresponds to will still happen: consumed as a (useless) slot
    /// so iteration correspondence is preserved.
    Dead,
    /// The branch execution this slot corresponds to will never happen
    /// (its guard resolved the other way): fetch skips it entirely.
    Cancelled,
}

#[derive(Clone, Debug)]
struct PredQueue {
    /// Absolute id of `slots[0]`.
    base: u64,
    slots: VecDeque<SlotState>,
    /// Absolute id of the next slot fetch will consume.
    fetch: u64,
    /// 2-bit throttle counter in `-2..=1`; negative = ignore the DCE.
    throttle: i8,
    lru: u64,
}

impl PredQueue {
    fn new() -> Self {
        PredQueue {
            base: 0,
            slots: VecDeque::new(),
            fetch: 0,
            throttle: 0,
            lru: 0,
        }
    }
}

/// What the queue had for a fetched branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchVerdict {
    /// No queue exists for this branch.
    NoQueue,
    /// No chain instance has been initiated for this dynamic branch
    /// (fetch pointer beyond all allocated slots).
    Inactive,
    /// A chain was initiated but hasn't produced the outcome yet; the
    /// slot is consumed anyway (§4.2) and may be filled later.
    Late {
        /// The consumed slot's absolute id.
        slot: u64,
    },
    /// A prediction was available but the throttle counter silenced it.
    Throttled {
        /// The consumed slot's absolute id.
        slot: u64,
        /// The suppressed value.
        value: bool,
    },
    /// A prediction was consumed and used.
    Use {
        /// The consumed slot's absolute id.
        slot: u64,
        /// The predicted direction.
        value: bool,
    },
}

/// A checkpoint of every queue's fetch pointer, taken at each fetched
/// branch and restored on its misprediction.
pub type QueueCheckpoint = Vec<(Pc, u64)>;

/// The prediction-queue file.
#[derive(Clone, Debug)]
pub struct PredictionQueues {
    num_queues: usize,
    entries_per_queue: usize,
    /// Linear-scanned association list: the queue count is the paper's
    /// small hardware budget (16 in the Mini config), so a scan beats
    /// hashing and keeps iteration order deterministic.
    queues: Vec<(Pc, PredQueue)>,
    tick: u64,
    /// Pending fault-injection drops: while nonzero, the next `fill`
    /// calls are swallowed (the slot stays `Empty`, so fetch sees a
    /// `Late` verdict — a pure performance event).
    drop_fills: u32,
}

impl PredictionQueues {
    /// Creates `num_queues` queues of `entries_per_queue` slots each.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes.
    #[must_use]
    pub fn new(num_queues: usize, entries_per_queue: usize) -> Self {
        assert!(num_queues > 0 && entries_per_queue > 0);
        PredictionQueues {
            num_queues,
            entries_per_queue,
            queues: Vec::with_capacity(num_queues),
            tick: 0,
            drop_fills: 0,
        }
    }

    fn queue_mut(&mut self, pc: Pc, create: bool) -> Option<&mut PredQueue> {
        self.tick += 1;
        let tick = self.tick;
        let pos = match self.queues.iter().position(|(p, _)| *p == pc) {
            Some(i) => i,
            None if create => {
                if self.queues.len() >= self.num_queues {
                    // Evict the LRU queue (a different branch loses
                    // tracking). LRU stamps are unique (each touch gets a
                    // fresh tick), so the victim is unambiguous.
                    if let Some(victim) = self
                        .queues
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, q))| q.lru)
                        .map(|(i, _)| i)
                    {
                        self.queues.swap_remove(victim);
                    }
                }
                self.queues.push((pc, PredQueue::new()));
                self.queues.len() - 1
            }
            None => return None,
        };
        let q = &mut self.queues[pos].1;
        q.lru = tick;
        Some(q)
    }

    /// Allocates a slot for a newly initiated chain instance targeting
    /// branch `pc`. Returns the slot's absolute id, or `None` when the
    /// queue is full (the initiation must wait — §4.2: queue size limits
    /// how far ahead the DCE runs).
    pub fn allocate_slot(&mut self, pc: Pc) -> Option<u64> {
        let cap = self.entries_per_queue;
        let q = self.queue_mut(pc, true)?;
        if q.slots.len() >= cap {
            return None;
        }
        q.slots.push_back(SlotState::Empty);
        Some(q.base + q.slots.len() as u64 - 1)
    }

    /// Fills a slot with a computed outcome. Silently ignores stale slot
    /// ids (queue cleared or entry retired since allocation).
    pub fn fill(&mut self, pc: Pc, slot: u64, outcome: bool) {
        if self.drop_fills > 0 {
            self.drop_fills -= 1;
            return;
        }
        if let Some(q) = self.queue_mut(pc, false) {
            if slot >= q.base {
                if let Some(s) = q.slots.get_mut((slot - q.base) as usize) {
                    if *s == SlotState::Empty {
                        *s = SlotState::Filled(outcome);
                    }
                }
            }
        }
    }

    /// Marks a slot dead (its producing instance was flushed but the
    /// corresponding branch execution will still occur).
    pub fn kill(&mut self, pc: Pc, slot: u64) {
        self.set_state(pc, slot, SlotState::Dead);
    }

    /// Cancels a slot: the branch execution it corresponds to will never
    /// happen (e.g. its guard resolved the other way), so fetch skips it.
    /// Unlike [`Self::kill`], cancellation overrides an already-filled
    /// value — the instance may have completed before its wrong
    /// assumption was discovered.
    pub fn cancel(&mut self, pc: Pc, slot: u64) {
        if let Some(q) = self.queue_mut(pc, false) {
            if slot >= q.base {
                if let Some(s) = q.slots.get_mut((slot - q.base) as usize) {
                    *s = SlotState::Cancelled;
                }
            }
        }
    }

    fn set_state(&mut self, pc: Pc, slot: u64, state: SlotState) {
        if let Some(q) = self.queue_mut(pc, false) {
            if slot >= q.base {
                if let Some(s) = q.slots.get_mut((slot - q.base) as usize) {
                    if *s == SlotState::Empty {
                        *s = state;
                    }
                }
            }
        }
    }

    /// Consumes the next slot for a fetched branch at `pc`.
    pub fn consume_at_fetch(&mut self, pc: Pc) -> FetchVerdict {
        let Some(q) = self.queue_mut(pc, false) else {
            return FetchVerdict::NoQueue;
        };
        let idx = q.fetch.checked_sub(q.base).map(|d| d as usize);
        let Some(mut idx) = idx else {
            // Fetch pointer behind base can only happen transiently after
            // a clear; resynchronize.
            q.fetch = q.base;
            return FetchVerdict::Inactive;
        };
        // Cancelled slots correspond to branch executions that never
        // happen; fetch steps over them transparently.
        while idx < q.slots.len() && q.slots[idx] == SlotState::Cancelled {
            idx += 1;
            q.fetch += 1;
        }
        if idx >= q.slots.len() {
            return FetchVerdict::Inactive;
        }
        let slot_id = q.fetch;
        q.fetch += 1;
        match q.slots[idx] {
            SlotState::Empty | SlotState::Dead => FetchVerdict::Late { slot: slot_id },
            SlotState::Cancelled => unreachable!("skipped above"),
            SlotState::Filled(v) => {
                if q.throttle < 0 {
                    FetchVerdict::Throttled {
                        slot: slot_id,
                        value: v,
                    }
                } else {
                    FetchVerdict::Use {
                        slot: slot_id,
                        value: v,
                    }
                }
            }
        }
    }

    /// Snapshot of every queue's fetch pointer (taken at each fetched
    /// branch; restored on recovery).
    #[must_use]
    pub fn checkpoint(&self) -> QueueCheckpoint {
        let mut cp = QueueCheckpoint::new();
        self.checkpoint_into(&mut cp);
        cp
    }

    /// Allocation-free [`PredictionQueues::checkpoint`]: clears `cp` and
    /// fills it (the fetch path recycles checkpoint buffers through a
    /// pool).
    pub fn checkpoint_into(&self, cp: &mut QueueCheckpoint) {
        cp.clear();
        cp.extend(self.queues.iter().map(|(pc, q)| (*pc, q.fetch)));
    }

    /// Restores fetch pointers from a checkpoint. Pointers are clamped to
    /// the queue's current base (slots retired since the checkpoint stay
    /// retired).
    pub fn restore(&mut self, cp: &QueueCheckpoint) {
        for (pc, fetch) in cp {
            if let Some(q) = self
                .queues
                .iter_mut()
                .find_map(|(p, q)| (p == pc).then_some(q))
            {
                q.fetch = (*fetch).max(q.base);
            }
        }
    }

    /// Retires the consumed slot `slot` of branch `pc`, comparing the DCE
    /// outcome against the resolved direction and TAGE's direction for
    /// throttle maintenance. Returns the slot's filled value if any.
    pub fn retire(&mut self, pc: Pc, slot: u64, actual: bool, tage_correct: bool) -> Option<bool> {
        let q = self.queue_mut(pc, false)?;
        if slot < q.base {
            return None; // already gone (queue cleared)
        }
        // In-order consumption means the retiring slot is the oldest.
        let mut value = None;
        while q.base <= slot {
            let s = q.slots.pop_front()?;
            if q.base == slot {
                if let SlotState::Filled(v) = s {
                    value = Some(v);
                }
            }
            q.base += 1;
            q.fetch = q.fetch.max(q.base);
        }
        if let Some(v) = value {
            let dce_correct = v == actual;
            if dce_correct && !tage_correct {
                q.throttle = (q.throttle + 1).min(1);
            } else if !dce_correct && tage_correct {
                q.throttle = (q.throttle - 1).max(-2);
            }
        }
        value
    }

    /// Applies the "DCE incorrect and TAGE correct" throttle decrement
    /// directly (used at divergence detection, where the offending slots
    /// are about to be cleared and would otherwise never be compared at
    /// retirement).
    pub fn penalize(&mut self, pc: Pc) {
        if let Some(q) = self.queue_mut(pc, false) {
            q.throttle = (q.throttle - 1).max(-2);
        }
    }

    /// Clears every queue (synchronization event). Bases advance past all
    /// existing slots so stale fills/retires become no-ops.
    pub fn clear_all(&mut self) {
        for (_, q) in &mut self.queues {
            q.base += q.slots.len() as u64;
            q.slots.clear();
            q.fetch = q.base;
        }
    }

    /// Whether the queue for `pc` currently throttles the DCE.
    #[must_use]
    pub fn is_throttled(&self, pc: Pc) -> bool {
        self.queues.iter().any(|(p, q)| *p == pc && q.throttle < 0)
    }

    /// Number of live queues.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// Live (allocated, not yet retired) slots summed over every queue —
    /// the prediction-queue depth telemetry samples.
    #[must_use]
    pub fn occupied_slots(&self) -> usize {
        self.queues.iter().map(|(_, q)| q.slots.len()).sum()
    }

    /// Whether no queues exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Fault injection: swallow the next `fill` call (models a dropped
    /// DCE→queue push; the slot stays `Empty` and fetch sees `Late`).
    pub fn chaos_drop_next_fill(&mut self) {
        self.drop_fills = self.drop_fills.saturating_add(1);
    }

    /// Deliberately corrupts one queue's fetch pointer past its allocated
    /// slots — the machine-check CI fixture uses this to prove a real
    /// structural violation is caught and reported. Creates a queue for
    /// an impossible PC if none exist so the corruption always lands.
    #[doc(hidden)]
    pub fn sabotage_fetch_pointer(&mut self) {
        if self.queues.is_empty() {
            self.queues.push((u64::MAX, PredQueue::new()));
        }
        if let Some((_, q)) = self.queues.first_mut() {
            q.fetch = q.base + q.slots.len() as u64 + 1;
        }
    }

    /// Validates structural invariants: per-queue pointer ordering
    /// `base <= fetch <= base + slots`, slot-count and queue-count
    /// capacity bounds, throttle counter range, and LRU stamps not
    /// exceeding the allocation tick.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.queues.len() > self.num_queues {
            return Err(format!(
                "pqueue: {} live queues exceed capacity {}",
                self.queues.len(),
                self.num_queues
            ));
        }
        for (pc, q) in &self.queues {
            if q.slots.len() > self.entries_per_queue {
                return Err(format!(
                    "pqueue[{pc:#x}]: {} slots exceed capacity {}",
                    q.slots.len(),
                    self.entries_per_queue
                ));
            }
            let limit = q.base + q.slots.len() as u64;
            if q.fetch < q.base || q.fetch > limit {
                return Err(format!(
                    "pqueue[{pc:#x}]: fetch pointer {} outside [{}, {limit}]",
                    q.fetch, q.base
                ));
            }
            if !(-2..=1).contains(&q.throttle) {
                return Err(format!(
                    "pqueue[{pc:#x}]: throttle {} outside -2..=1",
                    q.throttle
                ));
            }
            if q.lru > self.tick {
                return Err(format!(
                    "pqueue[{pc:#x}]: LRU stamp {} ahead of tick {}",
                    q.lru, self.tick
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_fill_consume_retire_cycle() {
        let mut pq = PredictionQueues::new(4, 8);
        let s0 = pq.allocate_slot(0x10).unwrap();
        let s1 = pq.allocate_slot(0x10).unwrap();
        assert_eq!((s0, s1), (0, 1));
        pq.fill(0x10, s0, true);
        match pq.consume_at_fetch(0x10) {
            FetchVerdict::Use { slot, value } => {
                assert_eq!(slot, s0);
                assert!(value);
            }
            v => panic!("expected Use, got {v:?}"),
        }
        // Second slot unfilled -> Late.
        assert!(matches!(
            pq.consume_at_fetch(0x10),
            FetchVerdict::Late { slot: 1 }
        ));
        // Third consume -> Inactive (no slot allocated).
        assert_eq!(pq.consume_at_fetch(0x10), FetchVerdict::Inactive);
        // Retire the first: correct prediction.
        assert_eq!(pq.retire(0x10, s0, true, false), Some(true));
    }

    #[test]
    fn unknown_branch_has_no_queue() {
        let mut pq = PredictionQueues::new(4, 8);
        assert_eq!(pq.consume_at_fetch(0x99), FetchVerdict::NoQueue);
    }

    #[test]
    fn queue_capacity_limits_runahead() {
        let mut pq = PredictionQueues::new(4, 2);
        assert!(pq.allocate_slot(0x10).is_some());
        assert!(pq.allocate_slot(0x10).is_some());
        assert!(pq.allocate_slot(0x10).is_none(), "queue full");
    }

    #[test]
    fn throttle_engages_and_recovers() {
        let mut pq = PredictionQueues::new(4, 32);
        // DCE wrong twice while TAGE right -> throttled.
        for _ in 0..2 {
            let s = pq.allocate_slot(0x10).unwrap();
            pq.fill(0x10, s, true);
            let _ = pq.consume_at_fetch(0x10);
            pq.retire(0x10, s, false, true); // actual=false, tage right
        }
        assert!(pq.is_throttled(0x10));
        let s = pq.allocate_slot(0x10).unwrap();
        pq.fill(0x10, s, false);
        assert!(matches!(
            pq.consume_at_fetch(0x10),
            FetchVerdict::Throttled { value: false, .. }
        ));
        // DCE right while TAGE wrong x3 -> unthrottled.
        pq.retire(0x10, s, false, false);
        for _ in 0..2 {
            let s = pq.allocate_slot(0x10).unwrap();
            pq.fill(0x10, s, true);
            let _ = pq.consume_at_fetch(0x10);
            pq.retire(0x10, s, true, false);
        }
        assert!(!pq.is_throttled(0x10));
    }

    #[test]
    fn checkpoint_restore_reinserts_consumed_predictions() {
        let mut pq = PredictionQueues::new(4, 8);
        let s0 = pq.allocate_slot(0x10).unwrap();
        pq.fill(0x10, s0, true);
        let cp = pq.checkpoint();
        assert!(matches!(
            pq.consume_at_fetch(0x10),
            FetchVerdict::Use { .. }
        ));
        // Mispredict on an older branch: restore; the prediction is
        // consumable again.
        pq.restore(&cp);
        assert!(matches!(
            pq.consume_at_fetch(0x10),
            FetchVerdict::Use { slot, value: true } if slot == s0
        ));
    }

    #[test]
    fn clear_all_invalidates_stale_ids() {
        let mut pq = PredictionQueues::new(4, 8);
        let s0 = pq.allocate_slot(0x10).unwrap();
        pq.clear_all();
        pq.fill(0x10, s0, true); // stale: ignored
        assert_eq!(pq.consume_at_fetch(0x10), FetchVerdict::Inactive);
        let s1 = pq.allocate_slot(0x10).unwrap();
        assert!(s1 > s0, "absolute ids keep increasing across clears");
    }

    #[test]
    fn dead_slots_behave_late() {
        let mut pq = PredictionQueues::new(4, 8);
        let s0 = pq.allocate_slot(0x10).unwrap();
        pq.kill(0x10, s0);
        assert!(matches!(
            pq.consume_at_fetch(0x10),
            FetchVerdict::Late { .. }
        ));
        assert_eq!(pq.retire(0x10, s0, true, true), None);
    }

    #[test]
    fn lru_queue_eviction_at_capacity() {
        let mut pq = PredictionQueues::new(2, 4);
        pq.allocate_slot(0x10);
        pq.allocate_slot(0x20);
        pq.allocate_slot(0x10); // refresh 0x10
        pq.allocate_slot(0x30); // evicts 0x20
        assert_eq!(pq.len(), 2);
        assert_eq!(pq.consume_at_fetch(0x20), FetchVerdict::NoQueue);
    }

    #[test]
    fn retire_skips_cleared_slots() {
        let mut pq = PredictionQueues::new(4, 8);
        let s0 = pq.allocate_slot(0x10).unwrap();
        let _ = pq.consume_at_fetch(0x10);
        pq.clear_all();
        assert_eq!(pq.retire(0x10, s0, true, true), None);
    }
}
