//! Stress/invariant tests for the Dependence Chain Engine: random chain
//! graphs, random configurations, random synchronization storms. The
//! engine must never panic, never exceed its window, and keep its queue
//! bookkeeping consistent — these are exactly the invariants that
//! same-tick kill/spawn races break first.

use proptest::prelude::*;

use br_core::{
    BranchRunaheadConfig, BrStats, ChainOp, ChainSrc, ChainTag, DependenceChain,
    DependenceChainCache, DependenceChainEngine, InitiationMode, PredictionQueues,
};
use br_isa::{reg, Cond, CpuState, Machine, MemoryImage, Width};
use br_mem::{MemoryConfig, MemorySystem};

/// Builds a simple chain: one ALU op + optional load + cmp, with a
/// configurable tag and target, self-feeding through `r3`.
fn make_chain(tag_pc: u64, tag_outcome: Option<bool>, branch_pc: u64, with_load: bool) -> DependenceChain {
    let mut ops = vec![ChainOp::Alu {
        op: br_isa::AluOp::Add,
        dst: 1,
        src1: ChainSrc::Reg(0),
        src2: ChainSrc::Imm(8),
    }];
    let cmp_src = if with_load {
        ops.push(ChainOp::Load {
            dst: 2,
            base: Some(ChainSrc::Reg(1)),
            index: None,
            scale: 1,
            disp: 0,
            width: Width::B8,
            signed: false,
        });
        ChainSrc::Reg(2)
    } else {
        ChainSrc::Reg(1)
    };
    ops.push(ChainOp::Cmp {
        src1: cmp_src,
        src2: ChainSrc::Imm(0x140),
    });
    DependenceChain {
        tag: ChainTag {
            pc: tag_pc,
            outcome: tag_outcome,
        },
        branch_pc,
        cond: Cond::Ult,
        ops,
        live_ins: vec![(reg::R3, 0)],
        live_outs: vec![(reg::R3, ChainSrc::Reg(1))],
        num_local_regs: 3,
        guard_terminated: tag_outcome.is_some(),
        eliminated_uops: 0,
        source_pcs: std::collections::BTreeSet::new(),
    }
}

#[derive(Clone, Debug)]
struct ChainSpec {
    tag_pc: u8,
    outcome: Option<bool>,
    branch_pc: u8,
    with_load: bool,
}

fn chain_spec() -> impl Strategy<Value = ChainSpec> {
    (
        0u8..4,
        prop_oneof![Just(None), Just(Some(true)), Just(Some(false))],
        0u8..4,
        any::<bool>(),
    )
        .prop_map(|(tag_pc, outcome, branch_pc, with_load)| ChainSpec {
            tag_pc,
            outcome,
            branch_pc,
            with_load,
        })
}

#[derive(Clone, Debug)]
enum Event {
    Tick(u8),
    Sync { pc: u8, outcome: bool },
    FlushAll,
    Train { pc: u8, taken: bool },
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        6 => (1u8..20).prop_map(Event::Tick),
        2 => (0u8..4, any::<bool>()).prop_map(|(pc, outcome)| Event::Sync { pc, outcome }),
        1 => Just(Event::FlushAll),
        1 => (0u8..4, any::<bool>()).prop_map(|(pc, taken)| Event::Train { pc, taken }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn engine_invariants_hold_under_chaos(
        chains in prop::collection::vec(chain_spec(), 1..8),
        events in prop::collection::vec(event(), 1..40),
        window in 2usize..24,
        mode_sel in 0u8..3,
    ) {
        let machine = Machine::new(MemoryImage::new().into_memory());
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut cache = DependenceChainCache::new(16);
        let mut queues = PredictionQueues::new(8, 32);
        let mut stats = BrStats::default();

        for c in &chains {
            cache.install(make_chain(
                u64::from(c.tag_pc) * 0x10 + 1,
                c.outcome,
                u64::from(c.branch_pc) * 0x10 + 1,
                c.with_load,
            ));
        }

        let mut cfg = BranchRunaheadConfig::mini();
        cfg.window_instances = window;
        cfg.initiation = InitiationMode::ALL[mode_sel as usize];
        let mut dce = DependenceChainEngine::new(cfg);

        let mut cpu = CpuState::new();
        cpu.regs[reg::R3.index()] = 0x100;
        let mut cycle = 0u64;
        for ev in &events {
            match ev {
                Event::Tick(n) => {
                    for _ in 0..*n {
                        let resps = mem.tick(cycle);
                        dce.tick(
                            cycle, &machine, &mut mem, &resps, 2, 4,
                            &mut cache, &mut queues, &mut stats,
                        );
                        cycle += 1;
                        prop_assert!(
                            dce.active_instances() <= window,
                            "window exceeded: {} > {window}",
                            dce.active_instances()
                        );
                    }
                }
                Event::Sync { pc, outcome } => {
                    dce.sync_initiate(
                        u64::from(*pc) * 0x10 + 1,
                        *outcome,
                        &cpu,
                        &mut cache,
                        &mut queues,
                        &mut stats,
                    );
                    prop_assert!(dce.active_instances() <= window);
                }
                Event::FlushAll => {
                    dce.flush_all(&mut queues, &mut stats);
                    queues.clear_all();
                    prop_assert_eq!(dce.active_instances(), 0);
                }
                Event::Train { pc, taken } => {
                    dce.train_init_counter(u64::from(*pc) * 0x10 + 1, *taken);
                }
            }
        }
        // Accounting invariants.
        prop_assert!(stats.instances_completed <= stats.instances_initiated);
        prop_assert!(stats.instances_flushed <= stats.instances_initiated);
    }
}
