//! Miss Status Holding Registers: outstanding-miss tracking and merging.

/// Result of trying to record a miss in the MSHR file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller must issue the lower-level
    /// request.
    Allocated,
    /// An entry for this line already exists; the request was merged and
    /// will complete when the original fill returns.
    Merged,
    /// No entry free; the requester must retry later.
    Full,
}

/// A fixed-capacity MSHR file keyed by line address. Each entry carries the
/// opaque request ids merged onto it. The file holds at most a handful of
/// entries (the hardware MSHR count), so lookups are linear scans and the
/// per-entry id buffers are recycled through a small pool instead of being
/// reallocated per miss.
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<(u64, Vec<u64>)>,
    pool: Vec<Vec<u64>>,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
            pool: Vec::with_capacity(capacity),
        }
    }

    /// Records a miss on `line` for request `id`.
    pub fn allocate(&mut self, line: u64, id: u64) -> MshrOutcome {
        if let Some((_, ids)) = self.entries.iter_mut().find(|(l, _)| *l == line) {
            ids.push(id);
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        let mut ids = self.pool.pop().unwrap_or_default();
        ids.clear();
        ids.push(id);
        self.entries.push((line, ids));
        MshrOutcome::Allocated
    }

    /// Completes the miss on `line`, returning every merged request id.
    /// Returns an empty vector if no entry exists (e.g. a prefetch fill).
    pub fn complete(&mut self, line: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.complete_into(line, &mut out);
        out
    }

    /// [`Self::complete`] into an existing buffer (cleared first), keeping
    /// the entry's id buffer for reuse.
    pub fn complete_into(&mut self, line: u64, out: &mut Vec<u64>) {
        out.clear();
        if let Some(p) = self.entries.iter().position(|(l, _)| *l == line) {
            let (_, ids) = self.entries.swap_remove(p);
            out.extend_from_slice(&ids);
            self.pool.push(ids);
        }
    }

    /// Whether `line` has an outstanding miss.
    #[must_use]
    pub fn pending(&self, line: u64) -> bool {
        self.entries.iter().any(|(l, _)| *l == line)
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no misses are outstanding.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether every entry is occupied.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_complete() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.allocate(0x10, 1), MshrOutcome::Allocated);
        assert_eq!(m.allocate(0x10, 2), MshrOutcome::Merged);
        assert_eq!(m.allocate(0x20, 3), MshrOutcome::Allocated);
        assert_eq!(m.allocate(0x30, 4), MshrOutcome::Full);
        assert!(m.pending(0x10));
        assert_eq!(m.complete(0x10), vec![1, 2]);
        assert!(!m.pending(0x10));
        assert_eq!(m.len(), 1);
        assert_eq!(m.allocate(0x30, 4), MshrOutcome::Allocated);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m = MshrFile::new(1);
        assert!(m.complete(0x99).is_empty());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}
