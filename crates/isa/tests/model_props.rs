//! Model-based property tests for the ISA substrate, driven by a
//! deterministic xorshift generator (the container builds hermetically,
//! so no external property-testing dependency is used):
//!
//! * [`JournaledMemory`] against a plain `HashMap<u64, u8>` reference
//!   model, under random interleavings of writes, checkpoints, rollbacks
//!   and releases;
//! * [`RegSet`] against a `BTreeSet<usize>` reference model;
//! * emulator determinism: re-running a program from a checkpoint must
//!   reproduce the identical execution.

use std::collections::{BTreeSet, HashMap};

use br_isa::{
    reg, ArchReg, Cond, JournalMark, JournaledMemory, Machine, MemOperand, MemoryImage,
    ProgramBuilder, RegSet, Width,
};

/// Deterministic xorshift64* generator for case generation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Clone, Debug)]
enum MemAction {
    Write {
        addr: u16,
        width_sel: u8,
        value: u64,
    },
    Checkpoint,
    /// Rollback to the i-th (mod live) outstanding mark.
    Rollback(u8),
    /// Release everything older than the oldest outstanding mark.
    ReleaseOldest,
}

fn mem_action(rng: &mut Rng) -> MemAction {
    // Weights 4:2:1:1, as in the original strategy.
    match rng.below(8) {
        0..=3 => MemAction::Write {
            addr: rng.next() as u16,
            width_sel: rng.below(4) as u8,
            value: rng.next(),
        },
        4 | 5 => MemAction::Checkpoint,
        6 => MemAction::Rollback(rng.next() as u8),
        _ => MemAction::ReleaseOldest,
    }
}

fn width_of(sel: u8) -> Width {
    match sel % 4 {
        0 => Width::B1,
        1 => Width::B2,
        2 => Width::B4,
        _ => Width::B8,
    }
}

/// Reference model: byte map + snapshots per outstanding mark.
#[derive(Clone, Default)]
struct MemModel {
    bytes: HashMap<u64, u8>,
}

impl MemModel {
    fn write(&mut self, addr: u64, width: Width, value: u64) {
        for i in 0..width.bytes() {
            self.bytes.insert(addr + i, (value >> (8 * i)) as u8);
        }
    }

    fn read(&self, addr: u64, width: Width) -> u64 {
        let mut v = 0u64;
        for i in 0..width.bytes() {
            v |= u64::from(*self.bytes.get(&(addr + i)).unwrap_or(&0)) << (8 * i);
        }
        v
    }
}

#[test]
fn journaled_memory_matches_model() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x9e37_79b9 ^ (case << 32) ^ case);
        let n_actions = 1 + rng.below(59) as usize;
        let actions: Vec<MemAction> = (0..n_actions).map(|_| mem_action(&mut rng)).collect();
        let probes: Vec<u16> = (0..8).map(|_| rng.next() as u16).collect();

        let mut mem = JournaledMemory::new();
        let mut model = MemModel::default();
        // Outstanding marks, oldest first, paired with model snapshots.
        let mut marks: Vec<(JournalMark, MemModel)> = Vec::new();

        for a in &actions {
            match a {
                MemAction::Write {
                    addr,
                    width_sel,
                    value,
                } => {
                    let w = width_of(*width_sel);
                    mem.write(u64::from(*addr), w, *value);
                    model.write(u64::from(*addr), w, *value);
                }
                MemAction::Checkpoint => {
                    marks.push((mem.mark(), model.clone()));
                }
                MemAction::Rollback(i) => {
                    if !marks.is_empty() {
                        let idx = (*i as usize) % marks.len();
                        let (mark, snap) = marks[idx].clone();
                        mem.rollback_to(mark);
                        model = snap;
                        // Marks younger than the rollback target die.
                        marks.truncate(idx + 1);
                    }
                }
                MemAction::ReleaseOldest => {
                    if !marks.is_empty() {
                        let (mark, _) = marks.remove(0);
                        mem.release_before(mark);
                    }
                }
            }
            // Spot-check agreement after every action.
            for p in &probes {
                let w = width_of((*p % 4) as u8);
                assert_eq!(
                    mem.read(u64::from(*p), w),
                    model.read(u64::from(*p), w),
                    "case {case}: divergence at probe {p:#x}"
                );
            }
        }
    }
}

#[test]
fn regset_matches_btreeset() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x5151_7ea5 ^ (case << 24) ^ case);
        let n_ops = 1 + rng.below(63) as usize;
        let mut rs = RegSet::empty();
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for _ in 0..n_ops {
            let raw = rng.next() as u8;
            let insert = rng.below(2) == 0;
            let r = ArchReg::new(raw % 17);
            if insert {
                assert_eq!(rs.insert(r), model.insert(r.index()), "case {case}");
            } else {
                assert_eq!(rs.remove(r), model.remove(&r.index()), "case {case}");
            }
            assert_eq!(rs.len(), model.len(), "case {case}");
            let members: Vec<usize> = rs.iter().map(ArchReg::index).collect();
            let expect: Vec<usize> = model.iter().copied().collect();
            assert_eq!(members, expect, "case {case}");
        }
    }
}

/// Checkpoint/restore determinism: executing N steps, restoring, and
/// re-executing must produce bit-identical machine state.
#[test]
fn machine_restore_is_deterministic() {
    for case in 0..32u64 {
        let mut rng = Rng::new(0xdead_beef ^ (case << 16) ^ case);
        let values: Vec<u8> = (0..16).map(|_| rng.next() as u8).collect();
        let split = 1 + rng.below(39);

        let mut img = MemoryImage::new();
        for (i, v) in values.iter().enumerate() {
            img.write(0x100 + i as u64 * 8, Width::B8, u64::from(*v));
        }
        let mut b = ProgramBuilder::new();
        b.mov_imm(reg::R0, 16);
        b.mov_imm(reg::R12, 0x100);
        let top = b.here();
        b.load(reg::R2, MemOperand::base_index(reg::R12, reg::R0, 8, -8));
        b.add(reg::R3, reg::R3, reg::R2);
        b.store(MemOperand::base_disp(reg::R12, 0x80), reg::R3);
        b.subi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, 0);
        b.br(Cond::Ne, top);
        b.halt();
        let p = b.build().unwrap();

        let mut m = Machine::new(img.into_memory());
        for _ in 0..split.min(40) {
            if m.halted() {
                break;
            }
            m.step(&p, None).unwrap();
        }
        let cp = m.checkpoint();
        let mut trace_a = Vec::new();
        while !m.halted() {
            trace_a.push(m.step(&p, None).unwrap());
        }
        let final_r3 = m.reg(reg::R3);

        m.restore(&cp);
        let mut trace_b = Vec::new();
        while !m.halted() {
            trace_b.push(m.step(&p, None).unwrap());
        }
        assert_eq!(trace_a, trace_b, "case {case}");
        assert_eq!(m.reg(reg::R3), final_r3, "case {case}");
    }
}
