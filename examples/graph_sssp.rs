//! GAP-style study: shortest-path relaxation branches across predictors.
//!
//! The paper's Figure 11 observation: unlimited history-based prediction
//! (MTAGE) barely helps GAP's data-dependent branches, while Branch
//! Runahead removes most of their mispredictions. This example compares
//! four configurations on the `sssp` kernel.
//!
//! ```text
//! cargo run --release --example graph_sssp
//! ```

use branch_runahead::sim::{SimConfig, System};
use branch_runahead::workloads::{workload_by_name, WorkloadParams};

fn main() {
    let w = workload_by_name("sssp").expect("sssp registered");
    let params = WorkloadParams::default();
    let image = w.build(&params);
    println!("workload: {} — {}\n", w.name(), w.description());

    let configs: Vec<(&str, SimConfig)> = vec![
        ("tage-sc-l-64kb", SimConfig::baseline()),
        ("mtage-unlimited", SimConfig::mtage()),
        ("mini-br", SimConfig::mini_br()),
        ("big-br", SimConfig::big_br()),
    ];

    let mut base_mpki = None;
    println!(
        "{:<18}{:>8}{:>9}{:>16}{:>14}",
        "config", "IPC", "MPKI", "mpki-improve%", "dce-uops"
    );
    for (name, mut cfg) in configs {
        cfg.max_retired = 300_000;
        let r = System::new(cfg, &image).run();
        let improvement = match base_mpki {
            None => {
                base_mpki = Some(r.mpki());
                0.0
            }
            Some(b) => (b - r.mpki()) / b * 100.0,
        };
        println!(
            "{:<18}{:>8.3}{:>9.2}{:>16.1}{:>14}",
            name,
            r.ipc(),
            r.mpki(),
            improvement,
            r.br.as_ref().map_or(0, |b| b.dce_uops),
        );
    }
    println!(
        "\npaper shape: MTAGE ≪ Branch Runahead on GAP (Fig. 11), because the\n\
         relaxation branch depends on loaded distances, not on branch history."
    );
}
