//! The Hard Branch Table (§4.3, Figure 9 left).
//!
//! Detects hard-to-predict (HTP) branches with a 5-bit saturating
//! misprediction counter that decays by 15 every 1000 retired branches,
//! and tracks affector/guard relationships: AG branches stay resident,
//! each HTP entry carries an affector/guard list (AGL), and a 7-bit bias
//! counter (decayed by 9) filters out highly biased AG branches.

use std::collections::BTreeSet;

use br_isa::Pc;

/// Saturation point of the 5-bit misprediction counter.
const MISP_SATURATE: u8 = 31;
/// Decay applied to misprediction counters every [`DECAY_PERIOD`] branches.
const MISP_DECAY: u8 = 15;
/// Retired branches between decay events (footnote 7).
const DECAY_PERIOD: u64 = 1000;
/// Saturation point of the 7-bit bias counter.
const BIAS_SATURATE: u8 = 127;
/// Penalty applied to the bias counter when the direction breaks the
/// bias. Footnote 9's arithmetic model detects "a bias of 90% or more":
/// +1 per match, −9 per mismatch drifts positive exactly when the match
/// probability exceeds 0.9.
const BIAS_DECAY: u8 = 9;
/// A branch whose bias counter stays above this is considered biased.
const BIAS_THRESHOLD: u8 = 64;

/// One Hard Branch Table entry.
#[derive(Clone, Debug)]
pub struct HbtEntry {
    /// The branch PC.
    pub pc: Pc,
    /// 5-bit saturating misprediction counter.
    pub misp_counter: u8,
    /// Whether this branch is registered as an affector/guard of some HTP
    /// branch (keeps the entry resident).
    pub ag: bool,
    /// Set when this HTP branch's affector/guard list changed since the
    /// last chain extraction (AGC field).
    pub ag_changed: bool,
    /// Affector/guard list: PCs of branches that guard or affect this one.
    pub agl: BTreeSet<Pc>,
    /// 7-bit bias counter.
    pub bias_counter: u8,
    /// Last-seen biased direction (BD field).
    pub bias_direction: bool,
}

impl HbtEntry {
    fn new(pc: Pc) -> Self {
        HbtEntry {
            pc,
            misp_counter: 0,
            ag: false,
            ag_changed: false,
            agl: BTreeSet::new(),
            bias_counter: 0,
            bias_direction: false,
        }
    }

    /// Whether the misprediction counter has saturated (the branch is
    /// considered hard-to-predict).
    #[must_use]
    pub fn is_hard(&self) -> bool {
        self.misp_counter >= MISP_SATURATE
    }

    /// Whether the branch currently looks highly biased.
    #[must_use]
    pub fn is_biased(&self) -> bool {
        self.bias_counter >= BIAS_THRESHOLD
    }
}

/// The Hard Branch Table.
#[derive(Clone, Debug)]
pub struct HardBranchTable {
    capacity: usize,
    entries: Vec<HbtEntry>,
    retired_branches: u64,
    lfsr: u32,
    inserts: u64,
    evicts: u64,
}

impl HardBranchTable {
    /// Creates a table with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "HBT capacity must be nonzero");
        HardBranchTable {
            capacity,
            entries: Vec::new(),
            retired_branches: 0,
            lfsr: 0x1d5f,
            inserts: 0,
            evicts: 0,
        }
    }

    fn rand_percent(&mut self) -> u32 {
        let lsb = self.lfsr & 1;
        self.lfsr >>= 1;
        if lsb != 0 {
            self.lfsr ^= 0xB400;
        }
        self.lfsr % 100
    }

    /// Looks up an entry.
    #[must_use]
    pub fn get(&self, pc: Pc) -> Option<&HbtEntry> {
        self.entries.iter().find(|e| e.pc == pc)
    }

    fn get_mut(&mut self, pc: Pc) -> Option<&mut HbtEntry> {
        self.entries.iter_mut().find(|e| e.pc == pc)
    }

    /// Records a retired conditional branch. Returns `true` when this
    /// retirement should trigger chain extraction for `pc` (counter
    /// saturated, or the AG set changed, or the 1% random refresh —
    /// footnote 10).
    pub fn on_branch_retire(&mut self, pc: Pc, taken: bool, mispredicted: bool) -> bool {
        self.retired_branches += 1;
        if self.retired_branches.is_multiple_of(DECAY_PERIOD) {
            self.decay();
        }

        if self.get(pc).is_none() {
            // Allocate on retire if space (or a dead entry) is available.
            if self.entries.len() < self.capacity {
                self.entries.push(HbtEntry::new(pc));
                self.inserts += 1;
            } else if let Some(victim) = self
                .entries
                .iter_mut()
                .find(|e| e.misp_counter == 0 && !e.ag)
            {
                *victim = HbtEntry::new(pc);
                self.inserts += 1;
                self.evicts += 1;
            }
        }

        let Some(e) = self.get_mut(pc) else {
            return false;
        };
        if mispredicted {
            e.misp_counter = (e.misp_counter + 1).min(MISP_SATURATE);
        }
        // Bias tracking: +1 on match, -9 on mismatch (footnote 9), so
        // only branches ~90% biased or more drift upward.
        if taken == e.bias_direction {
            e.bias_counter = (e.bias_counter + 1).min(BIAS_SATURATE);
        } else if e.bias_counter == 0 {
            e.bias_direction = taken;
            e.bias_counter = 1;
        } else {
            e.bias_counter = e.bias_counter.saturating_sub(BIAS_DECAY);
        }

        let hard = e.is_hard();
        let changed = e.ag_changed;
        if hard && changed {
            e.ag_changed = false;
            return true;
        }
        if hard && mispredicted {
            return true;
        }
        // Random 1% refresh of tracked branches.
        if hard && self.rand_percent() == 0 {
            return true;
        }
        false
    }

    fn decay(&mut self) {
        for e in &mut self.entries {
            e.misp_counter = e.misp_counter.saturating_sub(MISP_DECAY);
        }
        // Drop AG links to branches that have become biased (§4.3).
        let biased: Vec<Pc> = self
            .entries
            .iter()
            .filter(|e| e.ag && e.is_biased())
            .map(|e| e.pc)
            .collect();
        if !biased.is_empty() {
            for e in &mut self.entries {
                let before = e.agl.len();
                for b in &biased {
                    e.agl.remove(b);
                }
                if e.agl.len() != before {
                    e.ag_changed = true;
                }
            }
        }
    }

    /// Registers `ag_pc` as an affector/guard of the HTP branch `htp_pc`
    /// (§4.3 "Tracking Affector and Guard Branches"). Biased AG branches
    /// are ignored. Returns whether the AGL changed.
    pub fn add_affector_guard(&mut self, htp_pc: Pc, ag_pc: Pc) -> bool {
        if htp_pc == ag_pc {
            return false;
        }
        if let Some(ag) = self.get(ag_pc) {
            if ag.is_biased() {
                return false;
            }
        }
        // Ensure the AG branch is resident and flagged.
        match self.get_mut(ag_pc) {
            Some(e) => e.ag = true,
            None => {
                if self.entries.len() < self.capacity {
                    let mut e = HbtEntry::new(ag_pc);
                    e.ag = true;
                    self.entries.push(e);
                    self.inserts += 1;
                } else if let Some(victim) = self
                    .entries
                    .iter_mut()
                    .find(|e| e.misp_counter == 0 && !e.ag)
                {
                    *victim = HbtEntry::new(ag_pc);
                    victim.ag = true;
                    self.inserts += 1;
                    self.evicts += 1;
                }
            }
        }
        let Some(htp) = self.get_mut(htp_pc) else {
            return false;
        };
        let added = htp.agl.insert(ag_pc);
        if added {
            htp.ag_changed = true;
        }
        added
    }

    /// The affector/guard set of `pc` (empty if untracked).
    #[must_use]
    pub fn affector_guards(&self, pc: Pc) -> BTreeSet<Pc> {
        self.get(pc).map(|e| e.agl.clone()).unwrap_or_default()
    }

    /// Whether `pc` is currently considered biased (unknown branches are
    /// not biased).
    #[must_use]
    pub fn is_biased(&self, pc: Pc) -> bool {
        self.get(pc).is_some_and(HbtEntry::is_biased)
    }

    /// Whether `pc` is a saturated hard-to-predict branch.
    #[must_use]
    pub fn is_hard(&self, pc: Pc) -> bool {
        self.get(pc).is_some_and(HbtEntry::is_hard)
    }

    /// Lifetime allocation churn as `(inserts, evicts)`: every entry
    /// allocation counts as an insert, and an insert that overwrote a live
    /// victim also counts as an evict. Telemetry polls the deltas.
    #[must_use]
    pub fn churn(&self) -> (u64, u64) {
        (self.inserts, self.evicts)
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fault injection: forces an immediate decay event (a "decay
    /// storm" ages out misprediction history early, delaying HTP
    /// detection — a pure performance event).
    pub fn chaos_decay_storm(&mut self) {
        self.decay();
    }

    /// Validates structural invariants: entry count within capacity and
    /// both saturating counters within their bit widths.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.entries.len() > self.capacity {
            return Err(format!(
                "hbt: {} entries exceed capacity {}",
                self.entries.len(),
                self.capacity
            ));
        }
        for e in &self.entries {
            if e.misp_counter > MISP_SATURATE {
                return Err(format!(
                    "hbt[{:#x}]: misp counter {} exceeds 5-bit saturation {MISP_SATURATE}",
                    e.pc, e.misp_counter
                ));
            }
            if e.bias_counter > BIAS_SATURATE {
                return Err(format!(
                    "hbt[{:#x}]: bias counter {} exceeds 7-bit saturation {BIAS_SATURATE}",
                    e.pc, e.bias_counter
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_mispredicts_saturate() {
        let mut hbt = HardBranchTable::new(16);
        let mut triggered = false;
        for i in 0..100 {
            triggered |= hbt.on_branch_retire(0x40, i % 2 == 0, true);
        }
        assert!(hbt.is_hard(0x40));
        assert!(triggered, "saturation should trigger extraction");
    }

    #[test]
    fn rare_mispredicts_decay_away() {
        let mut hbt = HardBranchTable::new(16);
        // 1 mispredict per 100 branches: decay (-15/1000) dominates.
        for i in 0..5000u64 {
            let misp = i % 100 == 0;
            hbt.on_branch_retire(0x40, true, misp);
            hbt.on_branch_retire(0x44, true, false);
        }
        assert!(!hbt.is_hard(0x40));
    }

    #[test]
    fn bias_tracking() {
        let mut hbt = HardBranchTable::new(16);
        for _ in 0..200 {
            hbt.on_branch_retire(0x80, true, false);
        }
        assert!(hbt.is_biased(0x80));
        // A 50/50 branch never becomes biased.
        for i in 0..400 {
            hbt.on_branch_retire(0x90, i % 2 == 0, false);
        }
        assert!(!hbt.is_biased(0x90));
    }

    #[test]
    fn affector_guard_registration() {
        let mut hbt = HardBranchTable::new(16);
        for _ in 0..40 {
            hbt.on_branch_retire(0x10, true, true);
        }
        assert!(hbt.add_affector_guard(0x10, 0x20));
        assert!(!hbt.add_affector_guard(0x10, 0x20), "idempotent");
        assert!(hbt.affector_guards(0x10).contains(&0x20));
        assert!(hbt.get(0x20).unwrap().ag, "AG branch resident and flagged");
        // Self-guard is meaningless.
        assert!(!hbt.add_affector_guard(0x10, 0x10));
    }

    #[test]
    fn biased_ag_branches_not_registered() {
        let mut hbt = HardBranchTable::new(16);
        for _ in 0..40 {
            hbt.on_branch_retire(0x10, true, true);
        }
        for _ in 0..200 {
            hbt.on_branch_retire(0x30, true, false); // heavily biased
        }
        assert!(!hbt.add_affector_guard(0x10, 0x30));
        assert!(hbt.affector_guards(0x10).is_empty());
    }

    #[test]
    fn capacity_bounded_and_ag_protected() {
        let mut hbt = HardBranchTable::new(4);
        for _ in 0..40 {
            hbt.on_branch_retire(0x10, true, true);
        }
        hbt.add_affector_guard(0x10, 0x20);
        for pc in 0x100..0x140u64 {
            hbt.on_branch_retire(pc, true, false);
        }
        assert!(hbt.len() <= 4);
        assert!(hbt.get(0x20).is_some(), "AG entries survive replacement");
    }

    #[test]
    fn agc_triggers_reextraction() {
        let mut hbt = HardBranchTable::new(16);
        for _ in 0..40 {
            hbt.on_branch_retire(0x10, true, true);
        }
        hbt.add_affector_guard(0x10, 0x20);
        // Next retirement of the (still hard) branch must trigger due to
        // the AG-changed flag even without a misprediction.
        assert!(hbt.on_branch_retire(0x10, true, false));
    }
}
