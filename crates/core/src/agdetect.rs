//! Affector detection via poison propagation (§4.4).
//!
//! Once the merge point of a mispredicted branch is known, every register
//! and store address in the *both-path dest set* is poisoned. Retired
//! correct-path instructions after the merge point propagate poison from
//! sources to destinations (and through memory via the bloom filter);
//! writes from clean sources *remove* register poison. Any branch that
//! sources poison is an affectee — the merge-predicted branch is its
//! affector. Detection stops at the second instance of the merge-predicted
//! branch or at the distance bound. The algorithm is adapted from Runahead
//! Execution's poison bits, as the paper notes.

use br_isa::{Pc, RegSet};
use br_ooo::RetiredUop;

use crate::wpb::{bloom_insert, bloom_probe, MemBloom, MergeEvent};

/// An active poison-propagation pass for one merge event.
#[derive(Clone, Debug)]
pub struct PoisonDetector {
    affector_pc: Pc,
    poison: RegSet,
    mem_poison: MemBloom,
    remaining: usize,
    affectees: Vec<Pc>,
    done: bool,
}

impl PoisonDetector {
    /// Starts detection from a merge event, with `max_distance` retired
    /// uops of budget.
    #[must_use]
    pub fn new(ev: &MergeEvent, max_distance: usize) -> Self {
        PoisonDetector {
            affector_pc: ev.branch_pc,
            poison: ev.both_path_dest,
            mem_poison: ev.both_path_bloom,
            remaining: max_distance,
            affectees: Vec::new(),
            done: false,
        }
    }

    /// The affector branch this pass is tracking.
    #[must_use]
    pub fn affector(&self) -> Pc {
        self.affector_pc
    }

    /// Whether the pass has terminated.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Affectee branch PCs found so far.
    #[must_use]
    pub fn affectees(&self) -> &[Pc] {
        &self.affectees
    }

    /// Feeds one retired uop. Returns `Some(affectee_pc)` when this uop is
    /// a branch sourcing poison.
    pub fn step(&mut self, u: &RetiredUop) -> Option<Pc> {
        if self.done {
            return None;
        }
        if u.uop.pc == self.affector_pc || self.remaining == 0 {
            // The affector branch itself is also checked for sourcing
            // poison ("Any branch, including the merge predicted branch,
            // that sources poison is an affectee") before terminating.
            let self_affected = u.uop.pc == self.affector_pc && self.sources_poison(u);
            self.done = true;
            if self_affected {
                self.affectees.push(self.affector_pc);
                return Some(self.affector_pc);
            }
            return None;
        }
        self.remaining -= 1;

        let dirty = self.sources_poison(u);
        // Propagate / clear register poison.
        for d in u.uop.dsts().iter() {
            if dirty {
                self.poison.insert(d);
            } else {
                self.poison.remove(d);
            }
        }
        // Stores with poisoned data poison their address.
        if let Some(m) = u.rec.mem.filter(|m| m.is_store) {
            if dirty {
                self.mem_poison = bloom_insert(self.mem_poison, m.addr);
            }
        }
        if u.uop.is_cond_branch() && dirty {
            if !self.affectees.contains(&u.uop.pc) {
                self.affectees.push(u.uop.pc);
            }
            return Some(u.uop.pc);
        }
        None
    }

    fn sources_poison(&self, u: &RetiredUop) -> bool {
        if u.uop.srcs().intersects(self.poison) {
            return true;
        }
        if let Some(m) = u.rec.mem.filter(|m| !m.is_store) {
            if bloom_probe(self.mem_poison, m.addr) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_isa::{reg, Cond, ExecRecord, MemOperand, Operand, Uop, UopKind, Width};

    fn merge_ev(dest: RegSet) -> MergeEvent {
        MergeEvent {
            branch_pc: 5,
            merge_pc: 30,
            both_path_dest: dest,
            both_path_bloom: 0,
            guarded: vec![],
            distance: 4,
        }
    }

    fn u(pc: Pc, kind: UopKind) -> RetiredUop {
        let uop = Uop { pc, kind };
        RetiredUop {
            seq: 0,
            uop,
            rec: ExecRecord {
                pc,
                next_pc: pc + 1,
                branch: None,
                mem: None,
                dst: None,
                halt: false,
            },
            cycle: 0,
        }
    }

    fn load(pc: Pc, dst: br_isa::ArchReg, addr: u64) -> RetiredUop {
        let mut r = u(
            pc,
            UopKind::Load {
                dst,
                addr: MemOperand::absolute(addr),
                width: Width::B8,
                signed: false,
            },
        );
        r.rec.mem = Some(br_isa::MemExec {
            addr,
            width: Width::B8,
            is_store: false,
            value: 0,
        });
        r
    }

    fn store(pc: Pc, src: br_isa::ArchReg, addr: u64) -> RetiredUop {
        let mut r = u(
            pc,
            UopKind::Store {
                src: Operand::Reg(src),
                addr: MemOperand::absolute(addr),
                width: Width::B8,
            },
        );
        r.rec.mem = Some(br_isa::MemExec {
            addr,
            width: Width::B8,
            is_store: true,
            value: 0,
        });
        r
    }

    #[test]
    fn branch_sourcing_poison_is_affectee() {
        let mut p = PoisonDetector::new(&merge_ev(RegSet::single(reg::R1)), 100);
        // cmp r1, 0 -> flags poisoned; branch reads flags -> affectee.
        assert!(p
            .step(&u(
                31,
                UopKind::Cmp {
                    src1: reg::R1,
                    src2: Operand::Imm(0)
                }
            ))
            .is_none());
        let hit = p.step(&u(
            32,
            UopKind::Branch {
                cond: Cond::Eq,
                target: 0,
            },
        ));
        assert_eq!(hit, Some(32));
        assert_eq!(p.affectees(), &[32]);
    }

    #[test]
    fn clean_overwrite_removes_poison() {
        let mut p = PoisonDetector::new(&merge_ev(RegSet::single(reg::R1)), 100);
        // r1 = 7 (clean immediate) -> poison cleared.
        p.step(&u(
            31,
            UopKind::Mov {
                dst: reg::R1,
                src: Operand::Imm(7),
            },
        ));
        p.step(&u(
            32,
            UopKind::Cmp {
                src1: reg::R1,
                src2: Operand::Imm(0),
            },
        ));
        let hit = p.step(&u(
            33,
            UopKind::Branch {
                cond: Cond::Eq,
                target: 0,
            },
        ));
        assert_eq!(hit, None, "poison was cleared by the clean write");
    }

    #[test]
    fn poison_propagates_through_registers() {
        let mut p = PoisonDetector::new(&merge_ev(RegSet::single(reg::R1)), 100);
        // r2 = r1 + 1 (poisoned); r3 = r2 * 2 (poisoned); cmp r3; branch.
        p.step(&u(
            31,
            UopKind::Alu {
                op: br_isa::AluOp::Add,
                dst: reg::R2,
                src1: reg::R1,
                src2: Operand::Imm(1),
            },
        ));
        p.step(&u(
            32,
            UopKind::Alu {
                op: br_isa::AluOp::Mul,
                dst: reg::R3,
                src1: reg::R2,
                src2: Operand::Imm(2),
            },
        ));
        p.step(&u(
            33,
            UopKind::Cmp {
                src1: reg::R3,
                src2: Operand::Imm(0),
            },
        ));
        assert!(p
            .step(&u(
                34,
                UopKind::Branch {
                    cond: Cond::Eq,
                    target: 0
                }
            ))
            .is_some());
    }

    #[test]
    fn poison_propagates_through_memory() {
        let mut p = PoisonDetector::new(&merge_ev(RegSet::single(reg::R1)), 100);
        p.step(&store(31, reg::R1, 0x4000)); // poisoned store
        p.step(&load(32, reg::R5, 0x4000)); // load from poisoned address
        p.step(&u(
            33,
            UopKind::Cmp {
                src1: reg::R5,
                src2: Operand::Imm(0),
            },
        ));
        assert!(p
            .step(&u(
                34,
                UopKind::Branch {
                    cond: Cond::Eq,
                    target: 0
                }
            ))
            .is_some());
    }

    #[test]
    fn terminates_at_second_affector_instance() {
        let mut p = PoisonDetector::new(&merge_ev(RegSet::single(reg::R1)), 100);
        assert!(p.step(&u(5, UopKind::Nop)).is_none());
        assert!(p.is_done());
    }

    #[test]
    fn self_affection_detected_at_termination() {
        // The affector branch's own next instance sources poison -> the
        // branch affects itself (a loop-carried data dependence).
        let mut p = PoisonDetector::new(&merge_ev(RegSet::single(reg::R1)), 100);
        p.step(&u(
            31,
            UopKind::Cmp {
                src1: reg::R1,
                src2: Operand::Imm(0),
            },
        ));
        let hit = p.step(&u(
            5,
            UopKind::Branch {
                cond: Cond::Eq,
                target: 0,
            },
        ));
        assert_eq!(hit, Some(5));
        assert!(p.is_done());
    }

    #[test]
    fn distance_budget_terminates() {
        let mut p = PoisonDetector::new(&merge_ev(RegSet::single(reg::R1)), 2);
        p.step(&u(31, UopKind::Nop));
        p.step(&u(32, UopKind::Nop));
        p.step(&u(33, UopKind::Nop));
        assert!(p.is_done());
    }
}
