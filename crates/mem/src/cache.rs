//! Set-associative write-back cache tag store with LRU replacement.

use crate::line_of;

/// Geometry and policy for a [`Cache`].
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// 32 KB, 8-way, 64 B lines — the paper's L1 (Table 1).
    #[must_use]
    pub fn l1() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
        }
    }

    /// 2 MB — the paper's L2 (Table 1). The paper specifies 12 ways;
    /// we use 16 so the set count stays a power of two (same capacity,
    /// same latency — the associativity difference is immaterial for the
    /// latency-distribution role the L2 plays here).
    #[must_use]
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or the set count is
    /// not a power of two.
    #[must_use]
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        let sets = (lines / self.ways as u64) as usize;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "cache sets must be a nonzero power of two, got {sets}"
        );
        sets
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

/// Outcome of a cache access or fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// A dirty victim line's *byte* address, if the access/fill evicted one.
    pub writeback: Option<u64>,
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines filled.
    pub fills: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio over demand accesses.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A tag-only set-associative cache model.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from `cfg`.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            sets: vec![vec![Way::default(); cfg.ways]; sets],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes;
        let set = (line as usize) & (self.sets.len() - 1);
        let tag = line >> self.sets.len().trailing_zeros();
        (set, tag)
    }

    /// Whether `addr`'s line is present (no LRU or stats side effects).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Demand access. On a hit the line's LRU is refreshed and, for writes,
    /// the dirty bit set. Misses do *not* fill — the caller fills after the
    /// lower level responds (see [`Cache::fill`]).
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheAccess {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        for w in &mut self.sets[set] {
            if w.valid && w.tag == tag {
                w.lru = self.tick;
                if is_write {
                    w.dirty = true;
                }
                self.stats.hits += 1;
                return CacheAccess {
                    hit: true,
                    writeback: None,
                };
            }
        }
        self.stats.misses += 1;
        CacheAccess {
            hit: false,
            writeback: None,
        }
    }

    /// Installs `addr`'s line, evicting the LRU way. Returns the dirty
    /// victim's address, if any. `dirty` marks the new line dirty
    /// immediately (write-allocate store miss).
    pub fn fill(&mut self, addr: u64, dirty: bool) -> CacheAccess {
        self.tick += 1;
        self.stats.fills += 1;
        let (set, tag) = self.set_and_tag(addr);
        let sets_log2 = self.sets_log2();
        let tick = self.tick;
        let set_ways = &mut self.sets[set];
        // Already present (e.g. prefetch raced a demand fill): refresh.
        if let Some(w) = set_ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = tick;
            w.dirty |= dirty;
            return CacheAccess {
                hit: true,
                writeback: None,
            };
        }
        let victim = set_ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("ways is nonempty");
        let mut writeback = None;
        let mut evicted_dirty = false;
        if victim.valid && victim.dirty {
            let line = (victim.tag << sets_log2) | set as u64;
            writeback = Some(line * self.cfg.line_bytes);
            evicted_dirty = true;
        }
        *victim = Way {
            valid: true,
            dirty,
            tag,
            lru: tick,
        };
        if evicted_dirty {
            self.stats.writebacks += 1;
        }
        CacheAccess {
            hit: false,
            writeback,
        }
    }

    fn sets_log2(&self) -> u32 {
        self.sets.len().trailing_zeros()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// The line-aligned address containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        line_of(addr) * self.cfg.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        c.fill(0x100, false);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x13f, false).hit, "same line, different offset");
        assert!(!c.access(0x140, false).hit, "next line misses");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 (64B lines, 4 sets → stride 256).
        c.fill(0x000, false);
        c.fill(0x400, false);
        assert!(c.access(0x000, false).hit); // refresh 0x000
        c.fill(0x800, false); // evicts 0x400
        assert!(c.probe(0x000));
        assert!(!c.probe(0x400));
        assert!(c.probe(0x800));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0x000, false);
        assert!(c.access(0x000, true).hit);
        c.fill(0x400, false);
        let res = c.fill(0x800, false);
        assert_eq!(res.writeback, Some(0x000), "dirty LRU victim written back");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn store_miss_fill_marks_dirty() {
        let mut c = tiny();
        c.fill(0x000, true);
        c.fill(0x400, false);
        let res = c.fill(0x800, false);
        assert_eq!(res.writeback, Some(0x000));
    }

    #[test]
    fn duplicate_fill_is_idempotent() {
        let mut c = tiny();
        c.fill(0x100, false);
        let res = c.fill(0x100, true);
        assert!(res.hit);
        assert!(c.probe(0x100));
    }

    #[test]
    fn paper_geometries_validate() {
        assert_eq!(CacheConfig::l1().sets(), 64);
        assert_eq!(CacheConfig::l2().sets(), 2048);
        assert!(!Cache::new(CacheConfig::l2()).probe(0));
    }

    #[test]
    fn stats_accumulate() {
        let mut c = tiny();
        c.access(0x0, false);
        c.fill(0x0, false);
        c.access(0x0, false);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.fills), (1, 1, 1));
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
