//! Experiment drivers: one function per table/figure of the paper's
//! evaluation (§5). Each returns an [`ExpTable`] whose rows are workloads
//! and whose summary row reproduces the paper's mean.
//!
//! Absolute values differ from the paper (different substrate, scaled
//! regions); the *shape* — orderings, rough factors, crossovers — is the
//! reproduction target. See `EXPERIMENTS.md` at the repository root for
//! the recorded paper-vs-measured comparison.

use br_core::{BranchRunaheadConfig, InitiationMode, PredictionCategory};
use br_energy::{AreaBreakdown, EnergyModel};
use br_workloads::{all_workloads, workload_by_name, WorkloadParams};

use crate::config::SimConfig;
use crate::system::{RunResult, System};
use crate::table::{ExpTable, MeanKind};

pub use crate::table::MeanKind as Mean;

/// Shared experiment parameters.
#[derive(Clone, Debug)]
pub struct ExperimentSetup {
    /// Workload build parameters.
    pub params: WorkloadParams,
    /// Retired-uop budget per run.
    pub max_retired: u64,
    /// Workload names to include (defaults to all 18).
    pub workloads: Vec<String>,
    /// SimPoint-style regions: `(seed, weight)` pairs. The paper runs
    /// one to five representative regions per benchmark and reports the
    /// weighted average; each region here is the kernel rebuilt with a
    /// different seed. Default: a single full-weight region.
    pub regions: Vec<(u64, f64)>,
}

impl Default for ExperimentSetup {
    fn default() -> Self {
        ExperimentSetup {
            params: WorkloadParams::default(),
            max_retired: 400_000,
            workloads: all_workloads().iter().map(|w| w.name().to_string()).collect(),
            regions: vec![(0, 1.0)],
        }
    }
}

impl ExperimentSetup {
    /// A reduced setup for fast smoke runs and CI.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentSetup {
            params: WorkloadParams {
                scale: 1024,
                iterations: 1_000_000,
                seed: 0xfeed_beef,
            },
            max_retired: 60_000,
            workloads: vec![
                "leela_17".into(),
                "mcf_06".into(),
                "bfs".into(),
                "sssp".into(),
            ],
            regions: vec![(0, 1.0)],
        }
    }

    /// Runs one workload under one configuration. With multiple regions,
    /// scalar statistics are combined as the weighted average (the
    /// paper's SimPoint methodology); structural results (chains, branch
    /// sites, breakdowns) come from the heaviest region's run.
    #[must_use]
    pub fn run(&self, mut cfg: SimConfig, workload: &str) -> RunResult {
        cfg.max_retired = self.max_retired;
        let w = workload_by_name(workload)
            .unwrap_or_else(|| panic!("unknown workload {workload}"));
        assert!(!self.regions.is_empty(), "need at least one region");
        let mut runs: Vec<(f64, RunResult)> = self
            .regions
            .iter()
            .map(|(seed_salt, weight)| {
                let params = WorkloadParams {
                    seed: self.params.seed ^ (seed_salt.wrapping_mul(0x9E37_79B9)),
                    ..self.params
                };
                (*weight, System::new(cfg.clone(), w.build(&params)).run())
            })
            .collect();
        if runs.len() == 1 {
            return runs.pop().expect("one run").1;
        }
        let total_w: f64 = runs.iter().map(|(w, _)| *w).sum();
        // Start from the heaviest region's full result, then overwrite the
        // scalar counters with weighted averages.
        let heaviest = runs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .map(|(i, _)| i)
            .expect("nonempty");
        let mut out = runs[heaviest].1.clone();
        let avg = |f: &dyn Fn(&RunResult) -> u64| -> u64 {
            (runs.iter().map(|(w, r)| *w * f(r) as f64).sum::<f64>() / total_w) as u64
        };
        out.core.cycles = avg(&|r| r.core.cycles);
        out.core.retired_uops = avg(&|r| r.core.retired_uops);
        out.core.retired_branches = avg(&|r| r.core.retired_branches);
        out.core.mispredicts = avg(&|r| r.core.mispredicts);
        out.core.issued_uops = avg(&|r| r.core.issued_uops);
        out.core.issued_loads = avg(&|r| r.core.issued_loads);
        out.core.fetched_uops = avg(&|r| r.core.fetched_uops);
        out.core.fetched_branches = avg(&|r| r.core.fetched_branches);
        out
    }
}

/// Misprediction rate (%) over a fixed set of branch sites in a run.
fn site_rate(r: &RunResult, sites: &[u64]) -> f64 {
    let (mut exec, mut misp) = (0u64, 0u64);
    for pc in sites {
        if let Some(s) = r.core.branch_sites.get(pc) {
            exec += s.executed;
            misp += s.mispredicted;
        }
    }
    if exec == 0 {
        0.0
    } else {
        misp as f64 / exec as f64 * 100.0
    }
}

/// Figure 1: misprediction rate on the hardest branches — 64 KB
/// TAGE-SC-L vs unlimited MTAGE vs dependence chains (Big BR).
#[must_use]
pub fn fig1(setup: &ExperimentSetup) -> ExpTable {
    let mut t = ExpTable::new(
        "Figure 1: misprediction rate of the hardest branches (%)",
        vec![
            "tage-sc-l-64kb".into(),
            "mtage-unlimited".into(),
            "dep-chains".into(),
        ],
        MeanKind::Arithmetic,
    );
    for w in &setup.workloads {
        let base = setup.run(SimConfig::baseline(), w);
        // The paper selects the 32 most mispredicted branches.
        let sites: Vec<u64> = base
            .core
            .hardest_branches(32)
            .into_iter()
            .filter(|(_, s)| s.mispredicted > 0)
            .map(|(pc, _)| pc)
            .collect();
        let mtage = setup.run(SimConfig::mtage(), w);
        let chains = setup.run(SimConfig::big_br(), w);
        t.push_row(
            w.clone(),
            vec![
                site_rate(&base, &sites),
                site_rate(&mtage, &sites),
                site_rate(&chains, &sites),
            ],
        );
    }
    t
}

/// Figure 2: average dependence-chain length in uops.
#[must_use]
pub fn fig2(setup: &ExperimentSetup) -> ExpTable {
    let mut t = ExpTable::new(
        "Figure 2: average dependence chain length (uops)",
        vec!["chain-length".into()],
        MeanKind::Arithmetic,
    );
    for w in &setup.workloads {
        let r = setup.run(SimConfig::mini_br(), w);
        t.push_row(w.clone(), vec![r.br.as_ref().map_or(0.0, |b| b.avg_chain_len())]);
    }
    t
}

/// Figure 3: increase in micro-ops issued (total and loads) due to
/// Branch Runahead, in percent.
#[must_use]
pub fn fig3(setup: &ExperimentSetup) -> ExpTable {
    let mut t = ExpTable::new(
        "Figure 3: extra micro-ops issued due to Branch Runahead (%)",
        vec![
            "net-uops".into(),
            "net-load-uops".into(),
            "dce-overhead".into(),
        ],
        MeanKind::Arithmetic,
    );
    for w in &setup.workloads {
        let base = setup.run(SimConfig::baseline(), w);
        let with = setup.run(SimConfig::mini_br(), w);
        let br = with.br.as_ref().expect("BR enabled");
        // Net change includes the wrong-path work Branch Runahead removes
        // (it can be negative); `dce-overhead` is the pure added work the
        // paper's +34.3% mean refers to, relative to retired uops.
        let uops_pct = ((with.core.issued_uops + br.dce_uops) as f64
            / base.core.issued_uops as f64
            - 1.0)
            * 100.0;
        let loads_pct = ((with.core.issued_loads + br.dce_loads) as f64
            / base.core.issued_loads.max(1) as f64
            - 1.0)
            * 100.0;
        let overhead_pct = br.dce_uops as f64 / with.core.retired_uops.max(1) as f64 * 100.0;
        t.push_row(w.clone(), vec![uops_pct, loads_pct, overhead_pct]);
    }
    t
}

/// Figure 5: fraction of dependence chains impacted by affector or guard
/// branches, in percent.
#[must_use]
pub fn fig5(setup: &ExperimentSetup) -> ExpTable {
    let mut t = ExpTable::new(
        "Figure 5: chains with affectors or guards (%)",
        vec!["with-ag".into()],
        MeanKind::Arithmetic,
    );
    for w in &setup.workloads {
        let r = setup.run(SimConfig::mini_br(), w);
        t.push_row(
            w.clone(),
            vec![r.br.as_ref().map_or(0.0, |b| b.ag_fraction() * 100.0)],
        );
    }
    t
}

/// Figure 10: MPKI and IPC improvement of 80 KB TAGE-SC-L and the three
/// Branch Runahead configurations over the 64 KB baseline. Returns
/// `(mpki_table, ipc_table)`.
#[must_use]
pub fn fig10(setup: &ExperimentSetup) -> (ExpTable, ExpTable) {
    let series = vec![
        "80kb-tage".into(),
        "core-only".into(),
        "mini".into(),
        "big".into(),
    ];
    let mut mpki = ExpTable::new(
        "Figure 10 (top): relative MPKI improvement (%)",
        series.clone(),
        MeanKind::Arithmetic,
    );
    let mut ipc = ExpTable::new(
        "Figure 10 (bottom): relative IPC improvement (%)",
        series,
        MeanKind::GeometricPct,
    );
    for w in &setup.workloads {
        let base = setup.run(SimConfig::baseline(), w);
        let runs = [
            setup.run(SimConfig::tage80(), w),
            setup.run(SimConfig::core_only_br(), w),
            setup.run(SimConfig::mini_br(), w),
            setup.run(SimConfig::big_br(), w),
        ];
        mpki.push_row(
            w.clone(),
            runs.iter().map(|r| r.mpki_improvement_pct(&base)).collect(),
        );
        ipc.push_row(
            w.clone(),
            runs.iter().map(|r| r.ipc_improvement_pct(&base)).collect(),
        );
    }
    (mpki, ipc)
}

/// Figure 11 (top): MPKI improvement of MTAGE, Big BR, and MTAGE+Big BR
/// over the 64 KB baseline.
#[must_use]
pub fn fig11_top(setup: &ExperimentSetup) -> ExpTable {
    let mut t = ExpTable::new(
        "Figure 11 (top): MPKI improvement over 64KB TAGE-SC-L (%)",
        vec!["mtage".into(), "big-br".into(), "mtage+big-br".into()],
        MeanKind::Arithmetic,
    );
    for w in &setup.workloads {
        let base = setup.run(SimConfig::baseline(), w);
        let rows = [
            setup.run(SimConfig::mtage(), w),
            setup.run(SimConfig::big_br(), w),
            setup.run(SimConfig::mtage_plus_big_br(), w),
        ];
        t.push_row(
            w.clone(),
            rows.iter().map(|r| r.mpki_improvement_pct(&base)).collect(),
        );
    }
    t
}

/// Figure 11 (bottom): MPKI improvement of the three chain-initiation
/// policies (Mini configuration).
#[must_use]
pub fn fig11_bottom(setup: &ExperimentSetup) -> ExpTable {
    let mut t = ExpTable::new(
        "Figure 11 (bottom): MPKI improvement by initiation policy (%)",
        vec![
            "non-speculative".into(),
            "independent-early".into(),
            "predictive".into(),
        ],
        MeanKind::Arithmetic,
    );
    for w in &setup.workloads {
        let base = setup.run(SimConfig::baseline(), w);
        let mut vals = Vec::new();
        for mode in InitiationMode::ALL {
            let mut cfg = SimConfig::mini_br();
            if let Some(rc) = &mut cfg.runahead {
                rc.initiation = mode;
            }
            vals.push(setup.run(cfg, w).mpki_improvement_pct(&base));
        }
        t.push_row(w.clone(), vals);
    }
    t
}

/// Figure 12: breakdown of DCE predictions for covered branches
/// (inactive / late / throttled / incorrect / correct), in percent.
#[must_use]
pub fn fig12(setup: &ExperimentSetup) -> ExpTable {
    let mut t = ExpTable::new(
        "Figure 12: prediction breakdown for covered branches (%)",
        vec![
            "inactive".into(),
            "late".into(),
            "throttled".into(),
            "incorrect".into(),
            "correct".into(),
        ],
        MeanKind::Arithmetic,
    );
    for w in &setup.workloads {
        let r = setup.run(SimConfig::mini_br(), w);
        let br = r.br.as_ref().expect("BR enabled");
        t.push_row(
            w.clone(),
            PredictionCategory::ALL
                .iter()
                .map(|c| br.category_fraction(*c) * 100.0)
                .collect(),
        );
    }
    t
}

/// Figure 13: parameter sweeps from the Mini configuration toward Big.
/// Rows are `param=value`; the single column is the mean MPKI improvement
/// over the 64 KB baseline across the setup's workloads. As in the paper
/// (footnote 16), sweeps run shorter regions than the other experiments.
#[must_use]
pub fn fig13(setup: &ExperimentSetup) -> ExpTable {
    let setup = &ExperimentSetup {
        max_retired: (setup.max_retired / 4).max(10_000),
        ..setup.clone()
    };
    let mut t = ExpTable::new(
        "Figure 13: MPKI improvement across parameter sweeps (%)",
        vec!["mean-mpki-improvement".into()],
        MeanKind::Arithmetic,
    );
    type Apply = fn(&mut BranchRunaheadConfig, usize);
    let sweeps: Vec<(&str, Vec<usize>, Apply)> = vec![
        ("chain-cache", vec![16, 32, 64, 256], |c, v| {
            c.chain_cache_entries = v;
        }),
        ("queue-entries", vec![2, 8, 64, 256], |c, v| {
            c.queue_entries = v;
        }),
        ("ceb", vec![128, 512, 2048], |c, v| c.ceb_entries = v),
        ("window", vec![8, 64, 256, 1024], |c, v| {
            c.window_instances = v;
        }),
        ("hbt", vec![16, 64, 1024], |c, v| c.hbt_entries = v),
        ("max-chain-len", vec![8, 16, 32], |c, v| {
            c.max_chain_len = v;
        }),
    ];
    // Baselines per workload (computed once).
    let bases: Vec<RunResult> = setup
        .workloads
        .iter()
        .map(|w| setup.run(SimConfig::baseline(), w))
        .collect();
    for (name, values, apply) in sweeps {
        for v in values {
            let mut sum = 0.0;
            for (w, base) in setup.workloads.iter().zip(&bases) {
                let mut cfg = SimConfig::mini_br();
                if let Some(rc) = &mut cfg.runahead {
                    apply(rc, v);
                }
                sum += setup.run(cfg, w).mpki_improvement_pct(base);
            }
            t.push_row(
                format!("{name}={v}"),
                vec![sum / setup.workloads.len() as f64],
            );
        }
    }
    t
}

/// Figure 14: relative energy change (%) of the three Branch Runahead
/// configurations (negative = saves energy).
#[must_use]
pub fn fig14(setup: &ExperimentSetup) -> ExpTable {
    let model = EnergyModel::default();
    let mut t = ExpTable::new(
        "Figure 14: energy change vs baseline (%) — lower is better",
        vec!["core-only".into(), "mini".into(), "big".into()],
        MeanKind::Arithmetic,
    );
    for w in &setup.workloads {
        let base = setup.run(SimConfig::baseline(), w).energy_events();
        let vals = [
            SimConfig::core_only_br(),
            SimConfig::mini_br(),
            SimConfig::big_br(),
        ]
        .into_iter()
        .map(|cfg| {
            let e = setup.run(cfg, w).energy_events();
            model.relative_change_pct(&base, &e)
        })
        .collect();
        t.push_row(w.clone(), vals);
    }
    t
}

/// Design-choice ablations (DESIGN.md §5): Mini Branch Runahead versus
/// (a) in-order intra-chain scheduling — §4.2 reports it "was not able to
/// expose enough MLP" — and (b) disabled affector/guard detection — the
/// paper's contribution bullet "we demonstrate the importance of
/// accurately identifying affector and guard dependencies".
#[must_use]
pub fn ablations(setup: &ExperimentSetup) -> ExpTable {
    let mut t = ExpTable::new(
        "Ablations: MPKI improvement over baseline (%)",
        vec![
            "mini".into(),
            "mini-inorder-dce".into(),
            "mini-no-ag".into(),
        ],
        MeanKind::Arithmetic,
    );
    for w in &setup.workloads {
        let base = setup.run(SimConfig::baseline(), w);
        let full = setup.run(SimConfig::mini_br(), w);
        let mut inorder_cfg = SimConfig::mini_br();
        if let Some(rc) = &mut inorder_cfg.runahead {
            rc.dce_in_order = true;
        }
        let inorder = setup.run(inorder_cfg, w);
        let mut noag_cfg = SimConfig::mini_br();
        if let Some(rc) = &mut noag_cfg.runahead {
            rc.enable_affector_guards = false;
        }
        let noag = setup.run(noag_cfg, w);
        t.push_row(
            w.clone(),
            vec![
                full.mpki_improvement_pct(&base),
                inorder.mpki_improvement_pct(&base),
                noag.mpki_improvement_pct(&base),
            ],
        );
    }
    t
}

/// §4.4 merge-point prediction accuracy (%), per workload.
#[must_use]
pub fn merge_point(setup: &ExperimentSetup) -> ExpTable {
    let mut t = ExpTable::new(
        "Merge-point prediction accuracy (%) [paper: WPB 92% vs prior-work 78%]",
        vec![
            "wpb".into(),
            "static-heuristic".into(),
            "validated".into(),
        ],
        MeanKind::Arithmetic,
    );
    for w in &setup.workloads {
        let r = setup.run(SimConfig::mini_br(), w);
        let br = r.br.as_ref().expect("BR enabled");
        t.push_row(
            w.clone(),
            vec![
                br.merge_accuracy() * 100.0,
                br.static_merge_accuracy() * 100.0,
                br.merge_validated as f64,
            ],
        );
    }
    t
}

/// §5.2 area report.
#[must_use]
pub fn area_report() -> String {
    let a = AreaBreakdown::paper_mini();
    format!(
        "Area model (22nm, McPAT-substitute):\n\
         baseline OoO core      {:.2} mm2\n\
         64KB TAGE-SC-L         {:.2} mm2\n\
         DCE chain cache        {:.2} mm2\n\
         DCE exec (FUs/RS/PRF)  {:.2} mm2\n\
         chain extraction + HBT {:.2} mm2\n\
         DCE total              {:.2} mm2 = {:.1}% of core (paper: 2.2%)\n\
         Core-Only adds         {:.1}% of core (paper: 1.4%)",
        a.core_mm2,
        a.tage_mm2,
        a.chain_cache_mm2,
        a.dce_exec_mm2,
        a.extraction_mm2,
        a.dce_mm2(),
        a.dce_fraction() * 100.0,
        a.core_only_fraction() * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_report_contains_paper_numbers() {
        let s = area_report();
        assert!(s.contains("16.96"));
        assert!(s.contains("0.38"));
    }

    #[test]
    fn quick_setup_is_small() {
        let q = ExperimentSetup::quick();
        assert!(q.workloads.len() <= 6);
        assert!(q.max_retired <= 100_000);
    }
}
