//! The composed, tick-driven memory system shared by core and DCE.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::dram::{Dram, DramConfig, DramResp, DramStats};
use crate::mshr::{MshrFile, MshrOutcome};
use crate::prefetch::{StreamPrefetcher, StreamPrefetcherConfig};
use crate::tlb::{Tlb, TlbConfig, TlbStats};

/// Identifies a memory request across its lifetime.
pub type ReqId = u64;

/// Who issued a request — used for statistics (Figure 3 reports the extra
/// memory traffic Branch Runahead generates) and for port arbitration done
/// by the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReqSource {
    /// The main out-of-order core.
    Core,
    /// The Dependence Chain Engine.
    Dce,
    /// The hardware prefetcher.
    Prefetch,
}

/// Why a request could not be accepted this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// All MSHRs are occupied; retry next cycle.
    MshrFull,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::MshrFull => write!(f, "all MSHRs occupied"),
        }
    }
}

impl std::error::Error for RequestError {}

/// A completed request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemResp {
    /// The id returned by [`MemorySystem::request`].
    pub id: ReqId,
    /// Completion cycle.
    pub finished: u64,
}

/// Configuration for [`MemorySystem`] (defaults = paper Table 1).
#[derive(Clone, Copy, Debug)]
pub struct MemoryConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u64,
    /// L2 hit latency in cycles (total, from request).
    pub l2_hit_latency: u64,
    /// Core-side MSHR entries.
    pub mshrs: usize,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Stream prefetcher settings; `None` disables prefetching.
    pub prefetcher: Option<StreamPrefetcherConfig>,
    /// Data TLB (shared by core and DCE, §4.2).
    pub tlb: TlbConfig,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            l1: CacheConfig::l1(),
            l2: CacheConfig::l2(),
            l1_hit_latency: 3,
            l2_hit_latency: 18,
            mshrs: 32,
            dram: DramConfig::default(),
            prefetcher: Some(StreamPrefetcherConfig::default()),
            tlb: TlbConfig::default(),
        }
    }
}

/// Aggregate statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryStats {
    /// Demand requests from the core.
    pub core_requests: u64,
    /// Demand requests from the DCE.
    pub dce_requests: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// L1 statistics.
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Data-TLB statistics.
    pub tlb: TlbStats,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pending {
    L2Lookup {
        line_addr: u64,
        write_allocate: bool,
    },
    Respond {
        id: ReqId,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DramPurpose {
    DemandFill {
        line_addr: u64,
        write_allocate: bool,
    },
    PrefetchFill {
        line_addr: u64,
    },
}

/// The shared L1D → L2 → DRAM hierarchy. See module docs for the flow.
pub struct MemorySystem {
    cfg: MemoryConfig,
    l1: Cache,
    l2: Cache,
    tlb: Tlb,
    mshr: MshrFile,
    prefetcher: Option<StreamPrefetcher>,
    dram: Dram,
    events: BinaryHeap<Reverse<(u64, u64, PendingCell)>>,
    /// DRAM id → purpose.
    dram_reqs: Vec<(u64, DramPurpose)>,
    /// Requests waiting for DRAM queue space: (purpose, is_write).
    dram_backlog: Vec<(DramPurpose, bool)>,
    /// Writebacks waiting for DRAM queue space.
    writeback_backlog: Vec<u64>,
    /// Scratch for [`Dram::tick_into`] (reused every cycle).
    dram_done: Vec<DramResp>,
    /// Scratch for [`MshrFile::complete_into`] (reused per fill).
    mshr_ids: Vec<u64>,
    next_id: u64,
    seq: u64,
    stats: MemoryStats,
}

// BinaryHeap needs Ord; wrap Pending with a tie-break sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PendingCell(Pending);

impl PartialOrd for PendingCell {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingCell {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("mshrs_in_use", &self.mshr.len())
            .field("dram_outstanding", &self.dram.outstanding())
            .finish()
    }
}

impl MemorySystem {
    /// Builds the hierarchy from `cfg`.
    #[must_use]
    pub fn new(cfg: MemoryConfig) -> Self {
        MemorySystem {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            tlb: Tlb::new(cfg.tlb),
            mshr: MshrFile::new(cfg.mshrs),
            prefetcher: cfg.prefetcher.map(StreamPrefetcher::new),
            dram: Dram::new(cfg.dram),
            events: BinaryHeap::new(),
            dram_reqs: Vec::new(),
            dram_backlog: Vec::new(),
            writeback_backlog: Vec::new(),
            dram_done: Vec::new(),
            mshr_ids: Vec::new(),
            next_id: 0,
            seq: 0,
            stats: MemoryStats::default(),
            cfg,
        }
    }

    fn schedule(&mut self, cycle: u64, p: Pending) {
        self.seq += 1;
        self.events.push(Reverse((cycle, self.seq, PendingCell(p))));
    }

    /// Issues a demand access. Returns a request id whose completion will
    /// appear in a future [`MemorySystem::tick`].
    ///
    /// # Errors
    ///
    /// [`RequestError::MshrFull`] if the access misses and no MSHR is
    /// available; the caller must retry on a later cycle.
    pub fn request(
        &mut self,
        addr: u64,
        is_write: bool,
        who: ReqSource,
        now: u64,
    ) -> Result<ReqId, RequestError> {
        let line_addr = self.l1.line_addr(addr);
        let id = self.next_id;
        // Address translation first; a D-TLB miss delays the whole access
        // by the page-walk latency.
        let tlb_extra = self.tlb.access(addr);

        let hit = self.l1.probe(addr);
        if !hit {
            // Reserve the MSHR before committing any state.
            match self.mshr.allocate(line_addr, id) {
                MshrOutcome::Full => return Err(RequestError::MshrFull),
                MshrOutcome::Merged => {
                    self.note_source(who);
                    self.l1.access(addr, is_write); // count the demand miss
                    self.next_id += 1;
                    return Ok(id);
                }
                MshrOutcome::Allocated => {
                    self.note_source(who);
                    self.l1.access(addr, is_write);
                    self.next_id += 1;
                    self.schedule(
                        now + self.cfg.l1_hit_latency + tlb_extra,
                        Pending::L2Lookup {
                            line_addr,
                            write_allocate: is_write,
                        },
                    );
                    return Ok(id);
                }
            }
        }

        self.note_source(who);
        self.l1.access(addr, is_write);
        self.next_id += 1;
        self.schedule(
            now + self.cfg.l1_hit_latency + tlb_extra,
            Pending::Respond { id },
        );
        Ok(id)
    }

    fn note_source(&mut self, who: ReqSource) {
        match who {
            ReqSource::Core => self.stats.core_requests += 1,
            ReqSource::Dce => self.stats.dce_requests += 1,
            ReqSource::Prefetch => self.stats.prefetches += 1,
        }
    }

    fn enqueue_dram(&mut self, purpose: DramPurpose, is_write: bool, now: u64) {
        let (line_addr, id) = match purpose {
            DramPurpose::DemandFill { line_addr, .. } => (line_addr, self.alloc_dram_id(purpose)),
            DramPurpose::PrefetchFill { line_addr } => (line_addr, self.alloc_dram_id(purpose)),
        };
        if !self.dram.enqueue(id, line_addr, is_write, now) {
            // Roll back the id registration and back-log the request.
            self.dram_reqs.pop();
            self.dram_backlog.push((purpose, is_write));
        }
    }

    fn alloc_dram_id(&mut self, purpose: DramPurpose) -> u64 {
        let id = 1_000_000_000 + self.dram_reqs.len() as u64 + self.next_id * 4096;
        self.dram_reqs.push((id, purpose));
        id
    }

    fn handle_l2_lookup(&mut self, line_addr: u64, write_allocate: bool, now: u64) {
        // Train the prefetcher on L1 misses (demand L2 accesses).
        let prefetches: Vec<u64> = match &mut self.prefetcher {
            Some(p) => p.train(line_addr),
            None => Vec::new(),
        };
        for pf_addr in prefetches {
            if !self.l2.probe(pf_addr) {
                self.note_source(ReqSource::Prefetch);
                self.enqueue_dram(DramPurpose::PrefetchFill { line_addr: pf_addr }, false, now);
            }
        }

        if self.l2.access(line_addr, false).hit {
            // Fill L1 and answer at the L2 latency point.
            let wb = self.l1.fill(line_addr, write_allocate).writeback;
            if let Some(victim) = wb {
                self.writeback_l2(victim, now);
            }
            let respond_at = now + (self.cfg.l2_hit_latency - self.cfg.l1_hit_latency);
            let mut ids = std::mem::take(&mut self.mshr_ids);
            self.mshr.complete_into(line_addr, &mut ids);
            for &id in &ids {
                self.schedule(respond_at, Pending::Respond { id });
            }
            self.mshr_ids = ids;
        } else {
            self.enqueue_dram(
                DramPurpose::DemandFill {
                    line_addr,
                    write_allocate,
                },
                false,
                now,
            );
        }
    }

    fn writeback_l2(&mut self, victim_addr: u64, now: u64) {
        // L1 dirty victims are absorbed by the L2 (write-back hierarchy);
        // if the L2 doesn't hold the line it allocates it dirty, possibly
        // producing a DRAM write.
        let res = if self.l2.probe(victim_addr) {
            self.l2.access(victim_addr, true)
        } else {
            self.l2.fill(victim_addr, true)
        };
        if let Some(wb) = res.writeback {
            if !self.dram.enqueue(u64::MAX, wb, true, now) {
                self.writeback_backlog.push(wb);
            }
        }
    }

    fn handle_dram_fill(&mut self, id: u64, now: u64) {
        let Some(pos) = self.dram_reqs.iter().position(|(i, _)| *i == id) else {
            return; // writeback completion
        };
        let (_, purpose) = self.dram_reqs.swap_remove(pos);
        match purpose {
            DramPurpose::DemandFill {
                line_addr,
                write_allocate,
            } => {
                if let Some(wb) = self.l2.fill(line_addr, false).writeback {
                    if !self.dram.enqueue(u64::MAX, wb, true, now) {
                        self.writeback_backlog.push(wb);
                    }
                }
                if let Some(victim) = self.l1.fill(line_addr, write_allocate).writeback {
                    self.writeback_l2(victim, now);
                }
                let mut ids = std::mem::take(&mut self.mshr_ids);
                self.mshr.complete_into(line_addr, &mut ids);
                for &rid in &ids {
                    self.schedule(now, Pending::Respond { id: rid });
                }
                self.mshr_ids = ids;
            }
            DramPurpose::PrefetchFill { line_addr } => {
                if let Some(wb) = self.l2.fill(line_addr, false).writeback {
                    if !self.dram.enqueue(u64::MAX, wb, true, now) {
                        self.writeback_backlog.push(wb);
                    }
                }
            }
        }
    }

    /// Advances one cycle; returns every request completing at `now`.
    pub fn tick(&mut self, now: u64) -> Vec<MemResp> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    /// [`Self::tick`] into an existing buffer (cleared first), so the
    /// per-cycle caller never allocates.
    pub fn tick_into(&mut self, now: u64, out: &mut Vec<MemResp>) {
        out.clear();
        // Retry back-logged DRAM traffic.
        let backlog = std::mem::take(&mut self.dram_backlog);
        for (purpose, is_write) in backlog {
            self.enqueue_dram(purpose, is_write, now);
        }
        let wbs = std::mem::take(&mut self.writeback_backlog);
        for wb in wbs {
            if !self.dram.enqueue(u64::MAX, wb, true, now) {
                self.writeback_backlog.push(wb);
            }
        }

        let mut done = std::mem::take(&mut self.dram_done);
        self.dram.tick_into(now, &mut done);
        for resp in &done {
            self.handle_dram_fill(resp.id, now);
        }
        self.dram_done = done;

        while let Some(Reverse((cycle, _, _))) = self.events.peek() {
            if *cycle > now {
                break;
            }
            let Reverse((_, _, PendingCell(p))) = self.events.pop().expect("peeked");
            match p {
                Pending::L2Lookup {
                    line_addr,
                    write_allocate,
                } => self.handle_l2_lookup(line_addr, write_allocate, now),
                Pending::Respond { id } => out.push(MemResp { id, finished: now }),
            }
        }
    }

    /// Whether `addr` currently hits in the L1 (no side effects). The core
    /// uses this to estimate store-latency-free commit.
    #[must_use]
    pub fn l1_probe(&self, addr: u64) -> bool {
        self.l1.probe(addr)
    }

    /// MSHRs currently tracking outstanding misses (telemetry sampling).
    #[must_use]
    pub fn mshrs_in_use(&self) -> usize {
        self.mshr.len()
    }

    /// Aggregated statistics.
    #[must_use]
    pub fn stats(&self) -> MemoryStats {
        let mut s = self.stats;
        s.l1 = self.l1.stats();
        s.l2 = self.l2.stats();
        s.dram = self.dram.stats();
        s.tlb = self.tlb.stats();
        s
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(mem: &mut MemorySystem, id: ReqId, from: u64, limit: u64) -> u64 {
        for now in from..from + limit {
            if mem.tick(now).iter().any(|r| r.id == id) {
                return now;
            }
        }
        panic!("request {id} did not complete");
    }

    #[test]
    fn cold_load_pays_dram_latency_then_hits() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let id = mem.request(0x4000, false, ReqSource::Core, 0).unwrap();
        let t1 = complete(&mut mem, id, 0, 2000);
        assert!(t1 > 50, "cold miss should reach DRAM: {t1}");
        let id2 = mem.request(0x4000, false, ReqSource::Core, t1).unwrap();
        let t2 = complete(&mut mem, id2, t1, 100) - t1;
        assert_eq!(t2, 3, "L1 hit latency");
    }

    #[test]
    fn l2_hit_latency_between_l1_and_dram() {
        let mut mem = MemorySystem::new(MemoryConfig {
            prefetcher: None,
            ..MemoryConfig::default()
        });
        // Fill the line, then evict it from L1 only by filling conflicting
        // lines (L1: 64 sets × 8 ways; same set stride = 64*64 = 4096).
        let id = mem.request(0x10000, false, ReqSource::Core, 0).unwrap();
        let mut now = complete(&mut mem, id, 0, 2000);
        for i in 1..=8u64 {
            let id = mem
                .request(0x10000 + i * 4096, false, ReqSource::Core, now)
                .unwrap();
            now = complete(&mut mem, id, now, 2000);
        }
        // 0x10000 evicted from L1 but still in L2.
        let id = mem.request(0x10000, false, ReqSource::Core, now).unwrap();
        let t = complete(&mut mem, id, now, 2000) - now;
        assert_eq!(t, 18, "expected the L2 hit latency, got {t}");
    }

    #[test]
    fn merged_misses_complete_together() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let a = mem.request(0x8000, false, ReqSource::Core, 0).unwrap();
        let b = mem.request(0x8008, false, ReqSource::Dce, 0).unwrap();
        let mut done = Vec::new();
        for now in 0..2000 {
            done.extend(mem.tick(now));
            if done.len() == 2 {
                break;
            }
        }
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].finished, done[1].finished);
        assert!(done.iter().any(|r| r.id == a) && done.iter().any(|r| r.id == b));
    }

    #[test]
    fn mshr_exhaustion_rejects() {
        let mut mem = MemorySystem::new(MemoryConfig {
            mshrs: 2,
            ..MemoryConfig::default()
        });
        mem.request(0x1000, false, ReqSource::Core, 0).unwrap();
        mem.request(0x2000, false, ReqSource::Core, 0).unwrap();
        assert_eq!(
            mem.request(0x3000, false, ReqSource::Core, 0),
            Err(RequestError::MshrFull)
        );
        // Same-line merge still accepted.
        assert!(mem.request(0x1008, false, ReqSource::Core, 0).is_ok());
    }

    #[test]
    fn sequential_stream_gets_prefetched() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut now = 0;
        for i in 0..32u64 {
            let id = mem
                .request(0x100000 + i * 64, false, ReqSource::Core, now)
                .unwrap();
            now = complete(&mut mem, id, now, 3000) + 1;
        }
        let s = mem.stats();
        assert!(s.prefetches > 0, "prefetcher should engage");
        // Later lines should be L2 hits thanks to prefetching: the last
        // few accesses must be much faster than DRAM.
        let id = mem
            .request(0x100000 + 32 * 64, false, ReqSource::Core, now)
            .unwrap();
        let t = complete(&mut mem, id, now, 3000) - now;
        assert!(t <= 30, "prefetched line should hit in L2: {t}");
    }

    #[test]
    fn dirty_evictions_reach_dram() {
        // Write-allocate stores into many conflicting lines: dirty L1
        // victims must be absorbed by the L2 and, once the L2 set
        // overflows, produce DRAM writes.
        let mut mem = MemorySystem::new(MemoryConfig {
            prefetcher: None,
            l2: crate::cache::CacheConfig {
                size_bytes: 8 * 1024, // tiny L2 to force overflow
                ways: 2,
                line_bytes: 64,
            },
            ..MemoryConfig::default()
        });
        let mut now = 0;
        // 64 distinct lines mapping to few sets, all written.
        for i in 0..64u64 {
            let addr = 0x10000 + i * 4096;
            let id = mem.request(addr, true, ReqSource::Core, now).unwrap();
            now = complete(&mut mem, id, now, 3000) + 1;
        }
        // Drain the pipeline a bit so backlogged writebacks flush.
        for _ in 0..200 {
            mem.tick(now);
            now += 1;
        }
        let s = mem.stats();
        assert!(s.l1.writebacks > 0, "L1 must evict dirty lines");
        assert!(s.dram.writes > 0, "L2 overflow must write to DRAM");
    }

    #[test]
    fn tlb_miss_penalty_visible() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        // Two L1-resident accesses: first one pays the TLB walk, second
        // one (same page) does not.
        let id = mem.request(0x7000, false, ReqSource::Core, 0).unwrap();
        let t1 = complete(&mut mem, id, 0, 3000);
        let id = mem.request(0x7040, false, ReqSource::Core, t1).unwrap();
        let _ = complete(&mut mem, id, t1, 3000);
        // Now both lines resident + TLB warm: hit latency is exactly 3.
        let id = mem
            .request(0x7000, false, ReqSource::Core, 2 * t1 + 10)
            .unwrap();
        let t3 = complete(&mut mem, id, 2 * t1 + 10, 100) - (2 * t1 + 10);
        assert_eq!(t3, 3, "warm access pays pure L1 latency");
        let s = mem.stats();
        assert!(s.tlb.misses >= 1 && s.tlb.hits >= 2);
    }

    #[test]
    fn source_accounting() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        mem.request(0x0, false, ReqSource::Core, 0).unwrap();
        mem.request(0x40, false, ReqSource::Dce, 0).unwrap();
        let s = mem.stats();
        assert_eq!((s.core_requests, s.dce_requests), (1, 1));
    }
}
