//! The cycle-level out-of-order core.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use br_isa::{ExecRecord, Force, Machine, MachineCheckpoint, Program, Uop, UopKind, NUM_ARCH_REGS};
use br_mem::{Cache, CacheConfig, MemResp, MemorySystem, ReqId, ReqSource, RequestError};
use br_predictor::{ConditionalPredictor, Prediction, PredictorCheckpoint};
use br_telemetry::{CounterId, EventKind, HistId, Telemetry};

use crate::config::CoreConfig;
use crate::hooks::{
    BranchOutcome, CoreHooks, FetchedBranch, MispredictInfo, PredictionProvenance, RetiredUop,
    WrongPathUop,
};
use crate::ras::{Btb, ReturnAddressStack};
use crate::stats::CoreStats;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ExecState {
    /// In the reservation station, waiting for operands / a port.
    Waiting,
    /// Issued to a functional unit; completion scheduled.
    Issued,
    /// Waiting on the memory system.
    MemPending(ReqId),
    /// Result available.
    Done,
}

struct BranchCtl {
    prediction: Prediction,
    followed: bool,
    provenance: PredictionProvenance,
    machine_cp: MachineCheckpoint,
    predictor_cp: PredictorCheckpoint,
    writer_cp: [Option<u64>; NUM_ARCH_REGS],
    ras_cp: ReturnAddressStack,
    /// Conditional branch (true) vs indirect jump (false): decides how
    /// resolution and training treat the entry.
    conditional: bool,
    mispredicted: bool,
}

/// Inline producer-seq list. A uop reads at most three registers (a
/// store's base + index + value), so four slots always suffice and the
/// list never touches the heap.
#[derive(Clone, Copy, Debug, Default)]
struct Deps {
    seqs: [u64; 4],
    len: u8,
}

impl Deps {
    fn push(&mut self, seq: u64) {
        self.seqs[self.len as usize] = seq;
        self.len += 1;
    }

    fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.seqs[..self.len as usize].iter().copied()
    }
}

struct RobEntry {
    /// ROB position identity: contiguous within the ROB. Reused after
    /// squashes (`next_seq` rewinds on recovery).
    seq: u64,
    /// Never-reused identity, guarding against stale completion events
    /// addressed to a squashed uop whose `seq` was recycled.
    uid: u64,
    uop: Uop,
    rec: ExecRecord,
    fetch_cycle: u64,
    state: ExecState,
    completed_at: u64,
    deps: Deps,
    in_rs: bool,
    branch: Option<Box<BranchCtl>>,
}

impl RobEntry {
    fn wrong_path_summary(&self) -> WrongPathUop {
        WrongPathUop {
            pc: self.uop.pc,
            dsts: self.uop.dsts(),
            store_addr: self.rec.mem.filter(|m| m.is_store).map(|m| m.addr),
            branch: if self.uop.is_cond_branch() {
                self.rec.branch.map(|b| b.followed_taken)
            } else {
                None
            },
        }
    }
}

/// Summary of one core cycle, used by the composition layer to arbitrate
/// shared resources (D-cache ports) and detect completion.
#[derive(Clone, Copy, Debug)]
pub struct CycleReport {
    /// L1D ports the core left unused this cycle (available to the DCE —
    /// §4.2: "the main thread is given priority to the D-Cache ports").
    pub free_load_ports: usize,
    /// Issue slots the core left unused this cycle (the Core-Only DCE
    /// variant executes chains in these).
    pub free_issue_slots: usize,
    /// Uops retired this cycle.
    pub retired: usize,
    /// Whether the program has fully drained.
    pub done: bool,
}

/// Pre-registered telemetry ids for the core's instrumentation sites
/// (inert defaults when the sink is disabled).
#[derive(Clone, Copy, Debug, Default)]
struct CoreTeleIds {
    retired_uops: CounterId,
    retired_branches: CounterId,
    mispredicts: CounterId,
    recoveries: CounterId,
    squashed_uops: CounterId,
    squash_len: HistId,
}

impl CoreTeleIds {
    fn register(tele: &mut Telemetry) -> Self {
        CoreTeleIds {
            retired_uops: tele.counter("core.retired_uops"),
            retired_branches: tele.counter("core.retired_branches"),
            mispredicts: tele.counter("core.mispredicts"),
            recoveries: tele.counter("core.recoveries"),
            squashed_uops: tele.counter("core.squashed_uops"),
            squash_len: tele.histogram("core.squash_len"),
        }
    }
}

/// The out-of-order core. Construct with [`Core::new`], then call
/// [`Core::tick`] once per cycle, passing the shared memory system's
/// responses for this cycle.
pub struct Core {
    cfg: CoreConfig,
    program: Arc<Program>,
    machine: Machine,
    predictor: Box<dyn ConditionalPredictor>,
    rob: VecDeque<RobEntry>,
    rs_used: usize,
    last_writer: [Option<u64>; NUM_ARCH_REGS],
    next_seq: u64,
    next_uid: u64,
    cycle: u64,
    fetch_stall_until: u64,
    /// In-flight core loads, keyed by memory-request id. Bounded by the
    /// MSHR count, so a linear-scan list beats hashing.
    pending_mem: Vec<(ReqId, u64, u64)>,
    completions: BinaryHeap<Reverse<(u64, u64, u64)>>,
    /// Scratch for `recover`'s wrong-path summary (reused across squashes).
    wrong_path_scratch: Vec<WrongPathUop>,
    /// Recycled branch-control boxes: checkpoint buffers (predictor
    /// history, RAS) are reused instead of reallocated per fetched branch.
    /// The boxes are deliberate — ROB entries store `Option<Box<BranchCtl>>`
    /// to stay small, and pooling the box itself is what avoids the
    /// per-branch heap round trip.
    #[allow(clippy::vec_box)]
    ctl_pool: Vec<Box<BranchCtl>>,
    icache: Option<Cache>,
    ras: ReturnAddressStack,
    btb: Btb,
    stats: CoreStats,
    max_retired: u64,
    tele: Telemetry,
    tids: CoreTeleIds,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("cycle", &self.cycle)
            .field("rob", &self.rob.len())
            .field("retired", &self.stats.retired_uops)
            .finish()
    }
}

impl Core {
    /// Creates a core executing `program` on `machine` with the given
    /// baseline predictor. The program is taken as (anything convertible
    /// to) an [`Arc`] so a shared workload image need not be copied per
    /// core instance.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    #[must_use]
    pub fn new(
        cfg: CoreConfig,
        program: impl Into<Arc<Program>>,
        machine: Machine,
        predictor: Box<dyn ConditionalPredictor>,
    ) -> Self {
        let program = program.into();
        cfg.validate();
        let icache = (cfg.icache_bytes > 0).then(|| {
            Cache::new(CacheConfig {
                size_bytes: cfg.icache_bytes,
                ways: cfg.icache_ways,
                line_bytes: 64,
            })
        });
        Core {
            icache,
            ras: ReturnAddressStack::new(16),
            btb: Btb::new(),
            cfg,
            program,
            machine,
            predictor,
            rob: VecDeque::new(),
            rs_used: 0,
            last_writer: [None; NUM_ARCH_REGS],
            next_seq: 0,
            next_uid: 0,
            cycle: 0,
            fetch_stall_until: 0,
            pending_mem: Vec::new(),
            completions: BinaryHeap::new(),
            wrong_path_scratch: Vec::new(),
            ctl_pool: Vec::new(),
            stats: CoreStats::default(),
            max_retired: u64::MAX,
            tele: Telemetry::off(),
            tids: CoreTeleIds::default(),
        }
    }

    /// Attaches a telemetry sink; the core registers its metrics against
    /// it and records into it until [`Core::take_telemetry`].
    pub fn attach_telemetry(&mut self, mut tele: Telemetry) {
        self.tids = CoreTeleIds::register(&mut tele);
        self.tele = tele;
    }

    /// Detaches and returns the telemetry sink (a disabled sink remains).
    pub fn take_telemetry(&mut self) -> Telemetry {
        std::mem::take(&mut self.tele)
    }

    /// Caps the simulation at `n` retired uops ([`Core::tick`] reports
    /// `done` once reached).
    pub fn set_max_retired(&mut self, n: u64) {
        self.max_retired = n;
    }

    /// The functional emulator (registers + data memory), positioned at the
    /// current *speculative* fetch point.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether the program has halted and the pipeline drained.
    #[must_use]
    pub fn is_done(&self) -> bool {
        (self.machine.halted() && self.rob.is_empty())
            || self.stats.retired_uops >= self.max_retired
    }

    fn idx_of(&self, seq: u64) -> Option<usize> {
        let head = self.rob.front()?.seq;
        if seq < head {
            return None;
        }
        let idx = (seq - head) as usize;
        (idx < self.rob.len()).then_some(idx)
    }

    fn dep_ready(&self, dep: u64, now: u64) -> bool {
        match self.idx_of(dep) {
            None => true, // retired (or squashed, which implies retired-or-gone)
            Some(i) => {
                let e = &self.rob[i];
                e.state == ExecState::Done && e.completed_at <= now
            }
        }
    }

    /// Advances the core one cycle. `responses` are this cycle's memory
    /// completions (the composition layer ticks the shared memory system
    /// and fans responses out to core and DCE).
    pub fn tick(
        &mut self,
        responses: &[MemResp],
        mem: &mut MemorySystem,
        hooks: &mut dyn CoreHooks,
    ) -> CycleReport {
        let now = self.cycle;

        self.complete_phase(responses, now, hooks);
        let retired = self.retire_phase(now, mem, hooks);
        let (loads_issued, total_issued) = self.issue_phase(now, mem);
        self.fetch_phase(now, hooks);

        self.cycle += 1;
        self.stats.cycles += 1;
        CycleReport {
            free_load_ports: self.cfg.load_ports.saturating_sub(loads_issued),
            free_issue_slots: self.cfg.issue_width.saturating_sub(total_issued),
            retired,
            done: self.is_done(),
        }
    }

    // ---------------------------------------------------------- complete

    fn complete_phase(&mut self, responses: &[MemResp], now: u64, hooks: &mut dyn CoreHooks) {
        // Memory completions.
        for r in responses {
            if let Some(p) = self.pending_mem.iter().position(|&(id, _, _)| id == r.id) {
                let (_, seq, uid) = self.pending_mem.swap_remove(p);
                if let Some(i) = self.idx_of(seq) {
                    let e = &mut self.rob[i];
                    if e.uid == uid && e.state == ExecState::MemPending(r.id) {
                        e.state = ExecState::Done;
                        e.completed_at = now;
                    }
                }
            }
        }
        // Functional-unit completions (heap ordered by cycle then seq, so
        // the oldest mispredicting branch recovers first).
        while let Some(Reverse((c, _, _))) = self.completions.peek() {
            if *c > now {
                break;
            }
            let Reverse((_, seq, uid)) = self.completions.pop().expect("peeked");
            let Some(i) = self.idx_of(seq) else {
                continue; // squashed
            };
            if self.rob[i].uid != uid || self.rob[i].state != ExecState::Issued {
                continue;
            }
            self.rob[i].state = ExecState::Done;
            self.rob[i].completed_at = now;
            // Branch resolution: any control uop whose followed next-PC
            // differs from its actual next-PC mispredicted (wrong
            // direction for conditionals, wrong target for indirects).
            let mispredict = {
                let e = &self.rob[i];
                match (&e.branch, e.rec.branch) {
                    (Some(_), Some(b)) => e.rec.next_pc != b.actual_next,
                    _ => false,
                }
            };
            if mispredict {
                self.recover(i, now, hooks);
            }
        }
    }

    fn recover(&mut self, idx: usize, now: u64, hooks: &mut dyn CoreHooks) {
        self.stats.recoveries += 1;
        let mut wrong_path = std::mem::take(&mut self.wrong_path_scratch);
        wrong_path.clear();
        wrong_path.extend(
            self.rob
                .iter()
                .skip(idx + 1)
                .map(RobEntry::wrong_path_summary),
        );
        self.stats.squashed_uops += wrong_path.len() as u64;

        // Release resources held by squashed entries and recycle their
        // branch-control boxes.
        for mut e in self.rob.drain(idx + 1..) {
            if e.in_rs {
                self.rs_used -= 1;
            }
            if let ExecState::MemPending(id) = e.state {
                if let Some(p) = self.pending_mem.iter().position(|&(pid, _, _)| pid == id) {
                    self.pending_mem.swap_remove(p);
                }
            }
            if let Some(ctl) = e.branch.take() {
                self.ctl_pool.push(ctl);
            }
        }
        // Sequence numbers are ROB positions: rewind so they stay
        // contiguous (uids preserve global uniqueness).
        self.next_seq = self
            .rob
            .back()
            .map(|e| e.seq + 1)
            .expect("branch entry present");

        let e = self.rob.back_mut().expect("branch entry present");
        let bx = e.rec.branch.expect("control uop has a branch record");
        let (actual, actual_next) = (bx.actual_taken, bx.actual_next);
        let conditional = e.branch.as_ref().is_some_and(|c| c.conditional);
        let ctl = e.branch.as_mut().expect("recover only on branches");
        ctl.mispredicted = true;
        let info = MispredictInfo {
            seq: e.seq,
            pc: e.uop.pc,
            actual_taken: actual,
            followed: ctl.followed,
            base_prediction: ctl.prediction.taken,
            provenance: ctl.provenance,
            conditional,
            cycle: now,
        };

        // Rewind the emulator to just before the branch and re-execute it
        // down the correct path.
        self.machine.restore(&ctl.machine_cp);
        self.predictor.restore(&ctl.predictor_cp);
        self.ras.restore(&ctl.ras_cp);
        self.last_writer = ctl.writer_cp;
        let pc = e.uop.pc;
        let force = if conditional {
            Force::Direction(actual)
        } else {
            Force::Target(actual_next)
        };
        let rec = self
            .machine
            .step(&self.program, force)
            .expect("re-execution of a fetched branch cannot fault");
        debug_assert_eq!(rec.pc, pc);
        e.rec = rec;
        // The control uop's own register effects re-apply via the re-step
        // (calls rewrite their link register identically); `writer_cp`
        // stays correct because re-execution reproduces the same writes.
        if conditional {
            self.predictor.update_history(pc, actual);
        } else {
            // A corrected return/indirect jump also repairs the RAS view:
            // model the repair by pushing nothing (the restore above
            // already resynchronized it) and updating the BTB.
            self.btb.update(pc, actual_next);
        }

        self.fetch_stall_until = now + self.cfg.redirect_latency;
        self.tele.add(self.tids.recoveries, 1);
        self.tele
            .add(self.tids.squashed_uops, wrong_path.len() as u64);
        self.tele
            .record(self.tids.squash_len, wrong_path.len() as u64);
        self.tele
            .event(now, EventKind::Recovery, info.pc, wrong_path.len() as u64);
        hooks.on_mispredict(&info, &wrong_path, self.machine.cpu());
        self.wrong_path_scratch = wrong_path;
    }

    // ------------------------------------------------------------ retire

    fn retire_phase(
        &mut self,
        now: u64,
        mem: &mut MemorySystem,
        hooks: &mut dyn CoreHooks,
    ) -> usize {
        let mut retired = 0;
        while retired < self.cfg.retire_width {
            let Some(e) = self.rob.front() else { break };
            if e.state != ExecState::Done || e.completed_at >= now {
                break;
            }
            let mut e = self.rob.pop_front().expect("checked front");
            retired += 1;
            self.stats.retired_uops += 1;
            self.tele.add(self.tids.retired_uops, 1);

            // Architectural-equivalence fingerprint: fold only content
            // that is independent of prediction and timing. `next_pc`
            // and `followed_taken` reflect fetch steering, so they are
            // deliberately excluded.
            self.stats.fold_retirement(e.rec.pc);
            self.stats.fold_retirement(u64::from(e.rec.halt));
            if let Some((r, v)) = e.rec.dst {
                self.stats.fold_retirement(r.index() as u64);
                self.stats.fold_retirement(v);
            }
            if let Some(m) = e.rec.mem {
                self.stats.fold_retirement(m.addr);
                self.stats.fold_retirement(m.value);
                self.stats.fold_retirement(u64::from(m.is_store));
            }
            if let Some(b) = e.rec.branch {
                self.stats.fold_retirement(u64::from(b.actual_taken));
                self.stats.fold_retirement(b.actual_next);
            }

            // Clear the writer map if this uop is still recorded (its
            // consumers see "ready" via idx_of == None).
            for r in e.uop.dsts().iter() {
                if self.last_writer[r.index()] == Some(e.seq) {
                    self.last_writer[r.index()] = None;
                }
            }

            // Stores update cache timing state at retirement.
            if let Some(m) = e.rec.mem.filter(|m| m.is_store) {
                // Value correctness is handled functionally; if the MSHRs
                // are busy we skip only the *timing* side effect.
                let _ = mem.request(m.addr, true, ReqSource::Core, now);
            }

            let retired_uop = RetiredUop {
                seq: e.seq,
                uop: e.uop,
                rec: e.rec,
                cycle: now,
            };
            hooks.on_retire(&retired_uop);

            if let Some(ctl) = e.branch.take() {
                let actual = e.rec.branch.expect("branch record present").actual_taken;
                self.machine.release(&ctl.machine_cp);
                if ctl.conditional {
                    self.stats.retired_branches += 1;
                    self.tele.add(self.tids.retired_branches, 1);
                    if ctl.mispredicted {
                        self.stats.mispredicts += 1;
                        self.tele.add(self.tids.mispredicts, 1);
                    }
                    let site = self.stats.branch_sites.entry(e.uop.pc).or_default();
                    site.executed += 1;
                    if ctl.mispredicted {
                        site.mispredicted += 1;
                    }
                    if ctl.prediction.taken != actual {
                        site.base_wrong += 1;
                    }
                    if ctl.provenance == PredictionProvenance::Dce {
                        site.dce_provided += 1;
                        if ctl.mispredicted {
                            site.dce_wrong += 1;
                        }
                    }
                    self.predictor.train(e.uop.pc, actual, &ctl.prediction);
                    hooks.on_branch_retire(&BranchOutcome {
                        seq: e.seq,
                        pc: e.uop.pc,
                        taken: actual,
                        mispredicted: ctl.mispredicted,
                        base_prediction: ctl.prediction.taken,
                        provenance: ctl.provenance,
                        cycle: now,
                    });
                } else {
                    self.stats.indirect_jumps += 1;
                    if ctl.mispredicted {
                        self.stats.indirect_mispredicts += 1;
                    }
                }
                self.ctl_pool.push(ctl);
            }
            if self.stats.retired_uops >= self.max_retired {
                break;
            }
        }
        retired
    }

    // ------------------------------------------------------------- issue

    fn issue_phase(&mut self, now: u64, mem: &mut MemorySystem) -> (usize, usize) {
        let mut issued = 0;
        let mut alu_issued = 0;
        let mut loads_issued = 0;
        let head_seq = self.rob.front().map_or(0, |e| e.seq);

        for i in 0..self.rob.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            let e = &self.rob[i];
            if e.state != ExecState::Waiting {
                continue;
            }
            if e.fetch_cycle + self.cfg.frontend_depth > now {
                // Younger entries were fetched even later.
                break;
            }
            let deps_ready = e.deps.iter().all(|d| self.dep_ready(d, now));
            if !deps_ready {
                continue;
            }

            if e.uop.is_load() {
                if loads_issued >= self.cfg.load_ports {
                    continue;
                }
                let m = e.rec.mem.expect("loads carry a memory record");
                // Store-to-load forwarding: find the youngest older store
                // overlapping this load's bytes.
                let mut forward: Option<bool> = None; // Some(done?) if match
                for j in (0..i).rev() {
                    let s = &self.rob[j];
                    if let Some(sm) = s.rec.mem.filter(|mm| mm.is_store) {
                        let overlap = sm.addr < m.addr + m.width.bytes()
                            && m.addr < sm.addr + sm.width.bytes();
                        if overlap {
                            forward = Some(s.state == ExecState::Done);
                            break;
                        }
                    }
                }
                let seq = e.seq;
                let uid = e.uid;
                match forward {
                    Some(true) => {
                        // Forwarded from the store buffer.
                        let lat = self.cfg.forward_latency;
                        let e = &mut self.rob[i];
                        e.state = ExecState::Issued;
                        e.in_rs = false;
                        self.rs_used -= 1;
                        self.completions.push(Reverse((now + lat, seq, uid)));
                        issued += 1;
                        loads_issued += 1;
                        self.stats.issued_uops += 1;
                        self.stats.issued_loads += 1;
                    }
                    Some(false) => {
                        // Producing store not executed yet: stall.
                        continue;
                    }
                    None => match mem.request(m.addr, false, ReqSource::Core, now) {
                        Ok(id) => {
                            let e = &mut self.rob[i];
                            e.state = ExecState::MemPending(id);
                            e.in_rs = false;
                            self.rs_used -= 1;
                            self.pending_mem.push((id, seq, uid));
                            issued += 1;
                            loads_issued += 1;
                            self.stats.issued_uops += 1;
                            self.stats.issued_loads += 1;
                        }
                        Err(RequestError::MshrFull) => continue,
                    },
                }
            } else {
                if alu_issued >= self.cfg.num_alus {
                    continue;
                }
                let lat = u64::from(e.uop.compute_latency());
                let seq = e.seq;
                let uid = e.uid;
                let e = &mut self.rob[i];
                e.state = ExecState::Issued;
                e.in_rs = false;
                self.rs_used -= 1;
                self.completions.push(Reverse((now + lat, seq, uid)));
                issued += 1;
                alu_issued += 1;
                self.stats.issued_uops += 1;
            }
        }
        let _ = head_seq;
        (loads_issued, issued)
    }

    // ------------------------------------------------------------- fetch

    /// A branch-control block capturing the current speculative state
    /// (machine, predictor, writer map, RAS). Recycled from the pool when
    /// possible so the checkpoint buffers' heap allocations are reused.
    fn make_branch_ctl(
        &mut self,
        prediction: Prediction,
        followed: bool,
        provenance: PredictionProvenance,
        conditional: bool,
    ) -> Box<BranchCtl> {
        match self.ctl_pool.pop() {
            Some(mut ctl) => {
                ctl.machine_cp = self.machine.checkpoint();
                self.predictor.checkpoint_into(&mut ctl.predictor_cp);
                ctl.writer_cp = self.last_writer;
                self.ras.checkpoint_into(&mut ctl.ras_cp);
                ctl.prediction = prediction;
                ctl.followed = followed;
                ctl.provenance = provenance;
                ctl.conditional = conditional;
                ctl.mispredicted = false;
                ctl
            }
            None => Box::new(BranchCtl {
                machine_cp: self.machine.checkpoint(),
                predictor_cp: self.predictor.checkpoint(),
                writer_cp: self.last_writer,
                ras_cp: self.ras.checkpoint(),
                prediction,
                followed,
                provenance,
                conditional,
                mispredicted: false,
            }),
        }
    }

    fn has_unresolved_branch(&self) -> bool {
        self.rob
            .iter()
            .any(|e| e.branch.is_some() && e.state != ExecState::Done)
    }

    fn fetch_phase(&mut self, now: u64, hooks: &mut dyn CoreHooks) {
        if now < self.fetch_stall_until {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_entries || self.rs_used >= self.cfg.rs_entries {
                break;
            }
            if self.machine.halted() {
                // End of the (possibly wrong-path) instruction stream.
                break;
            }
            let pc = self.machine.pc();
            // Instruction-cache lookup (uops are 4 bytes apart).
            if let Some(ic) = &mut self.icache {
                let iaddr = pc * 4;
                if !ic.access(iaddr, false).hit {
                    ic.fill(iaddr, false);
                    self.stats.icache_misses += 1;
                    self.fetch_stall_until = now + self.cfg.icache_miss_latency;
                    break;
                }
            }
            let Some(uop) = self.program.fetch(pc).copied() else {
                assert!(
                    self.has_unresolved_branch(),
                    "fetch fell off the program at pc {pc:#x} on the correct path \
                     (programs must end in halt)"
                );
                break; // wrong path ran off the program: stall until recovery
            };

            let seq = self.next_seq;
            let mut branch_ctl = None;
            let rec = if uop.is_cond_branch() {
                let prediction = self.predictor.predict(pc);
                let override_dir = hooks.override_prediction(pc, prediction.taken, now);
                let followed = override_dir.unwrap_or(prediction.taken);
                let provenance = if override_dir.is_some() {
                    PredictionProvenance::Dce
                } else {
                    PredictionProvenance::BasePredictor
                };
                let base_prediction = prediction.taken;
                branch_ctl = Some(self.make_branch_ctl(prediction, followed, provenance, true));
                let rec = self
                    .machine
                    .step(&self.program, Force::Direction(followed))
                    .expect("fetchable uop cannot fault");
                self.predictor.update_history(pc, followed);
                hooks.on_branch_fetch(&FetchedBranch {
                    seq,
                    pc,
                    followed,
                    base_prediction,
                    provenance,
                    cycle: now,
                });
                rec
            } else if uop.is_indirect() {
                // Returns predict via the RAS; other indirect jumps via
                // the BTB. Either way fetch *commits* to the predicted
                // target and recovers like a branch if it was wrong.
                let predicted = match uop.kind {
                    UopKind::JumpInd {
                        is_return: true, ..
                    } => self.ras.pop(),
                    _ => self.btb.predict(pc),
                };
                branch_ctl = Some(self.make_branch_ctl(
                    Prediction::fixed(true),
                    true,
                    PredictionProvenance::BasePredictor,
                    false,
                ));
                let rec = self
                    .machine
                    .step(&self.program, Force::Target(predicted))
                    .expect("fetchable uop cannot fault");
                // Give external machinery a recovery point for this seq
                // (prediction queues rewind on *any* flush).
                hooks.on_branch_fetch(&FetchedBranch {
                    seq,
                    pc,
                    followed: true,
                    base_prediction: true,
                    provenance: PredictionProvenance::BasePredictor,
                    cycle: now,
                });
                rec
            } else {
                let rec = self
                    .machine
                    .step(&self.program, Force::None)
                    .expect("fetchable uop cannot fault");
                if let UopKind::Call { .. } = uop.kind {
                    self.ras.push(pc + 1);
                }
                rec
            };

            let mut deps = Deps::default();
            for r in uop.srcs().iter() {
                if let Some(s) = self.last_writer[r.index()] {
                    deps.push(s);
                }
            }
            for r in uop.dsts().iter() {
                self.last_writer[r.index()] = Some(seq);
            }

            let taken_control = rec.branch.is_some_and(|b| b.followed_taken);
            let was_halt = rec.halt;
            let uid = self.next_uid;
            self.next_uid += 1;
            self.rob.push_back(RobEntry {
                seq,
                uid,
                uop,
                rec,
                fetch_cycle: now,
                state: ExecState::Waiting,
                completed_at: 0,
                deps,
                in_rs: true,
                branch: branch_ctl,
            });
            self.next_seq += 1;
            self.rs_used += 1;
            self.stats.fetched_uops += 1;
            if uop.is_cond_branch() {
                self.stats.fetched_branches += 1;
            }

            if taken_control || was_halt {
                break; // fetch break on taken branch / end of stream
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NullHooks;
    use br_isa::{reg, Cond, MemOperand, MemoryImage, ProgramBuilder};
    use br_mem::MemoryConfig;
    use br_predictor::Bimodal;

    fn run_core(program: Program, image: MemoryImage, max_cycles: u64) -> (Core, MemorySystem) {
        let machine = Machine::new(image.into_memory());
        let mut core = Core::new(
            CoreConfig::default(),
            program,
            machine,
            Box::new(Bimodal::new(12)),
        );
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut hooks = NullHooks;
        for c in 0..max_cycles {
            let resps = mem.tick(c);
            let report = core.tick(&resps, &mut mem, &mut hooks);
            if report.done {
                return (core, mem);
            }
        }
        panic!(
            "core did not finish in {max_cycles} cycles (retired {})",
            core.stats().retired_uops
        );
    }

    #[test]
    fn straight_line_program_retires_everything() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(reg::R0, 5);
        b.addi(reg::R1, reg::R0, 10);
        b.mul(reg::R2, reg::R1, 3i64);
        b.halt();
        let (core, _) = run_core(b.build().unwrap(), MemoryImage::new(), 1000);
        assert_eq!(core.stats().retired_uops, 4);
        assert_eq!(core.machine().reg(reg::R2), 45);
        assert_eq!(core.stats().mispredicts, 0);
    }

    #[test]
    fn counted_loop_architectural_state_correct() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(reg::R0, 50);
        let top = b.here();
        b.addi(reg::R1, reg::R1, 7);
        b.subi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, 0);
        b.br(Cond::Ne, top);
        b.halt();
        let (core, _) = run_core(b.build().unwrap(), MemoryImage::new(), 20_000);
        assert_eq!(core.machine().reg(reg::R1), 350);
        assert_eq!(core.stats().retired_branches, 50);
        // The final iteration's not-taken exit is mispredictable, but the
        // body iterations should quickly become correct.
        assert!(core.stats().mispredicts <= 6);
    }

    #[test]
    fn misprediction_recovery_preserves_correctness() {
        // A data-dependent branch pattern a bimodal predictor gets wrong
        // half the time; verify the architectural result is still exact.
        let mut img = MemoryImage::new();
        let vals: Vec<u64> = (0..64).map(|i| (i * 2654435761u64) >> 7 & 1).collect();
        img.write_u64_slice(0x1000, &vals);
        let expected: u64 = vals.iter().sum();

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0); // i
        b.mov_imm(reg::R2, 0); // acc
        let top = b.here();
        b.mov_imm(reg::R3, 0x1000);
        b.load(reg::R4, MemOperand::base_index(reg::R3, reg::R0, 8, 0));
        b.cmpi(reg::R4, 1);
        b.br(Cond::Ne, skip);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, 64);
        b.br(Cond::Ne, top);
        b.halt();
        let (core, _) = run_core(b.build().unwrap(), img, 200_000);
        assert_eq!(core.machine().reg(reg::R2), expected);
        assert!(
            core.stats().mispredicts > 5,
            "the data-dependent branch should mispredict: {}",
            core.stats().mispredicts
        );
        assert!(core.stats().squashed_uops > 0);
        assert!(
            core.stats().fetched_uops > core.stats().retired_uops,
            "wrong-path fetch must be visible"
        );
    }

    #[test]
    fn store_load_forwarding_value_and_timing() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(reg::R0, 0x2000);
        b.mov_imm(reg::R1, 99);
        b.store(MemOperand::base_disp(reg::R0, 0), reg::R1);
        b.load(reg::R2, MemOperand::base_disp(reg::R0, 0));
        b.addi(reg::R3, reg::R2, 1);
        b.halt();
        let (core, _) = run_core(b.build().unwrap(), MemoryImage::new(), 1000);
        assert_eq!(core.machine().reg(reg::R3), 100);
        // Forwarded loads never touch the memory system; core demand
        // requests = the store's retirement write only.
        assert!(core.cycle() < 60, "forwarding should avoid DRAM latency");
    }

    #[test]
    fn ipc_bounded_by_issue_width() {
        // A warm loop of independent adds (straight-line code this long
        // would be dominated by cold I-cache misses instead).
        let mut b = ProgramBuilder::new();
        let acc = [reg::R1, reg::R2, reg::R3, reg::R4];
        b.mov_imm(reg::R0, 200);
        let top = b.here();
        for i in 0..24 {
            let r = acc[i % 4];
            b.addi(r, r, 1);
        }
        b.subi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, 0);
        b.br(Cond::Ne, top);
        b.halt();
        let (core, _) = run_core(b.build().unwrap(), MemoryImage::new(), 100_000);
        let ipc = core.stats().ipc();
        assert!(ipc <= 4.0 + 1e-9);
        assert!(ipc > 2.0, "independent adds should sustain ILP: {ipc}");
    }

    #[test]
    fn cold_icache_limits_straight_line_fetch() {
        // 2000 uops of straight-line code = ~125 cold I-cache lines; the
        // front end must pay those misses.
        let mut b = ProgramBuilder::new();
        for _ in 0..2000 {
            b.addi(reg::R1, reg::R1, 1);
        }
        b.halt();
        let (core, _) = run_core(b.build().unwrap(), MemoryImage::new(), 100_000);
        assert!(
            core.stats().icache_misses >= 100,
            "cold code should miss: {}",
            core.stats().icache_misses
        );
    }

    #[test]
    fn dependent_chain_serializes() {
        // A strict dependence chain of multiplies: IPC ~ 1/3 (3-cycle mul).
        let mut b = ProgramBuilder::new();
        b.mov_imm(reg::R1, 1);
        for _ in 0..500 {
            b.mul(reg::R1, reg::R1, 1i64);
        }
        b.halt();
        let (core, _) = run_core(b.build().unwrap(), MemoryImage::new(), 100_000);
        let ipc = core.stats().ipc();
        assert!(ipc < 0.6, "dependent muls must serialize: {ipc}");
    }

    #[test]
    fn cold_load_stalls_pipeline() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(reg::R0, 0x80000);
        b.load(reg::R1, MemOperand::base_disp(reg::R0, 0));
        b.addi(reg::R2, reg::R1, 1);
        b.halt();
        let (core, _) = run_core(b.build().unwrap(), MemoryImage::new(), 5000);
        assert!(
            core.cycle() > 80,
            "cold miss should pay DRAM latency: {}",
            core.cycle()
        );
    }

    #[test]
    fn wrong_path_off_program_end_recovers() {
        // A branch whose wrong path falls off the program: fetch must
        // stall, then recover when the branch resolves.
        let mut img = MemoryImage::new();
        img.write(0x1000, br_isa::Width::B8, 1);
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        b.mov_imm(reg::R0, 0x1000);
        b.load(reg::R1, MemOperand::base_disp(reg::R0, 0));
        b.cmpi(reg::R1, 0);
        b.br(Cond::Eq, end); // actually not-taken; predict could go either way
        b.addi(reg::R2, reg::R2, 5);
        b.bind(end);
        b.halt();
        let (core, _) = run_core(b.build().unwrap(), img, 5000);
        assert_eq!(core.machine().reg(reg::R2), 5);
    }

    /// Regression: sequence numbers are ROB positions and must stay
    /// contiguous across squashes (`next_seq` rewinds on recovery). The
    /// original bug desynchronized dependency lookups after the first
    /// recovery and froze the pipeline within a few hundred uops.
    #[test]
    fn sustained_mispredict_storm_makes_progress() {
        let mut img = MemoryImage::new();
        let vals: Vec<u64> = (0..256)
            .map(|i: u64| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 61) & 1)
            .collect();
        img.write_u64_slice(0x4000, &vals);
        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R3, 0x4000);
        let top = b.here();
        b.and(reg::R5, reg::R0, 255i64);
        b.load(reg::R6, MemOperand::base_index(reg::R3, reg::R5, 8, 0));
        b.cmpi(reg::R6, 0);
        b.br(Cond::Eq, skip); // ~50/50 data-dependent
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, 4000);
        b.br(Cond::Ne, top);
        b.halt();
        let (core, _) = run_core(b.build().unwrap(), img, 400_000);
        assert!(core.stats().recoveries > 200, "storm must actually storm");
        // run_core only returns when the program drained: reaching here at
        // all is the regression check. Sanity-check the volume too.
        assert!(
            core.stats().retired_uops > 25_000,
            "suspiciously few uops: {}",
            core.stats().retired_uops
        );
    }

    #[test]
    fn call_return_with_ras_prediction() {
        // main: loop { r2 += f(r1) } with f a real called function. After
        // warmup every return target is RAS-predicted correctly.
        let mut b = ProgramBuilder::new();
        let func = b.new_label();
        let start = b.new_label();
        b.jmp(start);
        b.bind(func); // f: r4 = r1 * 3; ret
        b.mul(reg::R4, reg::R1, 3i64);
        b.ret(reg::R15);
        b.bind(start);
        b.mov_imm(reg::R0, 100);
        b.mov_imm(reg::R1, 2);
        let top = b.here();
        b.call(func, reg::R15);
        b.add(reg::R2, reg::R2, reg::R4);
        b.subi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, 0);
        b.br(Cond::Ne, top);
        b.halt();
        let (core, _) = run_core(b.build().unwrap(), MemoryImage::new(), 50_000);
        assert_eq!(core.machine().reg(reg::R2), 600);
        let s = core.stats();
        assert_eq!(s.indirect_jumps, 100);
        assert!(
            s.indirect_mispredicts <= 2,
            "RAS should predict returns: {} wrong",
            s.indirect_mispredicts
        );
    }

    #[test]
    fn indirect_jump_btb_learns_stable_target() {
        // A computed goto that always lands on the same block: the first
        // encounter mispredicts (cold BTB), later ones hit.
        let mut b = ProgramBuilder::new();
        let blk = b.new_label();
        b.mov_imm(reg::R0, 50); // pc 0
        let top = b.here();
        b.mov_imm(reg::R7, 4); // pc 1: target = the block at pc 4
        b.jmp_reg(reg::R7); // pc 2
        b.nop(); // pc 3: skipped
        b.bind(blk); // pc 4
        b.addi(reg::R2, reg::R2, 1);
        b.subi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, 0);
        b.br(Cond::Ne, top);
        b.halt();
        let program = b.build().unwrap();
        // Verify the jump target constant matches the bound label.
        let (core, _) = run_core(program, MemoryImage::new(), 50_000);
        assert_eq!(core.machine().reg(reg::R2), 50);
        let s = core.stats();
        assert_eq!(s.indirect_jumps, 50);
        assert!(
            s.indirect_mispredicts <= 2,
            "BTB should learn the stable target: {}",
            s.indirect_mispredicts
        );
    }

    #[test]
    fn wrong_path_through_call_recovers() {
        // A mispredicted branch whose wrong path executes a call (pushing
        // a bogus RAS entry and clobbering the link register): recovery
        // must restore both.
        let mut img = MemoryImage::new();
        img.write(0x1000, br_isa::Width::B8, 1);
        let mut b = ProgramBuilder::new();
        let func = b.new_label();
        let start = b.new_label();
        b.jmp(start);
        b.bind(func);
        b.addi(reg::R4, reg::R4, 7);
        b.ret(reg::R15);
        b.bind(start);
        b.mov_imm(reg::R0, 40);
        b.mov_imm(reg::R3, 0x1000);
        let top = b.here();
        let skip = b.new_label();
        b.and(reg::R5, reg::R0, 7i64);
        b.load(reg::R6, MemOperand::base_index(reg::R3, reg::R5, 8, 0));
        b.cmpi(reg::R6, 1);
        b.br(Cond::Ne, skip); // data-dependent; wrong path may call
        b.call(func, reg::R15);
        b.bind(skip);
        b.subi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, 0);
        b.br(Cond::Ne, top);
        b.halt();
        let (core, _) = run_core(b.build().unwrap(), img, 100_000);
        // Functional truth: branch taken (call skipped) unless (r0 & 7)==0
        // AND mem[0x1000]==1 -> call executes for r0 in {40,32,24,16,8}.
        assert_eq!(core.machine().reg(reg::R4), 5 * 7);
    }

    #[test]
    fn max_retired_caps_run() {
        let mut b = ProgramBuilder::new();
        let top = b.here();
        b.addi(reg::R0, reg::R0, 1);
        b.jmp(top);
        let program = b.build().unwrap();
        let machine = Machine::new(MemoryImage::new().into_memory());
        let mut core = Core::new(
            CoreConfig::default(),
            program,
            machine,
            Box::new(Bimodal::new(10)),
        );
        core.set_max_retired(100);
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut hooks = NullHooks;
        for c in 0..100_000 {
            let resps = mem.tick(c);
            if core.tick(&resps, &mut mem, &mut hooks).done {
                break;
            }
        }
        assert!(core.stats().retired_uops >= 100);
        assert!(core.stats().retired_uops < 120);
    }
}
