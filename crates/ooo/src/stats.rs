//! Core-side statistics: IPC, MPKI, per-branch-site accounting.

use std::collections::HashMap;

use br_isa::Pc;

/// Per static-branch-site counters (drives Figure 1's "32 most
/// hard-to-predict branches" selection).
#[derive(Clone, Copy, Debug, Default)]
pub struct BranchSiteStats {
    /// Dynamic executions retired.
    pub executed: u64,
    /// Retired with a wrong fetch-time direction.
    pub mispredicted: u64,
    /// Retired where the *baseline predictor's* direction was wrong
    /// (regardless of what was followed).
    pub base_wrong: u64,
    /// Retired with the direction supplied by the DCE.
    pub dce_provided: u64,
    /// Retired mispredicted with a DCE-supplied direction (chain
    /// divergence events).
    pub dce_wrong: u64,
}

impl BranchSiteStats {
    /// Misprediction rate of the followed direction.
    #[must_use]
    pub fn misp_rate(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.mispredicted as f64 / self.executed as f64
        }
    }
}

/// Aggregate core statistics.
#[derive(Clone, Debug)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Uops fetched (including wrong path).
    pub fetched_uops: u64,
    /// Conditional branches fetched (including wrong path) — every one is
    /// a predictor lookup.
    pub fetched_branches: u64,
    /// Uops issued to functional units (including wrong path).
    pub issued_uops: u64,
    /// Load uops issued to the memory system (including wrong path).
    pub issued_loads: u64,
    /// Uops retired (correct path only).
    pub retired_uops: u64,
    /// Conditional branches retired.
    pub retired_branches: u64,
    /// Retired conditional branches whose fetch direction was wrong.
    pub mispredicts: u64,
    /// Recoveries performed (includes recoveries later squashed).
    pub recoveries: u64,
    /// Instruction-cache misses (fetch stalls).
    pub icache_misses: u64,
    /// Indirect jumps (incl. returns) retired.
    pub indirect_jumps: u64,
    /// Indirect jumps whose predicted target was wrong.
    pub indirect_mispredicts: u64,
    /// Wrong-path uops squashed across all recoveries.
    pub squashed_uops: u64,
    /// FNV-1a fold over the architectural content of every retired uop:
    /// PC, destination write (register + value), memory access (address,
    /// value, store bit), actual branch resolution, and the halt bit.
    /// Deliberately excludes anything prediction- or timing-dependent
    /// (followed direction, fetch-time next PC, cycle numbers), so two
    /// runs that retire the same instructions must produce the same
    /// fingerprint regardless of how fetch was steered. This is the
    /// basis of the fault harness's architectural-equivalence check.
    pub retire_fingerprint: u64,
    /// Per-site branch accounting.
    pub branch_sites: HashMap<Pc, BranchSiteStats>,
}

impl Default for CoreStats {
    fn default() -> Self {
        Self {
            cycles: 0,
            fetched_uops: 0,
            fetched_branches: 0,
            issued_uops: 0,
            issued_loads: 0,
            retired_uops: 0,
            retired_branches: 0,
            mispredicts: 0,
            recoveries: 0,
            icache_misses: 0,
            indirect_jumps: 0,
            indirect_mispredicts: 0,
            squashed_uops: 0,
            // FNV-1a offset basis: a zero start would make the hash
            // insensitive to leading zero bytes.
            retire_fingerprint: 0xcbf2_9ce4_8422_2325,
            branch_sites: HashMap::new(),
        }
    }
}

impl CoreStats {
    /// Folds one 64-bit word into [`CoreStats::retire_fingerprint`]
    /// (byte-wise FNV-1a).
    pub fn fold_retirement(&mut self, word: u64) {
        let mut h = self.retire_fingerprint;
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.retire_fingerprint = h;
    }

    /// Instructions (uops) per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_uops as f64 / self.cycles as f64
        }
    }

    /// Branch mispredictions per 1000 retired uops.
    #[must_use]
    pub fn mpki(&self) -> f64 {
        if self.retired_uops == 0 {
            0.0
        } else {
            self.mispredicts as f64 * 1000.0 / self.retired_uops as f64
        }
    }

    /// The `n` branch sites with the most mispredictions, descending.
    #[must_use]
    pub fn hardest_branches(&self, n: usize) -> Vec<(Pc, BranchSiteStats)> {
        let mut v: Vec<_> = self.branch_sites.iter().map(|(k, s)| (*k, *s)).collect();
        v.sort_by(|a, b| b.1.mispredicted.cmp(&a.1.mispredicted).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mpki(), 0.0);
        assert_eq!(BranchSiteStats::default().misp_rate(), 0.0);
    }

    #[test]
    fn hardest_branches_sorted() {
        let mut s = CoreStats::default();
        for (pc, m) in [(1u64, 5u64), (2, 9), (3, 1)] {
            s.branch_sites.insert(
                pc,
                BranchSiteStats {
                    executed: 10,
                    mispredicted: m,
                    base_wrong: m,
                    dce_provided: 0,
                    dce_wrong: 0,
                },
            );
        }
        let top = s.hardest_branches(2);
        assert_eq!(top[0].0, 2);
        assert_eq!(top[1].0, 1);
    }
}
