//! Telemetry overhead benches: the disabled-path cost (the facade must be
//! a no-op the optimizer removes) and the enabled-path cost of a full
//! simulation with sampling and event tracing on.
//!
//! Plain self-timing harness (`cargo bench -p br-bench`): each entry runs
//! a fixed iteration count and reports mean wall-clock per iteration.

use std::hint::black_box;
use std::time::Instant;

use br_sim::{SimConfig, System};
use br_telemetry::{EventKind, Telemetry, TelemetryConfig};
use br_workloads::{workload_by_name, WorkloadParams};

fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> f64 {
    black_box(f()); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() * 1e6 / f64::from(iters);
    println!("{name:<36} {iters:>8} iters  {per_iter:>12.3} us/iter");
    per_iter
}

/// The disabled facade versus the enabled path on the raw primitives:
/// counter adds, histogram records, and event pushes.
fn bench_facade() {
    let mut off = Telemetry::off();
    let off_id = off.counter("bench.counter");
    let off_hist = off.histogram("bench.hist");
    let mut i = 0u64;
    let disabled = bench("telemetry_off_add_record_event", 1_000_000, || {
        i = i.wrapping_add(1);
        off.add(off_id, 1);
        off.record(off_hist, i & 0xff);
        off.event(i, EventKind::Recovery, i, 0);
        i
    });

    let mut on = Telemetry::on(65_536);
    let on_id = on.counter("bench.counter");
    let on_hist = on.histogram("bench.hist");
    let mut j = 0u64;
    bench("telemetry_on_add_record_event", 1_000_000, || {
        j = j.wrapping_add(1);
        on.add(on_id, 1);
        on.record(on_hist, j & 0xff);
        on.event(j, EventKind::Recovery, j, 0);
        j
    });

    // The disabled path must stay in no-op territory. 50 ns for three
    // calls is already ~100x a branch-on-None; this is a tripwire for
    // accidentally de-inlining the facade, not a precise budget.
    assert!(
        disabled < 0.05,
        "disabled telemetry path costs {disabled:.4} us per 3 ops; expected a no-op"
    );
}

/// Full-system cost: the same scaled-down run with telemetry off and on.
fn bench_system() {
    let image = workload_by_name("leela_17")
        .unwrap()
        .build(&WorkloadParams {
            scale: 512,
            iterations: 1_000_000,
            seed: 17,
        });
    let run = |name: &str, telemetry: TelemetryConfig| {
        bench(name, 10, || {
            let mut cfg = SimConfig::mini_br();
            cfg.max_retired = 20_000;
            cfg.telemetry = telemetry;
            System::new(cfg, &image).run().core.cycles
        })
    };
    let off = run("system_run_telemetry_off", TelemetryConfig::default());
    let on = run(
        "system_run_telemetry_on",
        TelemetryConfig {
            enabled: true,
            sample_interval: 1_000,
            event_capacity: 65_536,
        },
    );
    println!(
        "telemetry overhead: {:+.2}% on a 20k-uop mini-BR run",
        (on / off - 1.0) * 100.0
    );
}

fn main() {
    bench_facade();
    bench_system();
}
