//! Interval samples: the time-series face of telemetry.

/// One snapshot taken every N retired uops. Rates (`ipc`, `mpki`,
/// `*_rate`) are computed over the *interval* since the previous sample,
/// not cumulatively, so phase behavior is visible; `cycle` and
/// `retired_uops` are cumulative positions on the two time axes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Sample {
    /// Simulated cycle at the sample point (cumulative).
    pub cycle: u64,
    /// Retired uops at the sample point (cumulative).
    pub retired_uops: u64,
    /// Interval instructions per cycle.
    pub ipc: f64,
    /// Interval mispredictions per kilo-uop.
    pub mpki: f64,
    /// Interval L1D miss rate (misses / accesses).
    pub l1_miss_rate: f64,
    /// MSHRs in flight at the sample point.
    pub mshr_in_use: u64,
    /// DCE chain instances in flight at the sample point.
    pub dce_active: u64,
    /// Live prediction-queue slots (allocated, not yet retired) at the
    /// sample point.
    pub queue_slots: u64,
    /// Chains resident in the dependence chain cache.
    pub cached_chains: u64,
    /// Interval chain-cache hit rate (lookups that matched ≥1 chain).
    pub chain_cache_hit_rate: f64,
    /// Interval fraction of retired conditional branches that were
    /// covered by a cached chain (Figure 12's denominator, over time).
    pub coverage_rate: f64,
    /// Interval fraction of covered retires whose prediction arrived too
    /// late.
    pub late_rate: f64,
    /// Interval fraction of covered retires suppressed by throttling.
    pub throttle_rate: f64,
    /// Interval fraction of covered retires with a correct DCE
    /// prediction.
    pub correct_rate: f64,
    /// Interval fraction of covered retires with a wrong DCE prediction.
    pub incorrect_rate: f64,
}

/// Formats an `f64` as a JSON-safe number (finite shortest-roundtrip
/// form; non-finite values become 0 so exports always parse).
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl Sample {
    /// CSV column names, matching [`Sample::csv_row`].
    pub const CSV_HEADER: &'static str = "cycle,retired_uops,ipc,mpki,l1_miss_rate,mshr_in_use,\
         dce_active,queue_slots,cached_chains,chain_cache_hit_rate,coverage_rate,late_rate,\
         throttle_rate,correct_rate,incorrect_rate";

    /// One CSV row (no trailing newline).
    #[must_use]
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.cycle,
            self.retired_uops,
            json_f64(self.ipc),
            json_f64(self.mpki),
            json_f64(self.l1_miss_rate),
            self.mshr_in_use,
            self.dce_active,
            self.queue_slots,
            self.cached_chains,
            json_f64(self.chain_cache_hit_rate),
            json_f64(self.coverage_rate),
            json_f64(self.late_rate),
            json_f64(self.throttle_rate),
            json_f64(self.correct_rate),
            json_f64(self.incorrect_rate),
        )
    }

    /// The sample as a JSON object body (without a job label).
    #[must_use]
    pub fn json_fields(&self) -> String {
        format!(
            "\"cycle\":{},\"retired_uops\":{},\"ipc\":{},\"mpki\":{},\"l1_miss_rate\":{},\
             \"mshr_in_use\":{},\"dce_active\":{},\"queue_slots\":{},\"cached_chains\":{},\
             \"chain_cache_hit_rate\":{},\"coverage_rate\":{},\"late_rate\":{},\
             \"throttle_rate\":{},\"correct_rate\":{},\"incorrect_rate\":{}",
            self.cycle,
            self.retired_uops,
            json_f64(self.ipc),
            json_f64(self.mpki),
            json_f64(self.l1_miss_rate),
            self.mshr_in_use,
            self.dce_active,
            self.queue_slots,
            self.cached_chains,
            json_f64(self.chain_cache_hit_rate),
            json_f64(self.coverage_rate),
            json_f64(self.late_rate),
            json_f64(self.throttle_rate),
            json_f64(self.correct_rate),
            json_f64(self.incorrect_rate),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_row_matches_header_arity() {
        let cols = Sample::CSV_HEADER.split(',').count();
        let row = Sample::default().csv_row();
        assert_eq!(row.split(',').count(), cols);
    }

    #[test]
    fn json_f64_never_emits_nonfinite() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(0.5), "0.5");
    }

    #[test]
    fn json_fields_are_parseable_shape() {
        let s = Sample {
            cycle: 100,
            ipc: 1.25,
            ..Sample::default()
        };
        let j = s.json_fields();
        assert!(j.contains("\"cycle\":100"));
        assert!(j.contains("\"ipc\":1.25"));
        assert!(!j.contains("NaN"));
    }
}
