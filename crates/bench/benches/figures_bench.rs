//! One timing bench per paper table/figure: times a reduced version of
//! each experiment (the `figures` binary produces the full-size numbers).
//!
//! Plain self-timing harness (`cargo bench -p br-bench`): each entry runs
//! a fixed iteration count and reports mean wall-clock per iteration.

use std::hint::black_box;
use std::time::Instant;

use br_sim::experiments::{self, ExperimentSetup};
use br_sim::{render_table2, SimConfig};

fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    black_box(f()); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() * 1e3 / f64::from(iters);
    println!("{name:<36} {iters:>4} iters  {per_iter:>10.3} ms/iter");
}

fn tiny_setup() -> ExperimentSetup {
    let mut s = ExperimentSetup::quick();
    s.max_retired = 15_000;
    s.workloads = vec!["leela_17".into(), "bfs".into()];
    s
}

fn main() {
    bench("table1_render", 1000, || {
        SimConfig::baseline().render_table1()
    });
    bench("table2_render", 1000, render_table2);
    bench("area_report", 1000, experiments::area_report);

    let setup = tiny_setup();
    bench("fig1_hard_branch_rates", 3, || {
        experiments::fig1(&setup).unwrap()
    });
    bench("fig2_chain_length", 3, || {
        experiments::fig2(&setup).unwrap()
    });
    bench("fig3_extra_uops", 3, || experiments::fig3(&setup).unwrap());
    bench("fig5_affector_guard_fraction", 3, || {
        experiments::fig5(&setup).unwrap()
    });
    bench("fig10_ipc_mpki_improvement", 3, || {
        experiments::fig10(&setup).unwrap()
    });
    bench("fig11_top_mtage_vs_br", 3, || {
        experiments::fig11_top(&setup).unwrap()
    });
    bench("fig11_bottom_initiation_policies", 3, || {
        experiments::fig11_bottom(&setup).unwrap()
    });
    bench("fig12_prediction_breakdown", 3, || {
        experiments::fig12(&setup).unwrap()
    });
    bench("fig14_energy", 3, || experiments::fig14(&setup).unwrap());
    bench("merge_point_accuracy", 3, || {
        experiments::merge_point(&setup).unwrap()
    });
    bench("ablations", 3, || experiments::ablations(&setup).unwrap());

    // Figure 13 sweeps many configurations; bench it with one workload.
    let mut sweep_setup = tiny_setup();
    sweep_setup.workloads = vec!["leela_17".into()];
    sweep_setup.max_retired = 8_000;
    bench("fig13_parameter_sweeps", 2, || {
        experiments::fig13(&sweep_setup).unwrap()
    });
}
