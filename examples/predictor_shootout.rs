//! Standalone predictor comparison (no core, no timing): feeds each
//! predictor the functional branch stream of a kernel and reports
//! misprediction rates — showing why history-based prediction saturates
//! on data-dependent branches no matter the storage budget.
//!
//! ```text
//! cargo run --release --example predictor_shootout [workload]
//! ```

use branch_runahead::isa::Machine;
use branch_runahead::predictor::{build_predictor, ConditionalPredictor};
use branch_runahead::workloads::{workload_by_name, WorkloadParams};

fn measure(p: &mut dyn ConditionalPredictor, name: &str, workload: &str) {
    let w = workload_by_name(workload).expect("known workload");
    let image = w.build(&WorkloadParams {
        scale: 4096,
        iterations: 20_000,
        seed: 0xabcd,
    });
    let mut m = Machine::new(image.memory.into_memory());
    let (mut branches, mut wrong) = (0u64, 0u64);
    while !m.halted() && m.steps() < 3_000_000 {
        let rec = m.step(&image.program, None).expect("kernel runs");
        if let Some(b) = rec.branch {
            if image
                .program
                .fetch(rec.pc)
                .expect("fetched")
                .is_cond_branch()
            {
                let pred = p.predict(rec.pc);
                branches += 1;
                if pred.taken != b.actual_taken {
                    wrong += 1;
                }
                p.update_history(rec.pc, b.actual_taken);
                p.train(rec.pc, b.actual_taken, &pred);
            }
        }
    }
    println!(
        "{:<18}{:>10.1} KiB{:>12} branches{:>9.2}% mispredicted",
        name,
        p.storage_kib(),
        branches,
        wrong as f64 / branches.max(1) as f64 * 100.0
    );
}

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "leela_17".into());
    println!("functional branch stream: {workload}\n");
    for name in [
        "bimodal",
        "gshare",
        "perceptron",
        "tage-sc-l-64kb",
        "tage-sc-l-80kb",
        "mtage-unlimited",
    ] {
        let mut p = build_predictor(name);
        measure(p.as_mut(), name, &workload);
    }
    println!(
        "\nNote the saturation: unlimited storage barely moves the needle on\n\
         data-dependent branches — the paper's Figure 1 in miniature."
    );
}
