//! Property tests for speculative-history management — the correctness
//! backbone of every predictor here: arbitrary checkpoint/restore
//! interleavings must leave the folded histories exactly as if the final
//! surviving outcome sequence had been pushed into a fresh history.

use proptest::prelude::*;

use br_predictor::GlobalHistory;

#[derive(Clone, Debug)]
enum Action {
    Push { pc: u8, taken: bool },
    Checkpoint,
    /// Restore the i-th (mod live) outstanding checkpoint, discarding
    /// younger ones.
    Restore(u8),
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        5 => (any::<u8>(), any::<bool>()).prop_map(|(pc, taken)| Action::Push { pc, taken }),
        2 => Just(Action::Checkpoint),
        1 => any::<u8>().prop_map(Action::Restore),
    ]
}

fn new_history() -> (GlobalHistory, Vec<usize>) {
    let mut gh = GlobalHistory::new(512);
    let folds = vec![
        gh.add_folded(5, 4),
        gh.add_folded(17, 7),
        gh.add_folded(63, 11),
    ];
    (gh, folds)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

    #[test]
    fn restore_equals_linear_replay(actions in prop::collection::vec(action(), 1..80)) {
        let (mut gh, folds) = new_history();
        // The reference: the sequence of (pc, taken) that survives all
        // restores, maintained directly.
        let mut surviving: Vec<(u64, bool)> = Vec::new();
        let mut checkpoints: Vec<(br_predictor::HistoryCheckpoint, usize)> = Vec::new();

        for a in &actions {
            match a {
                Action::Push { pc, taken } => {
                    gh.push(u64::from(*pc), *taken);
                    surviving.push((u64::from(*pc), *taken));
                }
                Action::Checkpoint => {
                    checkpoints.push((gh.checkpoint(), surviving.len()));
                }
                Action::Restore(i) => {
                    if !checkpoints.is_empty() {
                        let idx = (*i as usize) % checkpoints.len();
                        let (cp, len) = checkpoints[idx].clone();
                        gh.restore(&cp);
                        surviving.truncate(len);
                        checkpoints.truncate(idx + 1);
                    }
                }
            }
        }

        // Replay the surviving sequence into a fresh history; every folded
        // view and the raw recent bits must agree.
        let (mut fresh, fresh_folds) = new_history();
        for (pc, taken) in &surviving {
            fresh.push(*pc, *taken);
        }
        for (h, fh) in folds.iter().zip(&fresh_folds) {
            prop_assert_eq!(gh.folded(*h), fresh.folded(*fh));
        }
        prop_assert_eq!(gh.recent(48), fresh.recent(48));
        prop_assert_eq!(gh.path(), fresh.path());
    }
}
