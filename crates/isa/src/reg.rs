//! Architectural registers and dense register sets.
//!
//! The ISA has 16 general-purpose 64-bit registers (`R0`..`R15`) plus one
//! architectural flags register ([`FLAGS`]). The flags register is modelled
//! as an ordinary dataflow register so that the backward dataflow walk used
//! by dependence-chain extraction treats condition codes uniformly: a `cmp`
//! *writes* `FLAGS`, a conditional branch *reads* `FLAGS` — exactly the
//! "condition code register" handling described in §4.3 of the paper.

use std::fmt;

/// Number of architectural registers, including the flags register.
pub const NUM_ARCH_REGS: usize = 17;

/// An architectural register name.
///
/// `ArchReg(0)`..`ArchReg(15)` are the general-purpose registers; index 16
/// is the flags pseudo-register ([`FLAGS`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

/// The architectural flags (condition-code) register.
pub const FLAGS: ArchReg = ArchReg(16);

/// General-purpose register `R0`.
pub const R0: ArchReg = ArchReg(0);
/// General-purpose register `R1`.
pub const R1: ArchReg = ArchReg(1);
/// General-purpose register `R2`.
pub const R2: ArchReg = ArchReg(2);
/// General-purpose register `R3`.
pub const R3: ArchReg = ArchReg(3);
/// General-purpose register `R4`.
pub const R4: ArchReg = ArchReg(4);
/// General-purpose register `R5`.
pub const R5: ArchReg = ArchReg(5);
/// General-purpose register `R6`.
pub const R6: ArchReg = ArchReg(6);
/// General-purpose register `R7`.
pub const R7: ArchReg = ArchReg(7);
/// General-purpose register `R8`.
pub const R8: ArchReg = ArchReg(8);
/// General-purpose register `R9`.
pub const R9: ArchReg = ArchReg(9);
/// General-purpose register `R10`.
pub const R10: ArchReg = ArchReg(10);
/// General-purpose register `R11`.
pub const R11: ArchReg = ArchReg(11);
/// General-purpose register `R12`.
pub const R12: ArchReg = ArchReg(12);
/// General-purpose register `R13`.
pub const R13: ArchReg = ArchReg(13);
/// General-purpose register `R14`.
pub const R14: ArchReg = ArchReg(14);
/// General-purpose register `R15`.
pub const R15: ArchReg = ArchReg(15);

impl ArchReg {
    /// Creates a register from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_ARCH_REGS,
            "register index {index} out of range"
        );
        ArchReg(index)
    }

    /// The raw index of this register (`0..NUM_ARCH_REGS`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the flags pseudo-register.
    #[must_use]
    pub fn is_flags(self) -> bool {
        self == FLAGS
    }

    /// Iterates over every architectural register, including `FLAGS`.
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS as u8).map(ArchReg)
    }

    /// Iterates over the general-purpose registers only.
    pub fn gprs() -> impl Iterator<Item = ArchReg> {
        (0..16u8).map(ArchReg)
    }
}

impl fmt::Debug for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_flags() {
            write!(f, "flags")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

/// A dense set of architectural registers, stored as a bitmask.
///
/// Used throughout dependence-chain extraction as the "search list" of the
/// backward dataflow walk (the `LIV` set in Figure 9 of the paper) and as
/// the *dest sets* produced by the merge-point predictor.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct RegSet(u32);

impl RegSet {
    /// The empty register set.
    #[must_use]
    pub fn empty() -> Self {
        RegSet(0)
    }

    /// A set containing a single register.
    #[must_use]
    pub fn single(r: ArchReg) -> Self {
        RegSet(1 << r.index())
    }

    /// Whether the set contains no registers.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of registers in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `r` is a member.
    #[must_use]
    pub fn contains(self, r: ArchReg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Inserts `r`, returning whether it was newly added.
    pub fn insert(&mut self, r: ArchReg) -> bool {
        let bit = 1 << r.index();
        let added = self.0 & bit == 0;
        self.0 |= bit;
        added
    }

    /// Removes `r`, returning whether it was present.
    pub fn remove(&mut self, r: ArchReg) -> bool {
        let bit = 1 << r.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Set difference (`self` minus `other`).
    #[must_use]
    pub fn difference(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Whether the two sets share any register.
    #[must_use]
    pub fn intersects(self, other: RegSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterates over the members in index order.
    pub fn iter(self) -> impl Iterator<Item = ArchReg> {
        ArchReg::all().filter(move |r| self.contains(*r))
    }
}

impl FromIterator<ArchReg> for RegSet {
    fn from_iter<T: IntoIterator<Item = ArchReg>>(iter: T) -> Self {
        let mut s = RegSet::empty();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<ArchReg> for RegSet {
    fn extend<T: IntoIterator<Item = ArchReg>>(&mut self, iter: T) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_indices_round_trip() {
        for r in ArchReg::all() {
            assert_eq!(ArchReg::new(r.index() as u8), r);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_index_out_of_range_panics() {
        let _ = ArchReg::new(17);
    }

    #[test]
    fn flags_is_not_a_gpr() {
        assert!(FLAGS.is_flags());
        assert!(ArchReg::gprs().all(|r| !r.is_flags()));
        assert_eq!(ArchReg::gprs().count(), 16);
        assert_eq!(ArchReg::all().count(), NUM_ARCH_REGS);
    }

    #[test]
    fn regset_insert_remove() {
        let mut s = RegSet::empty();
        assert!(s.is_empty());
        assert!(s.insert(R3));
        assert!(!s.insert(R3));
        assert!(s.contains(R3));
        assert_eq!(s.len(), 1);
        assert!(s.remove(R3));
        assert!(!s.remove(R3));
        assert!(s.is_empty());
    }

    #[test]
    fn regset_algebra() {
        let a: RegSet = [R0, R1, FLAGS].into_iter().collect();
        let b: RegSet = [R1, R2].into_iter().collect();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b), RegSet::single(R1));
        assert_eq!(a.difference(b), [R0, FLAGS].into_iter().collect());
        assert!(a.intersects(b));
        assert!(!a.difference(b).intersects(b));
    }

    #[test]
    fn regset_display_nonempty() {
        let s: RegSet = [R0, FLAGS].into_iter().collect();
        assert_eq!(s.to_string(), "{r0, flags}");
        assert_eq!(RegSet::empty().to_string(), "{}");
    }

    #[test]
    fn regset_iter_sorted() {
        let s: RegSet = [R9, R1, R4].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![R1, R4, R9]);
    }
}
