//! Bimodal (per-PC 2-bit counter) predictor — the simplest baseline.

use br_isa::Pc;

use crate::traits::{ConditionalPredictor, PredMeta, Prediction, PredictorCheckpoint};

/// A table of 2-bit saturating counters indexed by PC.
#[derive(Clone, Debug)]
pub struct Bimodal {
    counters: Vec<u8>,
    mask: usize,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^log2_entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is 0 or greater than 28.
    #[must_use]
    pub fn new(log2_entries: u32) -> Self {
        assert!((1..=28).contains(&log2_entries));
        Bimodal {
            counters: vec![2; 1 << log2_entries],
            mask: (1 << log2_entries) - 1,
        }
    }
}

impl ConditionalPredictor for Bimodal {
    fn name(&self) -> &'static str {
        "bimodal"
    }

    fn predict(&mut self, pc: Pc) -> Prediction {
        let index = pc as usize & self.mask;
        let c = self.counters[index];
        Prediction {
            taken: c >= 2,
            low_confidence: c == 1 || c == 2,
            meta: PredMeta::Bimodal { index },
        }
    }

    fn update_history(&mut self, _pc: Pc, _taken: bool) {}

    fn checkpoint(&self) -> PredictorCheckpoint {
        PredictorCheckpoint::None
    }

    fn restore(&mut self, _cp: &PredictorCheckpoint) {}

    fn train(&mut self, _pc: Pc, taken: bool, pred: &Prediction) {
        let PredMeta::Bimodal { index } = pred.meta else {
            panic!("metadata type mismatch for Bimodal");
        };
        let c = &mut self.counters[index];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn storage_kib(&self) -> f64 {
        self.counters.len() as f64 * 2.0 / 8.0 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_bias_quickly() {
        let mut p = Bimodal::new(10);
        for _ in 0..4 {
            let pred = p.predict(0x10);
            p.train(0x10, false, &pred);
        }
        assert!(!p.predict(0x10).taken);
    }

    #[test]
    fn cannot_learn_alternation() {
        let mut p = Bimodal::new(10);
        let mut correct = 0;
        for i in 0..1000 {
            let taken = i % 2 == 0;
            let pred = p.predict(0x10);
            if pred.taken == taken {
                correct += 1;
            }
            p.train(0x10, taken, &pred);
        }
        assert!(correct <= 600, "bimodal should fail on alternation");
    }

    #[test]
    fn storage_is_quarter_byte_per_entry() {
        let p = Bimodal::new(12);
        assert!((p.storage_kib() - 1.0).abs() < 1e-9);
    }
}
