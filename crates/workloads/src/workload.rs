//! The workload abstraction.

use std::sync::Arc;

use br_isa::{MemoryImage, Program};

/// Which benchmark suite a kernel mirrors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Suite {
    /// SPEC CPU2017 Integer Speed.
    Spec2017,
    /// SPEC CPU2006 Integer.
    Spec2006,
    /// The GAP benchmark suite (graph kernels).
    Gap,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Spec2017 => write!(f, "SPEC2017"),
            Suite::Spec2006 => write!(f, "SPEC2006"),
            Suite::Gap => write!(f, "GAP"),
        }
    }
}

/// Build-time parameters shared by all kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WorkloadParams {
    /// Data-structure scale (table entries, vertices, ...). Kernels clamp
    /// this to a sane minimum.
    pub scale: usize,
    /// Outer-loop iterations before the program halts. Simulations
    /// normally stop earlier via a retired-uop cap.
    pub iterations: u64,
    /// Seed for all pseudo-random data.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            scale: 4096,
            iterations: 2_000_000,
            seed: 0xb5ad4ece_da1ce2a9,
        }
    }
}

/// A built workload: the program plus its initial memory.
///
/// The program is behind an [`Arc`] so one built image can seed many
/// simulation runs (every configuration of an experiment, on any worker
/// thread) without rebuilding or copying the kernel; cloning the image is
/// a reference-count bump plus a page-table copy.
#[derive(Clone, Debug)]
pub struct WorkloadImage {
    /// The micro-op program, shared between all runs of this image.
    pub program: Arc<Program>,
    /// Initial data memory.
    pub memory: MemoryImage,
}

/// A synthetic benchmark kernel.
///
/// `Send + Sync` is required so workload registries can be consulted from
/// worker threads; kernels are stateless generators, so this is free.
pub trait Workload: Send + Sync {
    /// Short identifier matching the paper's figures (e.g. `"leela_17"`).
    fn name(&self) -> &'static str;

    /// The suite this kernel mirrors.
    fn suite(&self) -> Suite;

    /// One-line description of the mirrored branch behaviour.
    fn description(&self) -> &'static str;

    /// Builds the program and initial memory.
    fn build(&self, params: &WorkloadParams) -> WorkloadImage;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_sane() {
        let p = WorkloadParams::default();
        assert!(p.scale >= 1024);
        assert!(p.iterations > 0);
    }

    #[test]
    fn suite_display() {
        assert_eq!(Suite::Gap.to_string(), "GAP");
        assert_eq!(Suite::Spec2017.to_string(), "SPEC2017");
    }
}
