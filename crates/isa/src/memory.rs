//! Byte-addressable data memory with an undo journal.
//!
//! The out-of-order frontend executes uops *speculatively* — including down
//! the wrong path of a mispredicted branch — so the emulator's memory must
//! support rollback. [`JournaledMemory`] records an undo entry for every
//! store; a [`JournalMark`] taken at a branch identifies the rollback point,
//! and [`JournaledMemory::rollback_to`] restores the pre-branch contents.
//! Marks older than the oldest in-flight branch are released with
//! [`JournaledMemory::release_before`], which lets the journal stay small.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

use crate::uop::Width;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A builder for initial memory contents, used by workload generators.
#[derive(Clone, Default)]
pub struct MemoryImage {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl fmt::Debug for MemoryImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryImage")
            .field("pages", &self.pages.len())
            .finish()
    }
}

impl MemoryImage {
    /// Creates an empty (all-zero) image.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a value of the given width at `addr`.
    pub fn write(&mut self, addr: u64, width: Width, value: u64) {
        for i in 0..width.bytes() {
            self.write_byte(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Writes one byte.
    pub fn write_byte(&mut self, addr: u64, b: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = b;
    }

    /// Writes a slice of 64-bit values starting at `addr` (8 bytes apart).
    pub fn write_u64_slice(&mut self, addr: u64, values: &[u64]) {
        for (i, v) in values.iter().enumerate() {
            self.write(addr + 8 * i as u64, Width::B8, *v);
        }
    }

    /// Writes a slice of 32-bit values starting at `addr` (4 bytes apart).
    pub fn write_u32_slice(&mut self, addr: u64, values: &[u32]) {
        for (i, v) in values.iter().enumerate() {
            self.write(addr + 4 * i as u64, Width::B4, u64::from(*v));
        }
    }

    /// Reads back a value (useful in tests).
    #[must_use]
    pub fn read(&self, addr: u64, width: Width) -> u64 {
        let mut v = 0u64;
        for i in 0..width.bytes() {
            v |= u64::from(self.read_byte(addr + i)) << (8 * i);
        }
        v
    }

    fn read_byte(&self, addr: u64) -> u8 {
        self.pages
            .get(&(addr >> PAGE_SHIFT))
            .map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Number of touched 4 KiB pages.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Converts the image into a journaled memory ready for execution.
    #[must_use]
    pub fn into_memory(self) -> JournaledMemory {
        JournaledMemory {
            pages: self.pages,
            journal: VecDeque::new(),
            base: 0,
        }
    }

    /// Builds a journaled memory from a shared image without consuming it,
    /// copying the touched pages. This is what lets one built workload
    /// image seed many independent simulation runs: the page copy is far
    /// cheaper than re-running the workload generator.
    #[must_use]
    pub fn to_memory(&self) -> JournaledMemory {
        JournaledMemory {
            pages: self.pages.clone(),
            journal: VecDeque::new(),
            base: 0,
        }
    }
}

/// A position in the store journal; rollback target for speculation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JournalMark(u64);

#[derive(Clone, Debug)]
struct UndoEntry {
    addr: u64,
    width: Width,
    old: u64,
}

/// Byte-addressable sparse memory with store journaling for speculative
/// execution. See the module docs for the checkpoint/rollback protocol.
pub struct JournaledMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    journal: VecDeque<UndoEntry>,
    /// Journal position of `journal[0]`.
    base: u64,
}

impl fmt::Debug for JournaledMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournaledMemory")
            .field("pages", &self.pages.len())
            .field("journal_len", &self.journal.len())
            .finish()
    }
}

impl JournaledMemory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        MemoryImage::new().into_memory()
    }

    /// Reads `width` bytes at `addr` (little-endian, zero-extended).
    #[must_use]
    pub fn read(&self, addr: u64, width: Width) -> u64 {
        let mut v = 0u64;
        for i in 0..width.bytes() {
            v |= u64::from(self.read_byte(addr + i)) << (8 * i);
        }
        v
    }

    fn read_byte(&self, addr: u64) -> u8 {
        self.pages
            .get(&(addr >> PAGE_SHIFT))
            .map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Writes `width` bytes at `addr`, journaling the previous contents.
    pub fn write(&mut self, addr: u64, width: Width, value: u64) {
        let old = self.read(addr, width);
        self.journal.push_back(UndoEntry { addr, width, old });
        self.write_raw(addr, width, value);
    }

    fn write_raw(&mut self, addr: u64, width: Width, value: u64) {
        for i in 0..width.bytes() {
            let a = addr + i;
            let page = self
                .pages
                .entry(a >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[(a as usize) & (PAGE_SIZE - 1)] = (value >> (8 * i)) as u8;
        }
    }

    /// The current journal position; stores after this call can be undone
    /// by rolling back to the returned mark.
    #[must_use]
    pub fn mark(&self) -> JournalMark {
        JournalMark(self.base + self.journal.len() as u64)
    }

    /// Undoes every store performed after `mark` was taken.
    ///
    /// # Panics
    ///
    /// Panics if `mark` has been released by [`Self::release_before`] —
    /// that would mean rolling back past committed state, which is a
    /// simulator bug.
    pub fn rollback_to(&mut self, mark: JournalMark) {
        assert!(
            mark.0 >= self.base,
            "rollback target {mark:?} was already released (base {})",
            self.base
        );
        while self.base + self.journal.len() as u64 > mark.0 {
            let e = self
                .journal
                .pop_back()
                .expect("journal length accounted above");
            self.write_raw(e.addr, e.width, e.old);
        }
    }

    /// Releases journal entries older than `mark`; they can no longer be
    /// rolled back. Call with the mark of the oldest in-flight branch as
    /// instructions retire.
    pub fn release_before(&mut self, mark: JournalMark) {
        while self.base < mark.0 && !self.journal.is_empty() {
            self.journal.pop_front();
            self.base += 1;
        }
    }

    /// Number of undoable journal entries currently held.
    #[must_use]
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }
}

impl Default for JournaledMemory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_round_trip() {
        let mut img = MemoryImage::new();
        img.write(0x1000, Width::B8, 0xdead_beef_cafe_f00d);
        img.write_u32_slice(0x2000, &[1, 2, 3]);
        assert_eq!(img.read(0x1000, Width::B8), 0xdead_beef_cafe_f00d);
        assert_eq!(img.read(0x1004, Width::B4), 0xdead_beef);
        assert_eq!(img.read(0x2004, Width::B4), 2);
        let mem = img.into_memory();
        assert_eq!(mem.read(0x1000, Width::B8), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn unmapped_reads_zero() {
        let mem = JournaledMemory::new();
        assert_eq!(mem.read(0xffff_0000, Width::B8), 0);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = JournaledMemory::new();
        let addr = (1 << PAGE_SHIFT) - 2;
        mem.write(addr, Width::B8, 0x1122_3344_5566_7788);
        assert_eq!(mem.read(addr, Width::B8), 0x1122_3344_5566_7788);
        assert_eq!(mem.read(addr + 4, Width::B4), 0x1122_3344);
    }

    #[test]
    fn rollback_restores_old_values() {
        let mut mem = JournaledMemory::new();
        mem.write(0x10, Width::B8, 111);
        let mark = mem.mark();
        mem.write(0x10, Width::B8, 222);
        mem.write(0x18, Width::B4, 333);
        assert_eq!(mem.read(0x10, Width::B8), 222);
        mem.rollback_to(mark);
        assert_eq!(mem.read(0x10, Width::B8), 111);
        assert_eq!(mem.read(0x18, Width::B4), 0);
    }

    #[test]
    fn nested_marks_roll_back_in_order() {
        let mut mem = JournaledMemory::new();
        let m0 = mem.mark();
        mem.write(0x0, Width::B1, 1);
        let m1 = mem.mark();
        mem.write(0x0, Width::B1, 2);
        mem.rollback_to(m1);
        assert_eq!(mem.read(0x0, Width::B1), 1);
        mem.rollback_to(m0);
        assert_eq!(mem.read(0x0, Width::B1), 0);
    }

    #[test]
    fn release_bounds_journal_growth() {
        let mut mem = JournaledMemory::new();
        for i in 0..100 {
            mem.write(i * 8, Width::B8, i);
            let m = mem.mark();
            mem.release_before(m);
        }
        assert_eq!(mem.journal_len(), 0);
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn rollback_past_release_panics() {
        let mut mem = JournaledMemory::new();
        let m0 = mem.mark();
        mem.write(0, Width::B1, 1);
        let m1 = mem.mark();
        mem.release_before(m1);
        mem.rollback_to(m0);
    }

    #[test]
    fn rollback_to_current_mark_is_noop() {
        let mut mem = JournaledMemory::new();
        mem.write(0, Width::B8, 42);
        let m = mem.mark();
        mem.rollback_to(m);
        assert_eq!(mem.read(0, Width::B8), 42);
    }
}
