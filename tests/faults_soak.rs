//! The prediction-as-hint contract, end to end: fault-injected runs must
//! retire the exact same instruction stream as fault-free runs (only
//! performance may move), machine checks must catch real structural
//! damage, and a batch with failing jobs must still deliver every other
//! job's results.

use branch_runahead::sim::experiments::ExperimentSetup;
use branch_runahead::sim::faults::{run_soak, schedule_seed};
use branch_runahead::sim::{run_jobs_partial, FaultSpec, SimConfig, SimError, SimJob};

/// One Mini-BR job on `workload`, sized for test runtime.
fn mini_job(workload: &str, max_retired: u64) -> SimJob {
    SimJob {
        config: SimConfig::mini_br(),
        workload: workload.into(),
        params: ExperimentSetup::quick().params,
        region_seed: 0,
        weight: 1.0,
        max_retired,
    }
}

#[test]
fn quick_workloads_hold_equivalence_under_default_faults() {
    let setup = ExperimentSetup::quick();
    let jobs: Vec<SimJob> = setup
        .workloads
        .iter()
        .map(|w| mini_job(w, 20_000))
        .collect();
    let report = run_soak(&jobs, FaultSpec::default(), 4, 4);
    assert!(
        report.passed(),
        "equivalence soak failed: {}",
        report.to_json()
    );
    assert_eq!(report.runs.len(), jobs.len() * 5, "reference + 4 schedules");
    let injected: u64 = report.runs.iter().map(|r| r.faults.total()).sum();
    assert!(injected > 0, "schedules must actually inject faults");
    // Every fault run carries its seed so any failure is replayable.
    assert_eq!(
        report
            .runs
            .iter()
            .filter(|r| r.fault_seed.is_some())
            .count(),
        jobs.len() * 4
    );
}

#[test]
fn fault_schedule_replays_bit_identically() {
    let mut spec = FaultSpec::default();
    spec.seed = schedule_seed(spec.seed, &mini_job("leela_17", 15_000), 2);
    let mut job = mini_job("leela_17", 15_000);
    job.config.machine_check = true;
    job.config.faults = Some(spec);
    let a = job.run().expect("faulted run completes");
    let b = job.run().expect("replay completes");
    assert_eq!(a.faults, b.faults, "same faults injected");
    assert_eq!(a.core.cycles, b.core.cycles, "same timing");
    assert_eq!(a.core.retire_fingerprint, b.core.retire_fingerprint);
    assert!(a.faults.expect("stats present").total() > 0);
}

#[test]
fn distinct_seeds_give_distinct_schedules() {
    let base = mini_job("bfs", 15_000);
    let mut seeds: Vec<u64> = (0..4).map(|k| schedule_seed(7, &base, k)).collect();
    seeds.dedup();
    assert_eq!(seeds.len(), 4, "four schedules, four distinct seeds");
    let run = |seed: u64| {
        let mut job = base.clone();
        job.config.faults = Some(FaultSpec {
            seed,
            ..FaultSpec::default()
        });
        job.run().expect("run completes")
    };
    let a = run(seeds[0]);
    let b = run(seeds[1]);
    // Different schedules perturb timing differently (while both retire
    // the same stream — covered by the soak test above).
    assert_ne!(
        (a.core.cycles, a.faults),
        (b.core.cycles, b.faults),
        "distinct seeds should exercise distinct schedules"
    );
}

#[test]
fn sabotage_fixture_trips_machine_check() {
    let mut job = mini_job("leela_17", 60_000);
    job.config.machine_check = true;
    job.config.faults = Some(FaultSpec {
        sabotage: true,
        ..FaultSpec::none()
    });
    let err = job.run().expect_err("corruption must be caught");
    match err {
        SimError::InvariantViolation {
            job: label,
            cycle,
            what,
        } => {
            assert!(label.contains("leela_17"), "names the job: {label}");
            assert!(cycle > 0);
            assert!(
                what.contains("fetch pointer"),
                "names the invariant: {what}"
            );
        }
        other => panic!("expected InvariantViolation, got {other:?}"),
    }
}

#[test]
fn machine_check_passes_on_clean_runs() {
    let mut job = mini_job("sssp", 20_000);
    job.config.machine_check = true;
    let clean = job.run().expect("clean run passes all sweeps");
    job.config.machine_check = false;
    let unchecked = job.run().expect("unchecked run");
    // The sweeps are observers: enabling them must not change the run.
    assert_eq!(clean.core.cycles, unchecked.core.cycles);
    assert_eq!(
        clean.core.retire_fingerprint,
        unchecked.core.retire_fingerprint
    );
}

#[test]
fn multi_panic_batch_reports_each_job_and_keeps_the_rest() {
    let mut batch: Vec<SimJob> = ["leela_17", "mcf_06", "bfs", "sssp", "leela_17", "bfs"]
        .iter()
        .map(|w| mini_job(w, 4_000))
        .collect();
    // Two jobs panic concurrently (zero-sized HBT asserts in BR setup).
    for i in [1, 4] {
        batch[i]
            .config
            .runahead
            .as_mut()
            .expect("mini config has BR")
            .hbt_entries = 0;
    }
    let partial = run_jobs_partial(&batch, 4);
    assert_eq!(partial.len(), batch.len());
    for (i, result) in partial.iter().enumerate() {
        if i == 1 || i == 4 {
            match result {
                Err(SimError::JobPanicked { job, message }) => {
                    assert_eq!(*job, batch[i].label(), "each panic names its own job");
                    assert!(message.contains("hbt_entries"), "payload kept: {message}");
                }
                other => panic!("job {i}: expected JobPanicked, got {other:?}"),
            }
        } else {
            assert!(result.is_ok(), "job {i} must survive its neighbours");
        }
    }
    // Survivors are bit-identical to a clean sequential run.
    let clean: Vec<SimJob> = batch
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 1 && *i != 4)
        .map(|(_, j)| j.clone())
        .collect();
    let sequential = run_jobs_partial(&clean, 1);
    let survivors: Vec<_> = partial.iter().filter_map(|r| r.as_ref().ok()).collect();
    assert_eq!(survivors.len(), sequential.len());
    for (p, s) in survivors.iter().zip(&sequential) {
        let s = s.as_ref().expect("clean sequential run succeeds");
        assert_eq!(p.core.cycles, s.core.cycles);
        assert_eq!(p.core.retire_fingerprint, s.core.retire_fingerprint);
    }
}
