//! Static program representation.

use std::fmt;

use crate::error::IsaError;
use crate::uop::{Pc, Uop, UopKind};

/// A validated, immutable sequence of micro-ops.
///
/// PCs are uop indices; the fall-through successor of `pc` is `pc + 1`.
/// Construct programs with [`crate::ProgramBuilder`].
#[derive(Clone, PartialEq, Eq)]
pub struct Program {
    uops: Vec<Uop>,
}

impl Program {
    /// Validates and wraps a uop sequence.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadBranchTarget`] if any branch or jump targets
    /// a PC outside the program.
    pub fn new(uops: Vec<Uop>) -> Result<Self, IsaError> {
        let len = uops.len() as Pc;
        for u in &uops {
            let target = match u.kind {
                UopKind::Branch { target, .. }
                | UopKind::Jump { target }
                | UopKind::Call { target, .. } => Some(target),
                _ => None,
            };
            if let Some(t) = target {
                if t >= len {
                    return Err(IsaError::BadBranchTarget {
                        pc: u.pc,
                        target: t,
                    });
                }
            }
        }
        Ok(Program { uops })
    }

    /// The uop at `pc`, if within the program.
    #[must_use]
    pub fn fetch(&self, pc: Pc) -> Option<&Uop> {
        self.uops.get(pc as usize)
    }

    /// Number of static uops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the program has no uops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Iterates over all static uops in PC order.
    pub fn iter(&self) -> impl Iterator<Item = &Uop> {
        self.uops.iter()
    }

    /// Number of static conditional branches.
    #[must_use]
    pub fn cond_branch_count(&self) -> usize {
        self.uops.iter().filter(|u| u.is_cond_branch()).count()
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("uops", &self.uops.len())
            .field("cond_branches", &self.cond_branch_count())
            .finish()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for u in &self.uops {
            writeln!(f, "{u}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::Cond;

    fn uop(pc: Pc, kind: UopKind) -> Uop {
        Uop { pc, kind }
    }

    #[test]
    fn valid_program_builds() {
        let p = Program::new(vec![
            uop(0, UopKind::Nop),
            uop(
                1,
                UopKind::Branch {
                    cond: Cond::Eq,
                    target: 0,
                },
            ),
            uop(2, UopKind::Halt),
        ])
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.cond_branch_count(), 1);
        assert!(p.fetch(1).unwrap().is_cond_branch());
        assert!(p.fetch(3).is_none());
    }

    #[test]
    fn out_of_range_target_rejected() {
        let err = Program::new(vec![uop(0, UopKind::Jump { target: 7 })]).unwrap_err();
        assert_eq!(err, IsaError::BadBranchTarget { pc: 0, target: 7 });
    }

    #[test]
    fn empty_program_is_valid() {
        let p = Program::new(vec![]).unwrap();
        assert!(p.is_empty());
    }
}
