//! # branch-runahead
//!
//! A from-scratch Rust reproduction of *"Branch Runahead: An Alternative
//! to Branch Prediction for Impossible to Predict Branches"* (Stephen
//! Pruett and Yale N. Patt, MICRO 2021).
//!
//! Branch Runahead pre-computes the outcomes of hard-to-predict,
//! data-dependent branches by continuously executing their *dependence
//! chains* — short backward dataflow slices — on a small dedicated engine
//! whose results override the baseline TAGE-SC-L prediction at fetch.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`isa`] | `br-isa` | micro-op ISA, assembler, journaled emulator |
//! | [`predictor`] | `br-predictor` | TAGE-SC-L, MTAGE, gshare, bimodal |
//! | [`mem`] | `br-mem` | caches, MSHRs, prefetcher, DRAM |
//! | [`ooo`] | `br-ooo` | out-of-order core with wrong-path execution |
//! | [`runahead`] | `br-core` | the paper's contribution: HBT, CEB, WPB, DCE |
//! | [`workloads`] | `br-workloads` | 18 SPEC/GAP-like synthetic kernels |
//! | [`energy`] | `br-energy` | McPAT-substitute energy/area models |
//! | [`sim`] | `br-sim` | system composition + per-figure experiments |
//! | [`telemetry`] | `br-telemetry` | metrics, interval samples, event traces, exporters |
//!
//! ## Quick start
//!
//! ```no_run
//! use branch_runahead::sim::{SimConfig, System};
//! use branch_runahead::workloads::{workload_by_name, WorkloadParams};
//!
//! let leela = workload_by_name("leela_17").unwrap();
//! let image = leela.build(&WorkloadParams::default());
//!
//! let base = System::new(SimConfig::baseline(), &image).run();
//! let with = System::new(SimConfig::mini_br(), &image).run();
//!
//! println!(
//!     "MPKI {:.2} -> {:.2} ({:+.1}%), IPC {:.3} -> {:.3}",
//!     base.mpki(), with.mpki(), with.mpki_improvement_pct(&base),
//!     base.ipc(), with.ipc(),
//! );
//! ```
//!
//! See `examples/` for runnable walkthroughs and
//! `cargo run --release -p br-bench --bin figures -- all` to regenerate
//! every table and figure of the paper's evaluation.

#![warn(missing_docs)]

pub use br_core as runahead;
pub use br_energy as energy;
pub use br_isa as isa;
pub use br_mem as mem;
pub use br_ooo as ooo;
pub use br_predictor as predictor;
pub use br_sim as sim;
pub use br_telemetry as telemetry;
pub use br_workloads as workloads;
