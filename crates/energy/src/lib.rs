//! # br-energy — analytic energy and area models
//!
//! The paper models chip energy and area with McPAT at a 22 nm process
//! (§5.1, Figure 14, and the §5.2 area paragraph). McPAT is a large C++
//! framework that is not available here; this crate substitutes an
//! *event-energy* model of the same shape:
//!
//! * total energy = Σ (event count × per-event energy) + leakage × time,
//! * the DCE adds both new structures (static + dynamic power) and extra
//!   executed uops / memory accesses (Figure 3), while reduced run time
//!   cuts the leakage term — reproducing Figure 14's "faster run time
//!   usually wins" trade-off,
//! * area = Σ per-structure areas, calibrated so the baseline core is
//!   16.96 mm² and the DCE ≈ 0.38 mm² ≈ 2.2% (the McPAT numbers the
//!   paper reports), with the same chain-cache / execution / extraction
//!   breakdown.
//!
//! Absolute joules are not meaningful — only the *relative* energy change
//! between baseline and Branch Runahead runs, which is what Figure 14
//! plots.

#![warn(missing_docs)]

/// Event counts for one simulation run, filled from simulator statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyEvents {
    /// Cycles simulated.
    pub cycles: u64,
    /// Uops issued by the core (including wrong path).
    pub core_uops: u64,
    /// L1 data accesses.
    pub l1_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// Branch predictor lookups (≈ fetched branches).
    pub predictor_lookups: u64,
    /// Uops executed by the DCE.
    pub dce_uops: u64,
    /// DCE memory accesses.
    pub dce_loads: u64,
    /// Chain extractions performed.
    pub chain_extractions: u64,
    /// Whether the Branch Runahead structures are present (their leakage
    /// applies whenever present, used or not).
    pub br_present: bool,
}

/// Per-event energies in picojoules and leakage in mW-equivalents.
/// Values are in the range of published 22 nm estimates; only ratios
/// matter for Figure 14.
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    /// Energy per core uop (schedule + execute + bypass), pJ.
    pub core_uop_pj: f64,
    /// Energy per L1 access, pJ.
    pub l1_pj: f64,
    /// Energy per L2 access, pJ.
    pub l2_pj: f64,
    /// Energy per DRAM access, pJ.
    pub dram_pj: f64,
    /// Energy per predictor lookup, pJ.
    pub predictor_pj: f64,
    /// Energy per DCE uop (narrower datapath, banked register file), pJ.
    pub dce_uop_pj: f64,
    /// Energy per chain extraction (CEB scan), pJ.
    pub extraction_pj: f64,
    /// Core + caches leakage per cycle, pJ.
    pub core_leak_pj_per_cycle: f64,
    /// Branch Runahead structures' leakage per cycle, pJ.
    pub br_leak_pj_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            core_uop_pj: 18.0,
            l1_pj: 12.0,
            l2_pj: 50.0,
            dram_pj: 1800.0,
            predictor_pj: 6.0,
            // The DCE datapath is far simpler than the core's (§2.3):
            // no decode, no ROB, single-ported banked register files.
            dce_uop_pj: 7.0,
            extraction_pj: 400.0,
            core_leak_pj_per_cycle: 55.0,
            // 2.2% of core area → proportional leakage.
            br_leak_pj_per_cycle: 1.3,
        }
    }
}

impl EnergyModel {
    /// Total energy for a run, in microjoules.
    #[must_use]
    pub fn total_uj(&self, e: &EnergyEvents) -> f64 {
        let dynamic = e.core_uops as f64 * self.core_uop_pj
            + e.l1_accesses as f64 * self.l1_pj
            + e.l2_accesses as f64 * self.l2_pj
            + e.dram_accesses as f64 * self.dram_pj
            + e.predictor_lookups as f64 * self.predictor_pj
            + e.dce_uops as f64 * self.dce_uop_pj
            + e.dce_loads as f64 * self.l1_pj
            + e.chain_extractions as f64 * self.extraction_pj;
        let leak_rate = self.core_leak_pj_per_cycle
            + if e.br_present {
                self.br_leak_pj_per_cycle
            } else {
                0.0
            };
        (dynamic + e.cycles as f64 * leak_rate) / 1e6
    }

    /// Relative energy change of `with` versus `base` in percent
    /// (negative = Branch Runahead saves energy), Figure 14's metric.
    #[must_use]
    pub fn relative_change_pct(&self, base: &EnergyEvents, with: &EnergyEvents) -> f64 {
        let b = self.total_uj(base);
        let w = self.total_uj(with);
        if b == 0.0 {
            0.0
        } else {
            (w - b) / b * 100.0
        }
    }
}

/// Area of one structure in mm² at the paper's 22 nm process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaBreakdown {
    /// Baseline out-of-order core (§5.2: 16.96 mm²).
    pub core_mm2: f64,
    /// 64 KB TAGE-SC-L (§5.2 footnote 17: 0.73 mm²).
    pub tage_mm2: f64,
    /// Dependence chain cache (0.09 mm²).
    pub chain_cache_mm2: f64,
    /// DCE functional units + reservation stations + registers (0.15 mm²).
    pub dce_exec_mm2: f64,
    /// Chain extraction + HBT (0.14 mm²).
    pub extraction_mm2: f64,
}

impl AreaBreakdown {
    /// The paper's reported numbers for the Mini configuration.
    #[must_use]
    pub fn paper_mini() -> Self {
        AreaBreakdown {
            core_mm2: 16.96,
            tage_mm2: 0.73,
            chain_cache_mm2: 0.09,
            dce_exec_mm2: 0.15,
            extraction_mm2: 0.14,
        }
    }

    /// Total DCE area.
    #[must_use]
    pub fn dce_mm2(&self) -> f64 {
        self.chain_cache_mm2 + self.dce_exec_mm2 + self.extraction_mm2
    }

    /// DCE area as a fraction of the core (§5.2: ≈ 2.2%).
    #[must_use]
    pub fn dce_fraction(&self) -> f64 {
        self.dce_mm2() / self.core_mm2
    }

    /// The Core-Only variant shares execution resources with the core:
    /// only the chain cache and extraction hardware are added (≈ 1.4%).
    #[must_use]
    pub fn core_only_fraction(&self) -> f64 {
        (self.chain_cache_mm2 + self.extraction_mm2) / self.core_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_monotone_in_each_event_class() {
        let m = EnergyModel::default();
        let base = baseline_events();
        let base_uj = m.total_uj(&base);
        for bump in [
            EnergyEvents {
                cycles: base.cycles + 100_000,
                ..base
            },
            EnergyEvents {
                core_uops: base.core_uops + 100_000,
                ..base
            },
            EnergyEvents {
                l1_accesses: base.l1_accesses + 100_000,
                ..base
            },
            EnergyEvents {
                l2_accesses: base.l2_accesses + 100_000,
                ..base
            },
            EnergyEvents {
                dram_accesses: base.dram_accesses + 10_000,
                ..base
            },
            EnergyEvents {
                dce_uops: 100_000,
                ..base
            },
            EnergyEvents {
                chain_extractions: 10_000,
                ..base
            },
        ] {
            assert!(m.total_uj(&bump) > base_uj, "bump must cost energy");
        }
    }

    #[test]
    fn dram_dominates_per_event() {
        let m = EnergyModel::default();
        assert!(m.dram_pj > 10.0 * m.l2_pj);
        assert!(m.l2_pj > m.l1_pj);
        assert!(m.dce_uop_pj < m.core_uop_pj, "the DCE datapath is cheaper");
    }

    fn baseline_events() -> EnergyEvents {
        EnergyEvents {
            cycles: 1_000_000,
            core_uops: 2_000_000,
            l1_accesses: 600_000,
            l2_accesses: 60_000,
            dram_accesses: 6_000,
            predictor_lookups: 300_000,
            ..Default::default()
        }
    }

    #[test]
    fn faster_run_with_dce_saves_energy() {
        // Same work in 25% fewer cycles, plus DCE overhead: Figure 14's
        // typical outcome is a net saving.
        let base = baseline_events();
        let with = EnergyEvents {
            cycles: 750_000,
            dce_uops: 500_000,
            dce_loads: 80_000,
            chain_extractions: 500,
            br_present: true,
            ..base
        };
        let m = EnergyModel::default();
        let delta = m.relative_change_pct(&base, &with);
        assert!(delta < 0.0, "expected energy saving, got {delta:+.1}%");
    }

    #[test]
    fn no_speedup_costs_energy() {
        let base = baseline_events();
        let with = EnergyEvents {
            dce_uops: 700_000,
            dce_loads: 120_000,
            br_present: true,
            ..base
        };
        let m = EnergyModel::default();
        assert!(m.relative_change_pct(&base, &with) > 0.0);
    }

    #[test]
    fn area_matches_paper_numbers() {
        let a = AreaBreakdown::paper_mini();
        assert!((a.dce_mm2() - 0.38).abs() < 1e-9);
        assert!((a.dce_fraction() - 0.022).abs() < 0.002, "≈2.2% of core");
        assert!((a.core_only_fraction() - 0.014).abs() < 0.002, "≈1.4%");
        assert!(a.tage_mm2 < a.core_mm2);
    }

    #[test]
    fn energy_zero_base_guard() {
        let m = EnergyModel::default();
        let z = EnergyEvents::default();
        assert_eq!(m.relative_change_pct(&z, &z), 0.0);
    }
}
