//! Shape checks over the experiment drivers: the reproduction target is
//! the *shape* of each figure (who wins, rough factors, crossovers), so
//! these tests pin exactly that on a reduced setup.

use branch_runahead::sim::experiments::{self, ExperimentSetup};
use branch_runahead::workloads::WorkloadParams;

fn setup() -> ExperimentSetup {
    ExperimentSetup {
        params: WorkloadParams {
            scale: 1024,
            iterations: 1_000_000,
            seed: 0x1234,
        },
        max_retired: 60_000,
        workloads: vec!["leela_17".into(), "mcf_06".into(), "bfs".into()],
        regions: vec![(0, 1.0)],
        threads: 1,
        telemetry: branch_runahead::sim::TelemetryConfig::default(),
    }
}

#[test]
fn fig1_shape_chains_beat_history_predictors() {
    let t = experiments::fig1(&setup()).unwrap();
    let mean = t.mean_row();
    let (tage, mtage, chains) = (mean[0], mean[1], mean[2]);
    assert!(
        tage > 20.0,
        "hard branches must be hard for TAGE: {tage:.1}%"
    );
    assert!(
        (mtage - tage).abs() < 15.0,
        "unlimited history ~ limited history on these branches: {mtage:.1} vs {tage:.1}"
    );
    assert!(
        chains < tage / 2.0,
        "dependence chains must at least halve the rate: {chains:.1} vs {tage:.1}"
    );
}

#[test]
fn fig2_chains_short() {
    let t = experiments::fig2(&setup()).unwrap();
    let mean = t.mean_row()[0];
    assert!(
        mean > 1.0 && mean <= 16.0,
        "chains must fit the 16-uop cap: {mean:.1}"
    );
}

#[test]
fn fig3_overhead_bounded() {
    let t = experiments::fig3(&setup()).unwrap();
    let uops = t.mean_row()[0];
    // The DCE adds uops, but Branch Runahead also removes wrong-path work
    // (fewer mispredictions → fewer squashes), so the *net* change can be
    // negative on misprediction-bound kernels. The paper's claim to check
    // is the upper bound: far below SlipStream's +85%.
    assert!(
        uops < 80.0,
        "chain filtering must keep overhead far below SlipStream's 85%: {uops:.1}%"
    );
    assert!(
        uops > -80.0,
        "net issued-uop change implausibly negative: {uops:.1}%"
    );
}

#[test]
fn fig5_guard_chains_exist() {
    let t = experiments::fig5(&setup()).unwrap();
    // leela has an explicit guard structure; its chains must reflect it.
    let leela = t.value("leela_17", "with-ag").expect("leela row");
    assert!(
        leela > 5.0,
        "leela chains should see affector/guards: {leela:.1}%"
    );
}

#[test]
fn fig11_bottom_initiation_ordering() {
    let t = experiments::fig11_bottom(&setup()).unwrap();
    let m = t.mean_row();
    let (nonspec, indep, pred) = (m[0], m[1], m[2]);
    // The paper's ordering: predictive ≥ independent-early ≥ non-spec
    // (allowing noise on reduced runs).
    assert!(
        pred >= nonspec - 5.0,
        "predictive should not lose to non-speculative: {pred:.1} vs {nonspec:.1}"
    );
    assert!(
        pred >= indep - 5.0,
        "predictive should not lose to independent-early: {pred:.1} vs {indep:.1}"
    );
}

#[test]
fn fig12_fractions_partition() {
    let t = experiments::fig12(&setup()).unwrap();
    for (w, vals) in &t.rows {
        let sum: f64 = vals.iter().sum();
        assert!(
            (sum - 100.0).abs() < 1.0,
            "{w}: breakdown must sum to 100%: {sum:.2}"
        );
    }
    // Used predictions must be overwhelmingly correct (Figure 12's first
    // observation).
    let m = t.mean_row();
    let (incorrect, correct) = (m[3], m[4]);
    assert!(
        correct > incorrect * 5.0,
        "used predictions must be accurate: {correct:.1}% vs {incorrect:.1}%"
    );
}

#[test]
fn fig14_energy_not_catastrophic() {
    let t = experiments::fig14(&setup()).unwrap();
    let m = t.mean_row();
    // Figure 14: BR decreases energy on average (run-time savings); allow
    // modest increases on reduced runs but nothing catastrophic.
    for (name, v) in t.series.iter().zip(&m) {
        assert!(*v < 15.0, "{name}: energy blew up: {v:+.1}%");
    }
    // Mini should be at least as good as Big on energy (Big burns more).
    assert!(m[1] <= m[2] + 5.0, "mini {:.1} vs big {:.1}", m[1], m[2]);
}

#[test]
fn ablations_do_not_beat_the_full_design_badly() {
    let t = experiments::ablations(&setup()).unwrap();
    let m = t.mean_row();
    let (full, inorder, noag) = (m[0], m[1], m[2]);
    // The full design should be at least competitive with each ablation
    // (small noise margins on reduced runs).
    assert!(
        full >= inorder - 8.0,
        "out-of-order DCE scheduling should not lose: full {full:.1} vs in-order {inorder:.1}"
    );
    assert!(
        full >= noag - 8.0,
        "affector/guard detection should not lose: full {full:.1} vs no-ag {noag:.1}"
    );
    assert!(full > 20.0, "the full design must deliver: {full:.1}%");
}

/// Seed stability: the headline improvement should not be an artifact of
/// one particular random dataset. Run explicitly with
/// `cargo test --test figures_smoke -- --ignored`.
#[test]
#[ignore = "multi-seed sweep: ~a minute of simulation"]
fn fig10_stable_across_seeds() {
    let mut means = Vec::new();
    for seed in [0x1111u64, 0x2222, 0x3333] {
        let mut s = setup();
        s.params.seed = seed;
        let (mpki, _) = experiments::fig10(&s).unwrap();
        means.push(mpki.mean_row()[2]); // mini column
    }
    let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(min > 20.0, "mini BR must deliver on every seed: {means:?}");
    assert!(
        max - min < 35.0,
        "improvement too seed-sensitive: {means:?}"
    );
}

#[test]
fn merge_point_accuracy_high() {
    let t = experiments::merge_point(&setup()).unwrap();
    for (w, vals) in &t.rows {
        let (acc, validated) = (vals[0], vals[1]);
        if validated >= 3.0 {
            assert!(
                acc > 60.0,
                "{w}: merge-point accuracy too low: {acc:.0}% over {validated} samples"
            );
        }
    }
}
