//! # br-sim — full-system composition and experiment drivers
//!
//! Assembles the substrates into the paper's evaluated system: the
//! out-of-order core (`br-ooo`, Table 1), the shared memory hierarchy
//! (`br-mem`), a baseline predictor (`br-predictor`), optionally Branch
//! Runahead (`br-core`, Table 2), running a synthetic benchmark kernel
//! (`br-workloads`).
//!
//! The [`experiments`] module regenerates every table and figure of the
//! paper's evaluation (§5): run
//! `cargo run --release -p br-bench --bin figures -- <exp>` or call the
//! per-figure functions directly.
//!
//! ```no_run
//! use br_sim::{SimConfig, System};
//! use br_workloads::{workload_by_name, WorkloadParams};
//!
//! let w = workload_by_name("leela_17").unwrap();
//! let image = w.build(&WorkloadParams::default());
//! let mut sys = System::new(SimConfig::mini_br(), &image);
//! let result = sys.run();
//! println!("IPC {:.3}, MPKI {:.2}", result.ipc(), result.mpki());
//! ```

#![warn(missing_docs)]
// Production paths report failures as typed `SimError`s; `unwrap`/`expect`
// are reserved for genuine impossibilities (tests keep their idiom).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod config;
pub mod experiments;
pub mod faults;
mod job;
mod runner;
mod system;
mod table;

pub use br_telemetry::{TelemetryConfig, TelemetryRun};
pub use config::{render_table2, PredictorKind, SimConfig};
pub use faults::{run_soak, FaultKind, FaultSpec, FaultStats, SoakReport};
pub use job::{SimError, SimJob};
pub use runner::{aggregate, resolve_threads, run_jobs, run_jobs_partial};
pub use system::{RunResult, System, SystemHooks};
pub use table::ExpTable;
