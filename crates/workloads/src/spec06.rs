//! SPEC CPU2006 Integer-like kernels.

use br_isa::{reg, Cond, MemOperand, MemoryImage, ProgramBuilder};

use crate::util::{emit_do_work, emit_xorshift, pow2_scale, XorShift64};
use crate::workload::{Suite, Workload, WorkloadImage, WorkloadParams};

const TABLE_A: u64 = 0x40_0000;
const TABLE_B: u64 = 0x50_0000;

/// `astar_06`: grid pathfinding. Loads a random cell's terrain cost and
/// branches on passability; a guarded branch consults the heuristic map.
#[derive(Clone, Copy, Debug, Default)]
pub struct Astar06;

impl Workload for Astar06 {
    fn name(&self) -> &'static str {
        "astar_06"
    }

    fn suite(&self) -> Suite {
        Suite::Spec2006
    }

    fn description(&self) -> &'static str {
        "grid expansion: branch on loaded terrain cost, guarded heuristic test"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let n = pow2_scale(params.scale, 256);
        let mut rng = XorShift64::new(params.seed ^ 0x6173_7436);
        let mut mem = MemoryImage::new();
        let grid: Vec<u64> = (0..n).map(|_| rng.below(16)).collect();
        mem.write_u64_slice(TABLE_A, &grid);
        let heur: Vec<u64> = (0..n).map(|_| rng.below(256)).collect();
        mem.write_u64_slice(TABLE_B, &heur);

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R12, TABLE_A as i64);
        b.mov_imm(reg::R14, TABLE_B as i64);
        b.mov_imm(reg::R10, params.seed as i64);
        let top = b.here();
        emit_xorshift(&mut b, reg::R10, reg::R11);
        b.and(reg::R5, reg::R10, (n - 1) as i64);
        // if (grid[pos] < 8) — passable, ~50%
        b.load(reg::R6, MemOperand::base_index(reg::R12, reg::R5, 8, 0));
        b.cmpi(reg::R6, 8);
        b.br(Cond::Ge, skip);
        // guarded: if (heur[pos] & 1) open-list insert
        b.load(reg::R7, MemOperand::base_index(reg::R14, reg::R5, 8, 0));
        b.and(reg::R7, reg::R7, 1i64);
        b.cmpi(reg::R7, 0);
        b.br(Cond::Eq, skip);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        emit_do_work(&mut b, 4);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("astar_06 assembles").into(),
            memory: mem,
        }
    }
}

/// `mcf_06`: like `mcf_17` but with a *two-deep* dependent-load chain
/// (node → arc → cost), stressing chain timeliness.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mcf06;

impl Workload for Mcf06 {
    fn name(&self) -> &'static str {
        "mcf_06"
    }

    fn suite(&self) -> Suite {
        Suite::Spec2006
    }

    fn description(&self) -> &'static str {
        "network simplex: two dependent loads feeding the cost-sign branch"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        // Like mcf_17: a large, cache-hostile footprint.
        let n = pow2_scale(params.scale * 16, 1024);
        let mut rng = XorShift64::new(params.seed ^ 0x6d63_6636);
        let mut mem = MemoryImage::new();
        let idx: Vec<u64> = (0..n).map(|_| rng.below(n)).collect();
        mem.write_u64_slice(TABLE_A, &idx);
        let costs: Vec<u64> = (0..n)
            .map(|_| (rng.next_u64() as i64 >> 1) as u64)
            .collect();
        mem.write_u64_slice(TABLE_B, &costs);

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R12, TABLE_A as i64);
        b.mov_imm(reg::R14, TABLE_B as i64);
        b.mov_imm(reg::R10, params.seed as i64);
        let top = b.here();
        emit_xorshift(&mut b, reg::R10, reg::R11);
        b.and(reg::R5, reg::R10, (n - 1) as i64);
        // arc = idx[node]; cost = costs[arc]
        b.load(reg::R6, MemOperand::base_index(reg::R12, reg::R5, 8, 0));
        b.load(reg::R7, MemOperand::base_index(reg::R14, reg::R6, 8, 0));
        b.cmpi(reg::R7, 0);
        b.br(Cond::Ge, skip);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        emit_do_work(&mut b, 5);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("mcf_06 assembles").into(),
            memory: mem,
        }
    }
}

/// `gcc_06`: IR-node dispatch. Loads a node kind (0..7) and resolves it
/// with a cascade of three compares — the first branches *guard* the
/// later ones, giving a rich affector/guard web.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gcc06;

impl Workload for Gcc06 {
    fn name(&self) -> &'static str {
        "gcc_06"
    }

    fn suite(&self) -> Suite {
        Suite::Spec2006
    }

    fn description(&self) -> &'static str {
        "IR dispatch: compare cascade over a loaded node kind (guard web)"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let n = pow2_scale(params.scale, 256);
        let mut rng = XorShift64::new(params.seed ^ 0x6763_6336);
        let mut mem = MemoryImage::new();
        let kinds: Vec<u64> = (0..n).map(|_| rng.below(8)).collect();
        mem.write_u64_slice(TABLE_A, &kinds);

        let mut b = ProgramBuilder::new();
        let done = b.new_label();
        let c1 = b.new_label();
        let c2 = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R12, TABLE_A as i64);
        b.mov_imm(reg::R10, params.seed as i64);
        let top = b.here();
        emit_xorshift(&mut b, reg::R10, reg::R11);
        b.and(reg::R5, reg::R10, (n - 1) as i64);
        b.load(reg::R6, MemOperand::base_index(reg::R12, reg::R5, 8, 0));
        // kind == 0 ?
        b.cmpi(reg::R6, 0);
        b.br(Cond::Ne, c1);
        b.addi(reg::R2, reg::R2, 1);
        b.jmp(done);
        b.bind(c1);
        // kind < 3 ?
        b.cmpi(reg::R6, 3);
        b.br(Cond::Ge, c2);
        b.addi(reg::R3, reg::R3, 1);
        b.jmp(done);
        b.bind(c2);
        // kind < 6 ?
        b.cmpi(reg::R6, 6);
        b.br(Cond::Ge, done);
        b.addi(reg::R4, reg::R4, 1);
        b.bind(done);
        emit_do_work(&mut b, 4);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("gcc_06 assembles").into(),
            memory: mem,
        }
    }
}

/// `gobmk_06`: GO board reading with *writes to the board* — the branch's
/// source data is modified by earlier guarded stores, exercising the
/// store→load pair handling in chain extraction.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gobmk06;

impl Workload for Gobmk06 {
    fn name(&self) -> &'static str {
        "gobmk_06"
    }

    fn suite(&self) -> Suite {
        Suite::Spec2006
    }

    fn description(&self) -> &'static str {
        "board reading: branch on a board cell that guarded stores mutate"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let n = pow2_scale(params.scale, 256);
        let mut rng = XorShift64::new(params.seed ^ 0x676f_6236);
        let mut mem = MemoryImage::new();
        let board: Vec<u64> = (0..n).map(|_| rng.below(4)).collect();
        mem.write_u64_slice(TABLE_A, &board);

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R12, TABLE_A as i64);
        b.mov_imm(reg::R10, params.seed as i64);
        let top = b.here();
        emit_xorshift(&mut b, reg::R10, reg::R11);
        b.and(reg::R5, reg::R10, (n - 1) as i64);
        // v = board[sq]; if ((v & 3) == 0) — stone placement
        b.load(reg::R6, MemOperand::base_index(reg::R12, reg::R5, 8, 0));
        b.and(reg::R7, reg::R6, 3i64);
        b.cmpi(reg::R7, 0);
        b.br(Cond::Ne, skip);
        // Guarded store: mutate a neighbouring cell (affects future reads).
        b.shr(reg::R4, reg::R10, 23i64);
        b.and(reg::R4, reg::R4, (n - 1) as i64);
        b.addi(reg::R6, reg::R6, 1);
        b.store(MemOperand::base_index(reg::R12, reg::R4, 8, 0), reg::R6);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        emit_do_work(&mut b, 4);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("gobmk_06 assembles").into(),
            memory: mem,
        }
    }
}

/// `bzip2_06`: block-sort comparisons. Loads two elements at
/// pseudo-random positions and branches on their order; the guarded path
/// swaps them (stores), perturbing future comparisons.
#[derive(Clone, Copy, Debug, Default)]
pub struct Bzip206;

impl Workload for Bzip206 {
    fn name(&self) -> &'static str {
        "bzip2_06"
    }

    fn suite(&self) -> Suite {
        Suite::Spec2006
    }

    fn description(&self) -> &'static str {
        "block sort: order compare of two loaded keys with guarded swap"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let n = pow2_scale(params.scale, 256);
        let mut rng = XorShift64::new(params.seed ^ 0x627a_3036);
        let mut mem = MemoryImage::new();
        let keys: Vec<u64> = (0..n).map(|_| rng.below(1 << 30)).collect();
        mem.write_u64_slice(TABLE_A, &keys);

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R12, TABLE_A as i64);
        b.mov_imm(reg::R10, params.seed as i64);
        let top = b.here();
        emit_xorshift(&mut b, reg::R10, reg::R11);
        b.and(reg::R5, reg::R10, (n - 1) as i64);
        b.shr(reg::R6, reg::R10, 29i64);
        b.and(reg::R6, reg::R6, (n - 1) as i64);
        // a = keys[i]; b = keys[j]; if (a < b) swap
        b.load(reg::R7, MemOperand::base_index(reg::R12, reg::R5, 8, 0));
        b.load(reg::R4, MemOperand::base_index(reg::R12, reg::R6, 8, 0));
        b.cmp(reg::R7, reg::R4);
        b.br(Cond::Uge, skip);
        b.store(MemOperand::base_index(reg::R12, reg::R5, 8, 0), reg::R4);
        b.store(MemOperand::base_index(reg::R12, reg::R6, 8, 0), reg::R7);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        emit_do_work(&mut b, 3);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("bzip2_06 assembles").into(),
            memory: mem,
        }
    }
}

/// `sjeng_06`: chess evaluation. The branch compares the *difference* of
/// two table loads — a slightly longer arithmetic slice than a plain
/// probe.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sjeng06;

impl Workload for Sjeng06 {
    fn name(&self) -> &'static str {
        "sjeng_06"
    }

    fn suite(&self) -> Suite {
        Suite::Spec2006
    }

    fn description(&self) -> &'static str {
        "evaluation: branch on the difference of two loaded piece values"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let n = pow2_scale(params.scale, 256);
        let mut rng = XorShift64::new(params.seed ^ 0x736a_3036);
        let mut mem = MemoryImage::new();
        let us: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
        mem.write_u64_slice(TABLE_A, &us);
        let them: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
        mem.write_u64_slice(TABLE_B, &them);

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R12, TABLE_A as i64);
        b.mov_imm(reg::R14, TABLE_B as i64);
        b.mov_imm(reg::R10, params.seed as i64);
        let top = b.here();
        emit_xorshift(&mut b, reg::R10, reg::R11);
        b.and(reg::R5, reg::R10, (n - 1) as i64);
        b.shr(reg::R6, reg::R10, 31i64);
        b.and(reg::R6, reg::R6, (n - 1) as i64);
        // score = us[i] - them[j]; if (score < 0) prune
        b.load(reg::R7, MemOperand::base_index(reg::R12, reg::R5, 8, 0));
        b.load(reg::R4, MemOperand::base_index(reg::R14, reg::R6, 8, 0));
        b.sub(reg::R7, reg::R7, reg::R4);
        b.cmpi(reg::R7, 0);
        b.br(Cond::Ge, skip);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        emit_do_work(&mut b, 5);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("sjeng_06 assembles").into(),
            memory: mem,
        }
    }
}

/// `omnetpp_06`: message scheduling with an accumulated virtual clock; the
/// branch tests a bit of the accumulated (data-dependent) time.
#[derive(Clone, Copy, Debug, Default)]
pub struct Omnetpp06;

impl Workload for Omnetpp06 {
    fn name(&self) -> &'static str {
        "omnetpp_06"
    }

    fn suite(&self) -> Suite {
        Suite::Spec2006
    }

    fn description(&self) -> &'static str {
        "scheduler: branch on a bit of an accumulated loaded delay"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let n = pow2_scale(params.scale, 256);
        let mut rng = XorShift64::new(params.seed ^ 0x6f6d_3036);
        let mut mem = MemoryImage::new();
        let delays: Vec<u64> = (0..n).map(|_| rng.below(512)).collect();
        mem.write_u64_slice(TABLE_A, &delays);

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R3, 0); // virtual clock
        b.mov_imm(reg::R12, TABLE_A as i64);
        b.mov_imm(reg::R10, params.seed as i64);
        let top = b.here();
        emit_xorshift(&mut b, reg::R10, reg::R11);
        b.and(reg::R5, reg::R10, (n - 1) as i64);
        // clock += delays[msg]; if (clock & 0x100) deliver
        b.load(reg::R6, MemOperand::base_index(reg::R12, reg::R5, 8, 0));
        b.add(reg::R3, reg::R3, reg::R6);
        b.and(reg::R7, reg::R3, 0x100i64);
        b.cmpi(reg::R7, 0);
        b.br(Cond::Eq, skip);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        emit_do_work(&mut b, 4);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("omnetpp_06 assembles").into(),
            memory: mem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_isa::Machine;

    #[test]
    fn gcc_cascade_covers_all_arms() {
        let image = Gcc06.build(&WorkloadParams {
            scale: 256,
            iterations: 800,
            seed: 21,
        });
        let mut m = Machine::new(image.memory.into_memory());
        m.run(&image.program, 2_000_000).unwrap();
        // kind==0 in r2, kind in 1..3 in r3, kind in 3..6 in r4.
        let (r2, r3, r4) = (m.reg(reg::R2), m.reg(reg::R3), m.reg(reg::R4));
        assert!(r2 > 40 && r3 > 100 && r4 > 150, "arms: {r2} {r3} {r4}");
        let rest = 800 - r2 - r3 - r4;
        assert!(rest > 100, "default arm starved: {rest}");
    }

    #[test]
    fn bzip2_swaps_progress_toward_sortedness() {
        let image = Bzip206.build(&WorkloadParams {
            scale: 128,
            iterations: 600,
            seed: 13,
        });
        let mut m = Machine::new(image.memory.into_memory());
        m.run(&image.program, 3_000_000).unwrap();
        assert!(m.reg(reg::R2) > 100, "swap branch should fire");
    }

    #[test]
    fn mcf06_has_dependent_loads() {
        let image = Mcf06.build(&WorkloadParams::default());
        // Two loads where the second's index register is the first's dst.
        let mut found = false;
        let uops: Vec<_> = image.program.iter().collect();
        for w in uops.windows(2) {
            if let (br_isa::UopKind::Load { dst, .. }, br_isa::UopKind::Load { addr, .. }) =
                (w[0].kind, w[1].kind)
            {
                if addr.index == Some(dst) || addr.base == Some(dst) {
                    found = true;
                }
            }
        }
        assert!(found, "dependent load pair missing");
    }
}
