//! # br-telemetry — time-resolved observability for the simulator stack
//!
//! The paper's evaluation is about *when* things happen — predictions
//! arriving too late, throttled windows, DCE occupancy under contention —
//! but end-of-run statistics flatten all of it. This crate adds the
//! missing time axis with three primitives:
//!
//! * a [`Metrics`] registry — named counters, gauges, and log2-bucketed
//!   [`Histogram`]s — behind the [`Telemetry`] facade, whose disabled
//!   path is a single predictable branch (no trait objects, no generics
//!   leaking into component types; verified by `telemetry_bench`),
//! * an interval time series of [`Sample`]s (IPC, MPKI, coverage/late/
//!   throttle rates, queue depths, chain-cache hit rate every N retired
//!   uops), driven by the `br-sim` system loop,
//! * a bounded [`EventRing`] of discrete [`TraceEvent`]s (chain
//!   extraction/rejection, HBT churn, WPB merge hits, DCE flush/sync,
//!   recoveries).
//!
//! Per-run output is folded into a [`TelemetryRun`], which the [`export`]
//! module renders as Chrome `trace_event` JSON, JSONL, or CSV — all pure
//! string transforms, so "byte-identical across worker-thread counts" is
//! a testable property.
//!
//! ```
//! use br_telemetry::{EventKind, Telemetry};
//!
//! let mut t = Telemetry::on(1024);
//! let retired = t.counter("core.retired_uops");
//! t.add(retired, 4);
//! t.event(100, EventKind::Recovery, 0x40, 12);
//! assert_eq!(t.counter_value("core.retired_uops"), Some(4));
//!
//! let off = Telemetry::off();          // all updates are no-ops
//! assert!(!off.is_on());
//! ```

#![warn(missing_docs)]

mod events;
pub mod export;
mod metrics;
mod sample;

pub use events::{EventKind, EventRing, TraceEvent};
pub use metrics::{CounterId, GaugeId, HistId, Histogram, Metrics, HIST_BUCKETS};
pub use sample::{json_f64, Sample};

/// Telemetry collection knobs, carried inside the simulation
/// configuration so every job is self-describing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch. Disabled (the default) means every instrumentation
    /// site is a no-op and runs produce no [`TelemetryRun`].
    pub enabled: bool,
    /// Retired uops between interval samples.
    pub sample_interval: u64,
    /// Event-ring capacity per sink (the trace keeps the most recent
    /// window; older events are counted as dropped).
    pub event_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            sample_interval: 10_000,
            event_capacity: 65_536,
        }
    }
}

#[derive(Clone, Debug)]
struct Inner {
    metrics: Metrics,
    events: EventRing,
}

/// A telemetry sink owned by an instrumented component (the core, the
/// Branch Runahead engine). Everything is a no-op when constructed with
/// [`Telemetry::off`] — updates cost one branch on a `None` discriminant
/// — so components embed a `Telemetry` unconditionally and never carry
/// generics or feature gates for it.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Box<Inner>>,
}

impl Telemetry {
    /// A disabled sink: every operation is a no-op.
    #[must_use]
    pub fn off() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled sink whose event ring holds `event_capacity` events.
    #[must_use]
    pub fn on(event_capacity: usize) -> Self {
        Telemetry {
            inner: Some(Box::new(Inner {
                metrics: Metrics::default(),
                events: EventRing::new(event_capacity),
            })),
        }
    }

    /// Builds a sink per the configuration's master switch.
    #[must_use]
    pub fn from_config(cfg: &TelemetryConfig) -> Self {
        if cfg.enabled {
            Telemetry::on(cfg.event_capacity)
        } else {
            Telemetry::off()
        }
    }

    /// Whether this sink records anything.
    #[inline]
    #[must_use]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or finds) a counter. On a disabled sink the returned id
    /// is inert (updates through it are dropped with the rest).
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.inner
            .as_mut()
            .map_or(CounterId::default(), |i| i.metrics.counter(name))
    }

    /// Registers (or finds) a gauge.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        self.inner
            .as_mut()
            .map_or(GaugeId::default(), |i| i.metrics.gauge(name))
    }

    /// Registers (or finds) a histogram.
    pub fn histogram(&mut self, name: &'static str) -> HistId {
        self.inner
            .as_mut()
            .map_or(HistId::default(), |i| i.metrics.histogram(name))
    }

    /// Adds `delta` to a counter (no-op when disabled).
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        if let Some(i) = &mut self.inner {
            i.metrics.add(id, delta);
        }
    }

    /// Sets a gauge (no-op when disabled).
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, value: i64) {
        if let Some(i) = &mut self.inner {
            i.metrics.set_gauge(id, value);
        }
    }

    /// Records a histogram value (no-op when disabled).
    #[inline]
    pub fn record(&mut self, id: HistId, value: u64) {
        if let Some(i) = &mut self.inner {
            i.metrics.record(id, value);
        }
    }

    /// Traces a discrete event (no-op when disabled).
    #[inline]
    pub fn event(&mut self, cycle: u64, kind: EventKind, pc: u64, arg: u64) {
        if let Some(i) = &mut self.inner {
            i.events.push(TraceEvent {
                cycle,
                kind,
                pc,
                arg,
            });
        }
    }

    /// Current value of a counter by name (None when disabled or
    /// unregistered).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner
            .as_ref()
            .and_then(|i| i.metrics.counter_value(name))
    }

    /// Consumes the sink, returning its registry and event ring (None for
    /// a disabled sink).
    #[must_use]
    pub fn drain(self) -> Option<(Metrics, EventRing)> {
        self.inner.map(|i| (i.metrics, i.events))
    }
}

/// The collected telemetry of one simulation run: the interval time
/// series plus the merged metrics and event traces of every sink that
/// observed the run.
#[derive(Clone, Debug, Default)]
pub struct TelemetryRun {
    /// Interval samples in time order.
    pub samples: Vec<Sample>,
    /// Traced events merged across sinks, nondecreasing in cycle.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring-buffer bounds, summed across sinks.
    pub dropped_events: u64,
    /// Final counter values, in sink order then registration order.
    pub counters: Vec<(String, u64)>,
    /// Final gauge values, in sink order then registration order.
    pub gauges: Vec<(String, i64)>,
    /// Final histograms, in sink order then registration order.
    pub histograms: Vec<(String, Histogram)>,
}

impl TelemetryRun {
    /// Folds the interval time series and the drained sinks into one run
    /// record. Sink order is significant and must be deterministic
    /// (callers pass e.g. `[core_sink, br_sink]`): counters concatenate
    /// in that order and event streams — each already nondecreasing in
    /// cycle, since components observe cycles monotonically — are
    /// stably merged by cycle with earlier sinks winning ties.
    #[must_use]
    pub fn collect(samples: Vec<Sample>, sinks: Vec<Telemetry>) -> Self {
        let mut run = TelemetryRun {
            samples,
            ..TelemetryRun::default()
        };
        for sink in sinks {
            let Some((metrics, ring)) = sink.drain() else {
                continue;
            };
            for (name, v) in metrics.counters() {
                run.counters.push((name.to_string(), v));
            }
            for (name, v) in metrics.gauges() {
                run.gauges.push((name.to_string(), v));
            }
            for (name, h) in metrics.histograms() {
                run.histograms.push((name.to_string(), h.clone()));
            }
            let (events, dropped) = ring.into_parts();
            run.dropped_events += dropped;
            run.events = merge_by_cycle(std::mem::take(&mut run.events), events);
        }
        run
    }

    /// Final value of a counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Number of traced events of `kind`.
    #[must_use]
    pub fn event_count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

/// Stable two-way merge of cycle-sorted event streams (`a` wins ties).
fn merge_by_cycle(a: Vec<TraceEvent>, b: Vec<TraceEvent>) -> Vec<TraceEvent> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                if x.cycle <= y.cycle {
                    out.push(ia.next().expect("peeked"));
                } else {
                    out.push(ib.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.extend(ia.by_ref()),
            (None, Some(_)) => out.extend(ib.by_ref()),
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let mut t = Telemetry::off();
        let c = t.counter("x");
        let h = t.histogram("h");
        t.add(c, 5);
        t.record(h, 9);
        t.event(1, EventKind::Recovery, 0, 0);
        assert!(!t.is_on());
        assert_eq!(t.counter_value("x"), None);
        assert!(t.drain().is_none());
    }

    #[test]
    fn from_config_obeys_master_switch() {
        let mut cfg = TelemetryConfig::default();
        assert!(!Telemetry::from_config(&cfg).is_on());
        cfg.enabled = true;
        assert!(Telemetry::from_config(&cfg).is_on());
    }

    #[test]
    fn collect_merges_sinks_deterministically() {
        let mut a = Telemetry::on(16);
        let ca = a.counter("a.n");
        a.add(ca, 1);
        a.event(5, EventKind::Recovery, 1, 0);
        a.event(9, EventKind::Recovery, 2, 0);

        let mut b = Telemetry::on(16);
        let cb = b.counter("b.n");
        b.add(cb, 2);
        b.event(5, EventKind::ChainExtract, 3, 0);
        b.event(7, EventKind::ChainExtract, 4, 0);

        let run = TelemetryRun::collect(Vec::new(), vec![a, b]);
        assert_eq!(run.counter("a.n"), Some(1));
        assert_eq!(run.counter("b.n"), Some(2));
        let cycles: Vec<u64> = run.events.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![5, 5, 7, 9]);
        // Tie at cycle 5: the first sink's event comes first.
        assert_eq!(run.events[0].kind, EventKind::Recovery);
        assert_eq!(run.event_count(EventKind::ChainExtract), 2);
    }

    #[test]
    fn collect_sums_dropped_counts() {
        let mut a = Telemetry::on(1);
        a.event(1, EventKind::Recovery, 0, 0);
        a.event(2, EventKind::Recovery, 0, 0);
        let run = TelemetryRun::collect(Vec::new(), vec![a, Telemetry::off()]);
        assert_eq!(run.dropped_events, 1);
        assert_eq!(run.events.len(), 1);
        assert_eq!(run.events[0].cycle, 2, "ring keeps the newest event");
    }

    #[test]
    fn registration_ids_work_across_reattach() {
        // The same site can register against successive sinks (attach,
        // drain, attach again) and ids stay valid for the current sink.
        let mut t = Telemetry::on(4);
        let c1 = t.counter("n");
        t.add(c1, 1);
        let (m, _) = t.drain().unwrap();
        assert_eq!(m.counter_value("n"), Some(1));

        let mut t2 = Telemetry::on(4);
        let c2 = t2.counter("n");
        t2.add(c2, 7);
        assert_eq!(t2.counter_value("n"), Some(7));
    }
}
