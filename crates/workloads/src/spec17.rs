//! SPEC CPU2017 Integer Speed-like kernels.
//!
//! Each kernel mirrors the dominant hard-to-predict branch structure of
//! one benchmark (as characterised in the paper's §3 and Figure 1), built
//! on pseudo-random data so the branch outcomes carry no history
//! correlation.

use br_isa::{reg, Cond, MemOperand, MemoryImage, ProgramBuilder, Width};

use crate::util::{emit_do_work, emit_xorshift, pow2_scale, XorShift64};
use crate::workload::{Suite, Workload, WorkloadImage, WorkloadParams};

const TABLE_A: u64 = 0x10_0000;
const TABLE_B: u64 = 0x20_0000;
const TABLE_C: u64 = 0x30_0000;

/// `mcf_17`: minimum-cost-flow arc scanning. The hot loop chases a
/// permutation (pointer-like traversal) and branches on the sign of the
/// arc's reduced cost — a value loaded from memory with no history
/// correlation. A second, guarded branch checks residual capacity.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mcf17;

impl Workload for Mcf17 {
    fn name(&self) -> &'static str {
        "mcf_17"
    }

    fn suite(&self) -> Suite {
        Suite::Spec2017
    }

    fn description(&self) -> &'static str {
        "arc scan: pointer-chase + branch on loaded cost sign, guarded capacity check"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        // mcf is memory-bound: a large footprint keeps the arc data out of
        // the L1 and partially out of the L2.
        let n = pow2_scale(params.scale * 16, 1024);
        let mut rng = XorShift64::new(params.seed ^ 0x6d63_6631);
        let mut mem = MemoryImage::new();
        // A random permutation for pointer chasing.
        let mut perm: Vec<u64> = (0..n).collect();
        for i in (1..n as usize).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        mem.write_u64_slice(TABLE_A, &perm);
        // Reduced costs: signed, ~half negative.
        let costs: Vec<u64> = (0..n)
            .map(|_| (rng.next_u64() as i64 >> 1) as u64)
            .collect();
        mem.write_u64_slice(TABLE_B, &costs);
        // Residual capacities 0..15.
        let caps: Vec<u64> = (0..n).map(|_| rng.below(16)).collect();
        mem.write_u64_slice(TABLE_C, &caps);

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R3, 1); // current arc
        b.mov_imm(reg::R12, TABLE_A as i64);
        b.mov_imm(reg::R14, TABLE_B as i64);
        b.mov_imm(reg::R15, TABLE_C as i64);
        let top = b.here();
        // arc = perm[arc]
        b.load(reg::R3, MemOperand::base_index(reg::R12, reg::R3, 8, 0));
        // cost = costs[arc]; if (cost < 0) — hard branch
        b.load(reg::R6, MemOperand::base_index(reg::R14, reg::R3, 8, 0));
        b.cmpi(reg::R6, 0);
        b.br(Cond::Ge, skip);
        // guarded: cap = caps[arc]; if (cap > 7) basket++
        b.load(reg::R7, MemOperand::base_index(reg::R15, reg::R3, 8, 0));
        b.cmpi(reg::R7, 7);
        b.br(Cond::Le, skip);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        emit_do_work(&mut b, 4);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("mcf_17 assembles").into(),
            memory: mem,
        }
    }
}

/// `leela_17`: the paper's Figure 4 motivating example. Random probes of a
/// GO board; branch A tests board emptiness, branch B (guarded by A) tests
/// a second board property.
#[derive(Clone, Copy, Debug, Default)]
pub struct Leela17;

impl Workload for Leela17 {
    fn name(&self) -> &'static str {
        "leela_17"
    }

    fn suite(&self) -> Suite {
        Suite::Spec2017
    }

    fn description(&self) -> &'static str {
        "GO board probe (Fig. 4): empty-square branch guarding a self-atari branch"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let n = pow2_scale(params.scale, 256);
        let mut rng = XorShift64::new(params.seed ^ 0x6c65_656c);
        let mut mem = MemoryImage::new();
        // Board values 0..2; 2 == EMPTY.
        let board: Vec<u64> = (0..n).map(|_| rng.below(3)).collect();
        mem.write_u64_slice(TABLE_A, &board);
        // Atari counts 0..7.
        let atari: Vec<u64> = (0..n).map(|_| rng.below(8)).collect();
        mem.write_u64_slice(TABLE_B, &atari);

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R12, TABLE_A as i64);
        b.mov_imm(reg::R14, TABLE_B as i64);
        b.mov_imm(reg::R10, params.seed as i64);
        let top = b.here();
        emit_xorshift(&mut b, reg::R10, reg::R11);
        b.and(reg::R5, reg::R10, (n - 1) as i64);
        // Branch A: board[sq] == EMPTY?
        b.load(reg::R6, MemOperand::base_index(reg::R12, reg::R5, 8, 0));
        b.cmpi(reg::R6, 2);
        b.br(Cond::Ne, skip);
        // Branch B (guarded by A): not self-atari?
        b.load(reg::R7, MemOperand::base_index(reg::R14, reg::R5, 8, 0));
        b.sar(reg::R4, reg::R7, 1i64);
        b.and(reg::R4, reg::R4, 3i64);
        b.cmpi(reg::R4, 1);
        b.br(Cond::Le, skip);
        b.addi(reg::R2, reg::R2, 1); // do_work() entered
        b.bind(skip);
        emit_do_work(&mut b, 5);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("leela_17 assembles").into(),
            memory: mem,
        }
    }
}

/// `xz_17`: LZMA-style match scanning. An inner loop compares bytes at two
/// pseudo-random windows; its exit is data-dependent with a short,
/// erratic trip count — the classic hard inner-loop branch.
#[derive(Clone, Copy, Debug, Default)]
pub struct Xz17;

impl Workload for Xz17 {
    fn name(&self) -> &'static str {
        "xz_17"
    }

    fn suite(&self) -> Suite {
        Suite::Spec2017
    }

    fn description(&self) -> &'static str {
        "match-length scan: byte-compare loop with data-dependent exit"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let n = pow2_scale(params.scale * 4, 1024);
        let mut rng = XorShift64::new(params.seed ^ 0x787a_3137);
        let mut mem = MemoryImage::new();
        // Byte data with ~50% chance of matching at equal offsets: use a
        // 2-symbol alphabet so match runs are geometric.
        for i in 0..n {
            mem.write_byte(TABLE_A + i, (rng.next_u64() & 1) as u8);
        }

        let mut b = ProgramBuilder::new();
        let outer_end = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R12, TABLE_A as i64);
        b.mov_imm(reg::R10, params.seed as i64);
        let top = b.here();
        // Two random windows p (r5), q (r6).
        emit_xorshift(&mut b, reg::R10, reg::R11);
        b.and(reg::R5, reg::R10, (n / 2 - 1) as i64);
        b.shr(reg::R6, reg::R10, 17i64);
        b.and(reg::R6, reg::R6, (n / 2 - 1) as i64);
        b.mov_imm(reg::R4, 0); // k
        let scan = b.here();
        let mismatch = b.new_label();
        // data[p+k] vs data[q+k]
        b.add(reg::R3, reg::R5, reg::R4);
        b.load_w(
            reg::R7,
            MemOperand::base_index(reg::R12, reg::R3, 1, 0),
            Width::B1,
            false,
        );
        b.add(reg::R3, reg::R6, reg::R4);
        b.load_w(
            reg::R15,
            MemOperand::base_index(reg::R12, reg::R3, 1, 0),
            Width::B1,
            false,
        );
        b.cmp(reg::R7, reg::R15);
        b.br(Cond::Ne, mismatch); // hard: geometric exit
        b.addi(reg::R4, reg::R4, 1);
        b.cmpi(reg::R4, 8);
        b.br(Cond::Ne, scan);
        b.bind(mismatch);
        b.add(reg::R2, reg::R2, reg::R4); // total match length
        emit_do_work(&mut b, 3);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.bind(outer_end);
        b.halt();
        WorkloadImage {
            program: b.build().expect("xz_17 assembles").into(),
            memory: mem,
        }
    }
}

/// `deepsjeng_17`: chess transposition-table probing. A hash lookup loads
/// an entry whose bound flag decides the branch; a guarded branch compares
/// the stored score.
#[derive(Clone, Copy, Debug, Default)]
pub struct Deepsjeng17;

impl Workload for Deepsjeng17 {
    fn name(&self) -> &'static str {
        "deepsjeng_17"
    }

    fn suite(&self) -> Suite {
        Suite::Spec2017
    }

    fn description(&self) -> &'static str {
        "transposition-table probe: branch on hashed entry flag, guarded score compare"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let n = pow2_scale(params.scale, 256);
        let mut rng = XorShift64::new(params.seed ^ 0x646a_3137);
        let mut mem = MemoryImage::new();
        // Entries: [flag (0..3), score (signed)] interleaved, 16B apart.
        for i in 0..n {
            mem.write(TABLE_A + i * 16, Width::B8, rng.below(4));
            mem.write(
                TABLE_A + i * 16 + 8,
                Width::B8,
                (rng.next_u64() as i64 >> 1) as u64,
            );
        }

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R12, TABLE_A as i64);
        b.mov_imm(reg::R10, params.seed as i64);
        let top = b.here();
        emit_xorshift(&mut b, reg::R10, reg::R11);
        b.and(reg::R5, reg::R10, (n - 1) as i64);
        b.shl(reg::R5, reg::R5, 4i64); // ×16
                                       // flag = entry.flag; if (flag >= 2) — hard branch (~50%)
        b.load(reg::R6, MemOperand::base_index(reg::R12, reg::R5, 1, 0));
        b.cmpi(reg::R6, 2);
        b.br(Cond::Lt, skip);
        // guarded: if (entry.score > 0) cutoffs++
        b.load(reg::R7, MemOperand::base_index(reg::R12, reg::R5, 1, 8));
        b.cmpi(reg::R7, 0);
        b.br(Cond::Le, skip);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        emit_do_work(&mut b, 5);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("deepsjeng_17 assembles").into(),
            memory: mem,
        }
    }
}

/// `omnetpp_17`: discrete-event queue maintenance. Compares two event
/// timestamps loaded from a heap-like array and conditionally *stores* the
/// winner back — creating store→load (affector-through-memory) structure.
#[derive(Clone, Copy, Debug, Default)]
pub struct Omnetpp17;

impl Workload for Omnetpp17 {
    fn name(&self) -> &'static str {
        "omnetpp_17"
    }

    fn suite(&self) -> Suite {
        Suite::Spec2017
    }

    fn description(&self) -> &'static str {
        "event-queue sift: timestamp compare with conditional store-back"
    }

    fn build(&self, params: &WorkloadParams) -> WorkloadImage {
        let n = pow2_scale(params.scale, 256);
        let mut rng = XorShift64::new(params.seed ^ 0x6f6d_3137);
        let mut mem = MemoryImage::new();
        let stamps: Vec<u64> = (0..n).map(|_| rng.below(1 << 20)).collect();
        mem.write_u64_slice(TABLE_A, &stamps);

        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.mov_imm(reg::R0, 0);
        b.mov_imm(reg::R12, TABLE_A as i64);
        b.mov_imm(reg::R10, params.seed as i64);
        let top = b.here();
        emit_xorshift(&mut b, reg::R10, reg::R11);
        b.and(reg::R5, reg::R10, (n - 2) as i64);
        // t1 = heap[j], t2 = heap[j+1]; if (t1 < t2) — hard branch
        b.load(reg::R6, MemOperand::base_index(reg::R12, reg::R5, 8, 0));
        b.load(reg::R7, MemOperand::base_index(reg::R12, reg::R5, 8, 8));
        b.cmp(reg::R6, reg::R7);
        b.br(Cond::Uge, skip);
        // Sift: write the smaller stamp upward (perturbs future loads —
        // the memory-aliasing behaviour §3 discusses).
        b.shr(reg::R4, reg::R5, 1i64);
        b.addi(reg::R6, reg::R6, 1);
        b.store(MemOperand::base_index(reg::R12, reg::R4, 8, 0), reg::R6);
        b.addi(reg::R2, reg::R2, 1);
        b.bind(skip);
        emit_do_work(&mut b, 4);
        b.addi(reg::R0, reg::R0, 1);
        b.cmpi(reg::R0, params.iterations as i64);
        b.br(Cond::Ne, top);
        b.halt();
        WorkloadImage {
            program: b.build().expect("omnetpp_17 assembles").into(),
            memory: mem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_isa::Machine;

    #[test]
    fn leela_guard_structure_present() {
        // Branch B executes only in iterations where branch A was
        // not-taken (board[sq] == EMPTY).
        let w = Leela17;
        let image = w.build(&WorkloadParams {
            scale: 256,
            iterations: 300,
            seed: 11,
        });
        let mut m = Machine::new(image.memory.into_memory());
        let mut a_nt = 0u64;
        let mut b_seen = 0u64;
        // Locate branch pcs: first two conditional branches in program
        // order are A then B.
        let branches: Vec<u64> = image
            .program
            .iter()
            .filter(|u| u.is_cond_branch())
            .map(|u| u.pc)
            .collect();
        let (a_pc, b_pc) = (branches[0], branches[1]);
        while !m.halted() {
            let rec = m.step(&image.program, None).unwrap();
            if let Some(br) = rec.branch {
                if rec.pc == a_pc && !br.actual_taken {
                    a_nt += 1;
                }
                if rec.pc == b_pc {
                    b_seen += 1;
                }
            }
        }
        assert_eq!(a_nt, b_seen, "B executes exactly when A is not-taken");
        assert!(a_nt > 30, "EMPTY hits should be ~1/3 of probes: {a_nt}");
    }

    #[test]
    fn xz_match_lengths_vary() {
        let w = Xz17;
        let image = w.build(&WorkloadParams {
            scale: 512,
            iterations: 200,
            seed: 5,
        });
        let mut m = Machine::new(image.memory.into_memory());
        m.run(&image.program, 2_000_000).unwrap();
        let total = m.reg(reg::R2);
        // Expected match length ~1 per iteration (2-symbol alphabet).
        assert!(
            total > 50 && total < 800,
            "match totals implausible: {total}"
        );
    }

    #[test]
    fn omnetpp_stores_perturb_memory() {
        let w = Omnetpp17;
        let image = w.build(&WorkloadParams {
            scale: 256,
            iterations: 500,
            seed: 9,
        });
        let mut m = Machine::new(image.memory.into_memory());
        m.run(&image.program, 2_000_000).unwrap();
        assert!(m.reg(reg::R2) > 100, "sift branch should fire often");
    }
}
