//! Assembler-style program builder with forward labels.

use crate::error::IsaError;
use crate::program::Program;
use crate::reg::ArchReg;
use crate::uop::{AluOp, Cond, MemOperand, Operand, Pc, Uop, UopKind, Width};

/// A label created by [`ProgramBuilder::new_label`], usable as a branch
/// target before it is bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incrementally builds a [`Program`].
///
/// The builder hands out [`Label`]s for forward references; branches to a
/// label are patched when [`ProgramBuilder::build`] runs.
///
/// ```
/// use br_isa::{ProgramBuilder, Cond, reg};
/// # fn main() -> Result<(), br_isa::IsaError> {
/// let mut b = ProgramBuilder::new();
/// let out = b.new_label();
/// b.cmpi(reg::R0, 0);
/// b.br(Cond::Eq, out);
/// b.addi(reg::R1, reg::R1, 1);
/// b.bind(out);
/// b.halt();
/// let prog = b.build()?;
/// assert_eq!(prog.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct ProgramBuilder {
    uops: Vec<UopKind>,
    // (uop index, label) pairs needing patching.
    fixups: Vec<(usize, Label)>,
    labels: Vec<Option<Pc>>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a label already bound to the current position (for
    /// backward branches).
    pub fn here(&mut self) -> Label {
        self.labels.push(Some(self.uops.len() as Pc));
        Label(self.labels.len() - 1)
    }

    /// Allocates an unbound label for a forward reference.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.uops.len() as Pc);
    }

    fn emit(&mut self, kind: UopKind) -> Pc {
        let pc = self.uops.len() as Pc;
        self.uops.push(kind);
        pc
    }

    fn emit_branch(&mut self, cond: Cond, label: Label) -> Pc {
        let pc = self.emit(UopKind::Branch { cond, target: 0 });
        self.fixups.push((pc as usize, label));
        pc
    }

    /// Emits `dst = op(src1, src2)`. Returns the uop's PC.
    pub fn alu(&mut self, op: AluOp, dst: ArchReg, src1: ArchReg, src2: impl Into<Operand>) -> Pc {
        self.emit(UopKind::Alu {
            op,
            dst,
            src1,
            src2: src2.into(),
        })
    }

    /// Emits `dst = src1 + src2`.
    pub fn add(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) -> Pc {
        self.alu(AluOp::Add, dst, src1, src2)
    }

    /// Emits `dst = src + imm`.
    pub fn addi(&mut self, dst: ArchReg, src: ArchReg, imm: i64) -> Pc {
        self.alu(AluOp::Add, dst, src, imm)
    }

    /// Emits `dst = src1 - src2`.
    pub fn sub(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) -> Pc {
        self.alu(AluOp::Sub, dst, src1, src2)
    }

    /// Emits `dst = src - imm`.
    pub fn subi(&mut self, dst: ArchReg, src: ArchReg, imm: i64) -> Pc {
        self.alu(AluOp::Sub, dst, src, imm)
    }

    /// Emits `dst = src1 * src2` (register or immediate second operand).
    pub fn mul(&mut self, dst: ArchReg, src1: ArchReg, src2: impl Into<Operand>) -> Pc {
        self.alu(AluOp::Mul, dst, src1, src2)
    }

    /// Emits `dst = src1 & src2`.
    pub fn and(&mut self, dst: ArchReg, src1: ArchReg, src2: impl Into<Operand>) -> Pc {
        self.alu(AluOp::And, dst, src1, src2)
    }

    /// Emits `dst = src1 | src2`.
    pub fn or(&mut self, dst: ArchReg, src1: ArchReg, src2: impl Into<Operand>) -> Pc {
        self.alu(AluOp::Or, dst, src1, src2)
    }

    /// Emits `dst = src1 ^ src2`.
    pub fn xor(&mut self, dst: ArchReg, src1: ArchReg, src2: impl Into<Operand>) -> Pc {
        self.alu(AluOp::Xor, dst, src1, src2)
    }

    /// Emits `dst = src1 << src2`.
    pub fn shl(&mut self, dst: ArchReg, src1: ArchReg, src2: impl Into<Operand>) -> Pc {
        self.alu(AluOp::Shl, dst, src1, src2)
    }

    /// Emits `dst = src1 >> src2` (logical).
    pub fn shr(&mut self, dst: ArchReg, src1: ArchReg, src2: impl Into<Operand>) -> Pc {
        self.alu(AluOp::Shr, dst, src1, src2)
    }

    /// Emits `dst = src1 >> src2` (arithmetic).
    pub fn sar(&mut self, dst: ArchReg, src1: ArchReg, src2: impl Into<Operand>) -> Pc {
        self.alu(AluOp::Sar, dst, src1, src2)
    }

    /// Emits `dst = src1 / src2` (signed; excluded from dependence chains).
    pub fn div(&mut self, dst: ArchReg, src1: ArchReg, src2: impl Into<Operand>) -> Pc {
        self.alu(AluOp::Div, dst, src1, src2)
    }

    /// Emits `dst = src` (register or immediate move).
    pub fn mov(&mut self, dst: ArchReg, src: ArchReg) -> Pc {
        self.emit(UopKind::Mov {
            dst,
            src: Operand::Reg(src),
        })
    }

    /// Emits `dst = imm`.
    pub fn mov_imm(&mut self, dst: ArchReg, imm: i64) -> Pc {
        self.emit(UopKind::Mov {
            dst,
            src: Operand::Imm(imm),
        })
    }

    /// Emits an 8-byte load.
    pub fn load(&mut self, dst: ArchReg, addr: MemOperand) -> Pc {
        self.load_w(dst, addr, Width::B8, false)
    }

    /// Emits a load with explicit width and signedness.
    pub fn load_w(&mut self, dst: ArchReg, addr: MemOperand, width: Width, signed: bool) -> Pc {
        self.emit(UopKind::Load {
            dst,
            addr,
            width,
            signed,
        })
    }

    /// Emits an 8-byte store.
    pub fn store(&mut self, addr: MemOperand, src: impl Into<Operand>) -> Pc {
        self.store_w(addr, src, Width::B8)
    }

    /// Emits a store with explicit width.
    pub fn store_w(&mut self, addr: MemOperand, src: impl Into<Operand>, width: Width) -> Pc {
        self.emit(UopKind::Store {
            src: src.into(),
            addr,
            width,
        })
    }

    /// Emits `flags = cmp(src1, src2)`.
    pub fn cmp(&mut self, src1: ArchReg, src2: ArchReg) -> Pc {
        self.emit(UopKind::Cmp {
            src1,
            src2: Operand::Reg(src2),
        })
    }

    /// Emits `flags = cmp(src, imm)`.
    pub fn cmpi(&mut self, src: ArchReg, imm: i64) -> Pc {
        self.emit(UopKind::Cmp {
            src1: src,
            src2: Operand::Imm(imm),
        })
    }

    /// Emits a conditional branch to `label`.
    pub fn br(&mut self, cond: Cond, label: Label) -> Pc {
        self.emit_branch(cond, label)
    }

    /// Emits an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) -> Pc {
        let pc = self.emit(UopKind::Jump { target: 0 });
        self.fixups.push((pc as usize, label));
        pc
    }

    /// Emits a direct call to `label`, writing the return address into
    /// `link`.
    pub fn call(&mut self, label: Label, link: ArchReg) -> Pc {
        let pc = self.emit(UopKind::Call { target: 0, link });
        self.fixups.push((pc as usize, label));
        pc
    }

    /// Emits a function return through `link`.
    pub fn ret(&mut self, link: ArchReg) -> Pc {
        self.emit(UopKind::JumpInd {
            src: link,
            is_return: true,
        })
    }

    /// Emits a general indirect jump through `src` (BTB-predicted).
    pub fn jmp_reg(&mut self, src: ArchReg) -> Pc {
        self.emit(UopKind::JumpInd {
            src,
            is_return: false,
        })
    }

    /// Emits a no-op.
    pub fn nop(&mut self) -> Pc {
        self.emit(UopKind::Nop)
    }

    /// Emits a halt.
    pub fn halt(&mut self) -> Pc {
        self.emit(UopKind::Halt)
    }

    /// Number of uops emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether no uops have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Resolves labels and produces the validated [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnboundLabel`] if a referenced label was never
    /// bound, or [`IsaError::BadBranchTarget`] if validation fails.
    pub fn build(mut self) -> Result<Program, IsaError> {
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label.0].ok_or(IsaError::UnboundLabel { label: label.0 })?;
            match &mut self.uops[idx] {
                UopKind::Branch { target: t, .. }
                | UopKind::Jump { target: t }
                | UopKind::Call { target: t, .. } => *t = target,
                _ => unreachable!("fixups only attach to control uops"),
            }
        }
        let uops = self
            .uops
            .into_iter()
            .enumerate()
            .map(|(pc, kind)| Uop { pc: pc as Pc, kind })
            .collect();
        Program::new(uops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{R0, R1};

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        let top = b.here();
        b.addi(R0, R0, 1);
        b.cmpi(R0, 3);
        b.br(Cond::Eq, end);
        b.jmp(top);
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 5);
        match p.fetch(3).unwrap().kind {
            UopKind::Jump { target } => assert_eq!(target, 0),
            ref k => panic!("expected jump, got {k:?}"),
        }
        match p.fetch(2).unwrap().kind {
            UopKind::Branch { target, .. } => assert_eq!(target, 4),
            ref k => panic!("expected branch, got {k:?}"),
        }
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.br(Cond::Ne, l);
        assert!(matches!(
            b.build(),
            Err(IsaError::UnboundLabel { label: 0 })
        ));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn emit_returns_pcs_in_order() {
        let mut b = ProgramBuilder::new();
        assert_eq!(b.mov_imm(R1, 7), 0);
        assert_eq!(b.nop(), 1);
        assert_eq!(b.halt(), 2);
        assert_eq!(b.len(), 3);
    }
}
