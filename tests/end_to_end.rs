//! End-to-end integration: full-system runs across crates, checking both
//! architectural correctness and the paper's headline behaviour.

use branch_runahead::isa::{reg, Machine};
use branch_runahead::sim::{RunResult, SimConfig, System};
use branch_runahead::workloads::{all_workloads, workload_by_name, WorkloadParams};

fn small_params(iterations: u64) -> WorkloadParams {
    WorkloadParams {
        scale: 1024,
        iterations,
        seed: 0x5eed,
    }
}

fn run(mut cfg: SimConfig, workload: &str, params: &WorkloadParams, retired: u64) -> RunResult {
    cfg.max_retired = retired;
    let w = workload_by_name(workload).expect("registered workload");
    System::new(cfg, &w.build(params)).run()
}

/// The timing simulator must be architecturally transparent: running a
/// kernel to completion on the full out-of-order core (with wrong-path
/// execution, recovery, and Branch Runahead steering fetch) must leave
/// the exact same architectural state as the functional emulator.
#[test]
fn simulation_preserves_architecture() {
    let params = small_params(2_000);
    for name in ["leela_17", "gcc_06", "bzip2_06", "sssp"] {
        let w = workload_by_name(name).unwrap();
        // Functional reference.
        let image = w.build(&params);
        let mut reference = Machine::new(image.memory.into_memory());
        reference.run(&image.program, 10_000_000).unwrap();
        assert!(reference.halted(), "{name} reference run must halt");

        for cfg in [SimConfig::baseline(), SimConfig::mini_br()] {
            let label = format!("{name}/{:?}", cfg.runahead.as_ref().map(|c| c.name));
            let mut cfg = cfg;
            cfg.max_retired = u64::MAX; // run to halt
            cfg.max_cycles = 30_000_000;
            let w = workload_by_name(name).unwrap();
            let mut sys = System::new(cfg, &w.build(&params));
            let r = sys.run();
            assert!(
                r.core.retired_uops > 1000,
                "{label}: did not finish ({} uops)",
                r.core.retired_uops
            );
            for gpr in [reg::R2, reg::R3, reg::R4, reg::R9] {
                assert_eq!(
                    sys.core().machine().reg(gpr),
                    reference.reg(gpr),
                    "{label}: architectural register {gpr} diverged"
                );
            }
        }
    }
}

/// The headline result (Figure 10's direction): Branch Runahead reduces
/// MPKI and increases IPC on branch-misprediction-bound kernels.
#[test]
#[ignore = "paper-shape tier (threshold assertions): run with --ignored"]
fn branch_runahead_improves_most_workloads() {
    let params = WorkloadParams {
        scale: 2048,
        iterations: 1_000_000,
        seed: 0xabc,
    };
    let names = ["leela_17", "mcf_06", "deepsjeng_17", "bfs", "sssp", "pr"];
    let mut mpki_improvements = Vec::new();
    let mut ipc_improvements = Vec::new();
    for name in names {
        let base = run(SimConfig::baseline(), name, &params, 120_000);
        let with = run(SimConfig::mini_br(), name, &params, 120_000);
        assert!(
            base.mpki() > 3.0,
            "{name}: baseline should be misprediction-bound, mpki {:.2}",
            base.mpki()
        );
        mpki_improvements.push(with.mpki_improvement_pct(&base));
        ipc_improvements.push(with.ipc_improvement_pct(&base));
    }
    let mean_mpki = mpki_improvements.iter().sum::<f64>() / names.len() as f64;
    let mean_ipc = ipc_improvements.iter().sum::<f64>() / names.len() as f64;
    assert!(
        mean_mpki > 30.0,
        "mean MPKI improvement too small: {mean_mpki:.1}% ({mpki_improvements:?})"
    );
    assert!(
        mean_ipc > 8.0,
        "mean IPC improvement too small: {mean_ipc:.1}% ({ipc_improvements:?})"
    );
    assert!(
        mpki_improvements.iter().all(|v| *v > -5.0),
        "no workload may regress badly: {mpki_improvements:?}"
    );
}

/// Figure 10's configuration ordering: Core-Only ≤ Mini ≤ Big (within
/// noise), and the 80 KB TAGE gains almost nothing.
#[test]
#[ignore = "paper-shape tier (threshold assertions): run with --ignored"]
fn configuration_ordering_matches_paper() {
    let params = small_params(1_000_000);
    let names = ["leela_17", "bfs"];
    let (mut c, mut m, mut b, mut t80) = (0.0, 0.0, 0.0, 0.0);
    for name in names {
        let base = run(SimConfig::baseline(), name, &params, 100_000);
        c += run(SimConfig::core_only_br(), name, &params, 100_000).mpki_improvement_pct(&base);
        m += run(SimConfig::mini_br(), name, &params, 100_000).mpki_improvement_pct(&base);
        b += run(SimConfig::big_br(), name, &params, 100_000).mpki_improvement_pct(&base);
        t80 += run(SimConfig::tage80(), name, &params, 100_000).mpki_improvement_pct(&base);
    }
    let n = names.len() as f64;
    let (c, m, b, t80) = (c / n, m / n, b / n, t80 / n);
    assert!(
        t80 < c && c < m,
        "ordering broke: 80kb {t80:.1} vs core-only {c:.1} vs mini {m:.1}"
    );
    assert!(
        b > m - 8.0,
        "big should be at least mini-class: big {b:.1} vs mini {m:.1}"
    );
    assert!(
        t80.abs() < 15.0,
        "80KB TAGE should barely move MPKI: {t80:.1}%"
    );
}

/// Every workload in the registry completes a full-system baseline run.
#[test]
fn all_workloads_simulate() {
    let params = WorkloadParams {
        scale: 512,
        iterations: 1_000_000,
        seed: 3,
    };
    for w in all_workloads() {
        let mut cfg = SimConfig::baseline();
        cfg.max_retired = 20_000;
        let mut sys = System::new(cfg, &w.build(&params));
        let r = sys.run();
        assert!(
            r.core.retired_uops >= 20_000,
            "{}: retired only {}",
            w.name(),
            r.core.retired_uops
        );
        assert!(r.ipc() > 0.05, "{}: IPC collapsed: {}", w.name(), r.ipc());
    }
}
