//! Parallel execution must be invisible in the results: the sharded
//! runner returns results in job order and every simulation is
//! deterministic, so any thread count must produce bit-identical tables.

use branch_runahead::sim::experiments::{self, ExperimentSetup};
use branch_runahead::sim::{run_jobs, SimConfig};
use branch_runahead::workloads::WorkloadParams;

fn tiny(threads: usize) -> ExperimentSetup {
    let mut s = ExperimentSetup::quick();
    s.params = WorkloadParams {
        scale: 512,
        iterations: 1_000_000,
        seed: 0xd15c,
    };
    s.max_retired = 8_000;
    s.workloads = vec!["leela_17".into(), "bfs".into()];
    s.threads = threads;
    s
}

/// The tentpole acceptance check: `--threads 4` produces bit-identical
/// `ExpTable` output to the sequential path on the quick setup.
#[test]
fn threads_4_matches_sequential_tables() {
    let seq = tiny(1);
    let par = tiny(4);
    let t1 = experiments::fig2(&seq).unwrap();
    let t4 = experiments::fig2(&par).unwrap();
    assert_eq!(t1.to_json(), t4.to_json(), "fig2 diverged across threads");
    let (m1, i1) = experiments::fig10(&seq).unwrap();
    let (m4, i4) = experiments::fig10(&par).unwrap();
    assert_eq!(m1.to_json(), m4.to_json(), "fig10 MPKI diverged");
    assert_eq!(i1.to_json(), i4.to_json(), "fig10 IPC diverged");
}

/// Same property through the multi-region weighted-aggregation path.
#[test]
fn regions_aggregate_identically_across_thread_counts() {
    let seq = tiny(1).with_regions(3);
    let par = tiny(4).with_regions(3);
    let r1 = seq.run(SimConfig::mini_br(), "leela_17").unwrap();
    let r4 = par.run(SimConfig::mini_br(), "leela_17").unwrap();
    assert_eq!(r1.core.cycles, r4.core.cycles);
    assert_eq!(r1.core.retired_uops, r4.core.retired_uops);
    assert_eq!(r1.core.mispredicts, r4.core.mispredicts);
    assert_eq!(
        r1.br.as_ref().map(|b| b.dce_uops),
        r4.br.as_ref().map(|b| b.dce_uops)
    );
}

/// Telemetry rides the same guarantee: interval samples and merged event
/// traces — rendered through every exporter — must be byte-identical
/// between the sequential path and four worker threads.
#[test]
fn telemetry_exports_identical_across_thread_counts() {
    use branch_runahead::telemetry::export;

    let render = |threads: usize| {
        let mut setup = tiny(threads);
        setup.telemetry = branch_runahead::sim::TelemetryConfig {
            enabled: true,
            sample_interval: 1_000,
            event_capacity: 4_096,
        };
        let mut jobs = Vec::new();
        for w in &setup.workloads {
            jobs.extend(setup.jobs(&SimConfig::mini_br(), w));
        }
        let results = run_jobs(&jobs, threads).unwrap();
        let runs: Vec<_> = jobs
            .iter()
            .zip(results)
            .map(|(j, r)| (j.label(), r.telemetry.expect("telemetry enabled")))
            .collect();
        assert!(
            runs.iter().any(|(_, t)| !t.samples.is_empty()),
            "sampler produced nothing"
        );
        [
            export::chrome_trace(&runs),
            export::samples_jsonl(&runs),
            export::samples_csv(&runs),
            export::events_jsonl(&runs),
            export::counters_json(&runs),
        ]
    };
    let seq = render(1);
    let par = render(4);
    for (name, (a, b)) in [
        "trace",
        "samples.jsonl",
        "samples.csv",
        "events",
        "counters",
    ]
    .iter()
    .zip(seq.iter().zip(&par))
    {
        assert_eq!(a, b, "{name} export diverged across thread counts");
    }
}

/// Raw runner level: results come back in job order with auto threads.
#[test]
fn runner_preserves_job_order_with_auto_threads() {
    let setup = tiny(0);
    let mut jobs = Vec::new();
    for w in &setup.workloads {
        jobs.extend(setup.jobs(&SimConfig::baseline(), w));
        jobs.extend(setup.jobs(&SimConfig::mini_br(), w));
    }
    let auto = run_jobs(&jobs, 0).unwrap();
    let seq = run_jobs(&jobs, 1).unwrap();
    for (a, s) in auto.iter().zip(&seq) {
        assert_eq!(a.config_name, s.config_name);
        assert_eq!(a.core.cycles, s.core.cycles);
        assert_eq!(a.core.mispredicts, s.core.mispredicts);
    }
}
