#!/usr/bin/env bash
# Profile the simulator's hot loop.
#
# Builds the `figures` binary with the `profiling` cargo profile
# (release optimization + full debug symbols) and runs a representative
# workload under the best profiler available on this machine:
#
#   perf     -> perf record + perf report (flat, annotated)
#   gprofng  -> gprofng collect + er_print
#   neither  -> plain timed run (the binary is still symbol-rich, so an
#               external profiler can attach to the printed PID)
#
# Usage: tools/profile.sh [figures args...]
#        default args: --quick --retired 400000 --workloads leela_17 fig2
set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=("$@")
if [ ${#ARGS[@]} -eq 0 ]; then
  ARGS=(--quick --retired 400000 --workloads leela_17 fig2)
fi

echo "building with the profiling profile (release + debug symbols)..."
cargo build --profile profiling -p br-bench --bin figures
BIN=target/profiling/figures
OUT=${PROFILE_OUT:-/tmp/br-profile}
mkdir -p "$OUT"

if command -v perf >/dev/null 2>&1 && perf record -o /dev/null -- true 2>/dev/null; then
  echo "profiling with perf -> $OUT/perf.data"
  perf record -o "$OUT/perf.data" -g --call-graph dwarf -- "$BIN" "${ARGS[@]}"
  perf report -i "$OUT/perf.data" --stdio | head -60
  echo "full report: perf report -i $OUT/perf.data"
elif command -v gprofng >/dev/null 2>&1; then
  echo "profiling with gprofng -> $OUT/test.er"
  rm -rf "$OUT/test.er"
  gprofng collect app -o "$OUT/test.er" "$BIN" "${ARGS[@]}"
  gprofng display text -functions "$OUT/test.er" | head -60
  echo "full report: gprofng display text -functions $OUT/test.er"
else
  echo "no profiler found (perf/gprofng); running timed instead." >&2
  echo "the binary keeps full symbols: attach any profiler to it." >&2
  time "$BIN" "${ARGS[@]}"
fi
