//! # br-core — Branch Runahead
//!
//! The primary contribution of *"Branch Runahead: An Alternative to Branch
//! Prediction for Impossible to Predict Branches"* (Pruett & Patt,
//! MICRO 2021), reproduced from scratch on the `br-ooo` core:
//!
//! * [`HardBranchTable`] (§4.3) — identifies hard-to-predict branches with
//!   decaying saturating misprediction counters, and tracks affector/guard
//!   relationships with bias filtering,
//! * [`ChainExtractionBuffer`] + [`extract_chain`] (§4.3, Figure 9) — a
//!   512-entry retired-uop ring searched by a backwards dataflow walk,
//!   with store→load and move elimination and local rename,
//! * [`WrongPathBuffer`] (§4.4) — merge-point prediction by intersecting
//!   wrong-path PCs (captured by a ROB walk at flush) with the retired
//!   correct path; supplies both-path dest sets,
//! * [`PoisonDetector`] (§4.4) — the poison-propagation algorithm
//!   (adapted from Runahead Execution) that finds affector branches,
//! * [`DependenceChainCache`], [`PredictionQueues`] and the
//!   [`DependenceChainEngine`] (§4.2, Figure 7) — per-chain local register
//!   files and reservation stations, two-level rename, out-of-order
//!   intra-chain scheduling, shared D-cache access with core priority,
//!   and the three chain-initiation policies (§4.1),
//! * [`BranchRunahead`] — the composition, implemented as
//!   [`br_ooo::CoreHooks`] so it plugs into the core's fetch, flush, and
//!   retire streams exactly where the paper's hardware sits.
//!
//! ## Example: extracting a chain from a retired-uop stream
//!
//! ```
//! use std::collections::BTreeSet;
//! use br_core::{extract_chain, CebRecord, ChainExtractionBuffer, ExtractLimits};
//! use br_isa::{reg, Cond, Machine, MemOperand, MemoryImage, ProgramBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A loop with a data-dependent branch: if (table[i & 7] != 0) ...
//! let mut b = ProgramBuilder::new();
//! let skip = b.new_label();
//! b.mov_imm(reg::R12, 0x1000);
//! let top = b.here();
//! b.addi(reg::R0, reg::R0, 1);
//! b.and(reg::R5, reg::R0, 7);
//! b.load(reg::R6, MemOperand::base_index(reg::R12, reg::R5, 8, 0));
//! b.cmpi(reg::R6, 0);
//! let branch_pc = b.br(Cond::Ne, skip);
//! b.bind(skip);
//! b.cmpi(reg::R0, 20);
//! b.br(Cond::Ne, top);
//! b.halt();
//! let program = b.build()?;
//!
//! // Run functionally, feeding the CEB the retired stream.
//! let mut img = MemoryImage::new();
//! img.write_u64_slice(0x1000, &[0, 3, 0, 1, 2, 0, 5, 0]);
//! let mut m = Machine::new(img.into_memory());
//! let mut ceb = ChainExtractionBuffer::new(512);
//! while !m.halted() {
//!     let rec = m.step(&program, None)?;
//!     let uop = *program.fetch(rec.pc).unwrap();
//!     ceb.push(CebRecord::from_retired(&br_ooo::RetiredUop {
//!         seq: m.steps(), uop, rec, cycle: m.steps(),
//!     }));
//! }
//!
//! // The backwards dataflow walk of §4.3.
//! let limits = ExtractLimits { max_chain_len: 16, local_regs: 8 };
//! let chain = extract_chain(&ceb, branch_pc, &BTreeSet::new(), &limits)
//!     .expect("slice fits the DCE constraints");
//! assert!(chain.tag.is_wildcard());       // self-terminated: <PC, *>
//! assert!(chain.len() <= 8);              // short, as Figure 2 promises
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod agdetect;
mod ceb;
mod chain;
mod chain_cache;
mod config;
mod dce;
mod extract;
mod hbt;
mod pqueue;
mod runahead;
mod stats;
mod wpb;

pub use agdetect::PoisonDetector;
pub use ceb::{CebRecord, ChainExtractionBuffer};
pub use chain::{ChainOp, ChainSrc, ChainTag, DependenceChain, LocalReg};
pub use chain_cache::DependenceChainCache;
pub use config::{BranchRunaheadConfig, InitiationMode};
pub use dce::DependenceChainEngine;
pub use extract::{
    extract_chain, extract_chain_with, ExtractLimits, ExtractOutcome, ExtractScratch,
};
pub use hbt::{HardBranchTable, HbtEntry};
pub use pqueue::{FetchVerdict, PredictionQueues};
pub use runahead::{BrLiveState, BranchRunahead};
pub use stats::{BrStats, PredictionCategory};
pub use wpb::{MergeEvent, WrongPathBuffer};
