//! # br-mem — the memory-hierarchy substrate
//!
//! The Branch Runahead paper evaluates on a system with 32 KB L1 caches, a
//! 2 MB L2, a stream prefetcher, and a DDR4 memory system modelled by
//! Ramulator (Table 1). Chain *timeliness* — the paper's hardest problem
//! (Figure 12) — is a direct function of load-latency distribution, so
//! this crate reproduces that distribution shape from scratch:
//!
//! * [`Cache`] — set-associative, write-back, LRU tag store,
//! * [`MshrFile`] — miss-status holding registers with request merging,
//! * [`StreamPrefetcher`] — 64 streams, configurable distance, prefetching
//!   into the L2 (Table 1),
//! * [`Dram`] — banked DDR4-style timing with open rows and FR-FCFS-like
//!   scheduling,
//! * [`MemorySystem`] — the composed, tick-driven hierarchy shared by the
//!   core and the Dependence Chain Engine (§4.2: "The DCE shares the
//!   D-Cache and D-TLB with the core").
//!
//! The memory system is *timing only*: data values live in the functional
//! emulator (`br-isa`), which is how execution-driven simulators such as
//! Scarab are organised as well.
//!
//! ```
//! use br_mem::{MemorySystem, MemoryConfig, ReqSource};
//!
//! let mut mem = MemorySystem::new(MemoryConfig::default());
//! let id = mem.request(0x4000, false, ReqSource::Core, 0).unwrap();
//! let mut cycle = 0;
//! let done = loop {
//!     let resp = mem.tick(cycle);
//!     if let Some(r) = resp.iter().find(|r| r.id == id) { break r.finished; }
//!     cycle += 1;
//! };
//! assert!(done >= 3, "at least the L1 hit latency");
//! ```

#![warn(missing_docs)]

mod cache;
mod dram;
mod mshr;
mod prefetch;
mod system;
mod tlb;

pub use cache::{Cache, CacheAccess, CacheConfig, CacheStats};
pub use dram::{Dram, DramConfig, DramStats};
pub use mshr::{MshrFile, MshrOutcome};
pub use prefetch::{StreamPrefetcher, StreamPrefetcherConfig};
pub use system::{
    MemResp, MemoryConfig, MemoryStats, MemorySystem, ReqId, ReqSource, RequestError,
};
pub use tlb::{Tlb, TlbConfig, TlbStats};

/// Cache line size in bytes used throughout the hierarchy (Table 1).
pub const LINE_BYTES: u64 = 64;

/// Converts a byte address to a line address.
#[must_use]
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_BYTES
}
