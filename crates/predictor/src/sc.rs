//! The statistical corrector ("SC" of TAGE-SC-L).
//!
//! A GEHL-style bank of signed counters indexed by PC and by PC hashed
//! with several short folded global histories. The weighted sum, combined
//! with the TAGE direction's own vote, can invert a statistically weak
//! TAGE prediction.

use br_isa::Pc;

use crate::history::{GlobalHistory, HistoryCheckpoint};
use crate::inline_vec::InlineVec;

/// Hard cap on corrector tables (bias table plus history-indexed tables),
/// sized for the unlimited configuration so lookups stay inline.
pub const MAX_SC_TABLES: usize = 8;

/// Configuration for [`StatisticalCorrector`].
#[derive(Clone, Debug)]
pub struct StatisticalCorrectorConfig {
    /// log2 entries per table.
    pub table_log2: u32,
    /// History lengths of the history-indexed tables (the bias table is
    /// always present and uses length 0).
    pub history_lengths: Vec<u32>,
    /// Weight given to the TAGE direction in the sum.
    pub tage_weight: i32,
    /// Update threshold: counters train when `|sum| <= threshold` or the
    /// final direction was wrong.
    pub threshold: i32,
}

impl Default for StatisticalCorrectorConfig {
    fn default() -> Self {
        StatisticalCorrectorConfig {
            table_log2: 10,
            history_lengths: vec![4, 10, 20],
            tage_weight: 6,
            threshold: 10,
        }
    }
}

/// The SC verdict for one branch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScLookup {
    /// Final direction after the corrector's vote.
    pub taken: bool,
    /// Whether the corrector inverted the TAGE direction.
    pub inverted: bool,
    /// Table indices used (bias table first).
    pub indices: InlineVec<u32, MAX_SC_TABLES>,
    /// The weighted sum (sign = direction).
    pub sum: i32,
}

/// A statistical corrector over its own (speculative) short history.
#[derive(Clone, Debug)]
pub struct StatisticalCorrector {
    cfg: StatisticalCorrectorConfig,
    /// `tables[0]` is the bias (PC-only) table.
    tables: Vec<Vec<i8>>,
    hist: GlobalHistory,
    folds: Vec<usize>,
}

impl StatisticalCorrector {
    /// Builds a corrector from `cfg`.
    #[must_use]
    pub fn new(cfg: StatisticalCorrectorConfig) -> Self {
        assert!(
            cfg.history_lengths.len() < MAX_SC_TABLES,
            "at most {MAX_SC_TABLES} corrector tables supported (incl. bias)"
        );
        let mut hist = GlobalHistory::new(256);
        let folds = cfg
            .history_lengths
            .iter()
            .map(|&l| hist.add_folded(l, cfg.table_log2))
            .collect();
        StatisticalCorrector {
            tables: vec![vec![0i8; 1 << cfg.table_log2]; cfg.history_lengths.len() + 1],
            hist,
            folds,
            cfg,
        }
    }

    fn indices(&self, pc: Pc) -> InlineVec<u32, MAX_SC_TABLES> {
        let mask = (1usize << self.cfg.table_log2) - 1;
        let mut v = InlineVec::new();
        v.push((pc as usize & mask) as u32);
        for (t, &f) in self.folds.iter().enumerate() {
            let folded = u64::from(self.hist.folded(f));
            v.push((((pc.rotate_left(t as u32 + 1) ^ folded) as usize) & mask) as u32);
        }
        v
    }

    /// Computes the corrected direction for a TAGE prediction.
    #[must_use]
    pub fn lookup(&self, pc: Pc, tage_taken: bool) -> ScLookup {
        let indices = self.indices(pc);
        let mut sum: i32 = if tage_taken {
            self.cfg.tage_weight
        } else {
            -self.cfg.tage_weight
        };
        for (t, &idx) in indices.iter().enumerate() {
            sum += 2 * i32::from(self.tables[t][idx as usize]) + 1;
        }
        let taken = sum >= 0;
        ScLookup {
            taken,
            inverted: taken != tage_taken,
            indices,
            sum,
        }
    }

    /// Trains the counters with a retired outcome. `indices`/`sum` come
    /// from prediction time; `final_taken` is the direction the whole
    /// predictor ultimately chose.
    pub fn train(&mut self, taken: bool, final_taken: bool, indices: &[u32], sum: i32) {
        if final_taken != taken || sum.abs() <= self.cfg.threshold {
            for (t, &idx) in indices.iter().enumerate() {
                let c = &mut self.tables[t][idx as usize];
                if taken {
                    *c = (*c + 1).min(31);
                } else {
                    *c = (*c - 1).max(-32);
                }
            }
        }
    }

    /// Pushes a speculative outcome into the corrector's history.
    pub fn push_history(&mut self, pc: Pc, taken: bool) {
        self.hist.push(pc, taken);
    }

    /// Checkpoints the speculative history.
    #[must_use]
    pub fn checkpoint(&self) -> HistoryCheckpoint {
        self.hist.checkpoint()
    }

    /// Checkpoints the speculative history into an existing buffer.
    pub fn checkpoint_into(&self, cp: &mut HistoryCheckpoint) {
        self.hist.checkpoint_into(cp);
    }

    /// Restores the speculative history.
    pub fn restore(&mut self, cp: &HistoryCheckpoint) {
        self.hist.restore(cp);
    }

    /// Storage estimate in KiB (6-bit counters).
    #[must_use]
    pub fn storage_kib(&self) -> f64 {
        self.tables.len() as f64 * (1 << self.cfg.table_log2) as f64 * 6.0 / 8.0 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrects_statically_biased_branch_tage_misses() {
        // Feed a branch that is 100% taken but where "TAGE" always says
        // not-taken; the bias table must learn to invert.
        let mut sc = StatisticalCorrector::new(StatisticalCorrectorConfig::default());
        let mut inverted_late = 0;
        for i in 0..500 {
            let l = sc.lookup(0x40, false);
            if i >= 100 && l.taken {
                inverted_late += 1;
            }
            sc.train(true, l.taken, &l.indices, l.sum);
            sc.push_history(0x40, true);
        }
        assert_eq!(inverted_late, 400, "SC should learn the inversion");
    }

    #[test]
    fn leaves_agreeing_predictions_alone() {
        let mut sc = StatisticalCorrector::new(StatisticalCorrectorConfig::default());
        for _ in 0..200 {
            let l = sc.lookup(0x80, true);
            sc.train(true, l.taken, &l.indices, l.sum);
            sc.push_history(0x80, true);
        }
        let l = sc.lookup(0x80, true);
        assert!(l.taken && !l.inverted);
    }

    #[test]
    fn checkpoint_restores_indices() {
        let mut sc = StatisticalCorrector::new(StatisticalCorrectorConfig::default());
        for i in 0..50 {
            sc.push_history(i, i % 2 == 0);
        }
        let cp = sc.checkpoint();
        let before = sc.indices(0x99);
        sc.push_history(7, true);
        sc.push_history(8, false);
        sc.restore(&cp);
        assert_eq!(sc.indices(0x99), before);
    }
}
