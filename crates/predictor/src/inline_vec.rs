//! A tiny fixed-capacity inline vector for per-prediction metadata.

/// A fixed-capacity, stack-only vector.
///
/// Predictor metadata (per-table indices and tags) is latched for every
/// in-flight branch, so these lists must not touch the heap. Capacity `N`
/// is sized by the largest supported configuration; overflow panics, which
/// only a misconfigured table count can trigger.
#[derive(Clone, Copy, Debug)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    buf: [T; N],
    len: u8,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        InlineVec {
            buf: [T::default(); N],
            len: 0,
        }
    }

    /// Appends `v`.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds `N` elements.
    pub fn push(&mut self, v: T) {
        assert!((self.len as usize) < N, "InlineVec capacity {N} exceeded");
        self.buf[self.len as usize] = v;
        self.len += 1;
    }

    /// The elements as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.buf[..self.len as usize]
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_slice() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        v.push(7);
        v.push(9);
        assert_eq!(v.as_slice(), &[7, 9]);
        assert_eq!(v[1], 9);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn overflow_panics() {
        let mut v: InlineVec<u16, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
    }

    #[test]
    fn equality_ignores_tail_garbage() {
        let mut a: InlineVec<u32, 4> = InlineVec::new();
        let mut b: InlineVec<u32, 4> = InlineVec::new();
        a.push(1);
        b.push(1);
        assert_eq!(a, b);
        b.push(2);
        assert_ne!(a, b);
    }
}
