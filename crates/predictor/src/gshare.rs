//! Gshare: global-history XOR PC indexed 2-bit counters.

use br_isa::Pc;

use crate::history::GlobalHistory;
use crate::traits::{ConditionalPredictor, PredMeta, Prediction, PredictorCheckpoint};

/// A gshare predictor with a speculative global history register.
#[derive(Clone, Debug)]
pub struct Gshare {
    counters: Vec<u8>,
    log2: u32,
    hist: GlobalHistory,
}

impl Gshare {
    /// Creates a gshare predictor with `2^log2_entries` counters and a
    /// matching history length.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is outside `1..=28`.
    #[must_use]
    pub fn new(log2_entries: u32) -> Self {
        assert!((1..=28).contains(&log2_entries));
        Gshare {
            counters: vec![2; 1 << log2_entries],
            log2: log2_entries,
            hist: GlobalHistory::new(1024),
        }
    }

    fn index(&self, pc: Pc) -> usize {
        let h = self.hist.recent(self.log2.min(64));
        ((pc ^ h) as usize) & ((1 << self.log2) - 1)
    }
}

impl ConditionalPredictor for Gshare {
    fn name(&self) -> &'static str {
        "gshare"
    }

    fn predict(&mut self, pc: Pc) -> Prediction {
        let index = self.index(pc);
        let c = self.counters[index];
        Prediction {
            taken: c >= 2,
            low_confidence: c == 1 || c == 2,
            meta: PredMeta::Gshare { index },
        }
    }

    fn update_history(&mut self, pc: Pc, taken: bool) {
        self.hist.push(pc, taken);
    }

    fn checkpoint(&self) -> PredictorCheckpoint {
        PredictorCheckpoint::History(self.hist.checkpoint())
    }

    fn checkpoint_into(&self, cp: &mut PredictorCheckpoint) {
        match cp {
            PredictorCheckpoint::History(h) => self.hist.checkpoint_into(h),
            _ => *cp = self.checkpoint(),
        }
    }

    fn restore(&mut self, cp: &PredictorCheckpoint) {
        match cp {
            PredictorCheckpoint::History(h) => self.hist.restore(h),
            PredictorCheckpoint::None => {}
            _ => panic!("checkpoint type mismatch for Gshare"),
        }
    }

    fn train(&mut self, _pc: Pc, taken: bool, pred: &Prediction) {
        let PredMeta::Gshare { index } = pred.meta else {
            panic!("metadata type mismatch for Gshare");
        };
        let c = &mut self.counters[index];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn storage_kib(&self) -> f64 {
        self.counters.len() as f64 * 2.0 / 8.0 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_alternation_via_history() {
        let mut p = Gshare::new(12);
        let mut correct = 0;
        for i in 0..2000 {
            let taken = i % 2 == 0;
            let pred = p.predict(0x10);
            if i > 1000 && pred.taken == taken {
                correct += 1;
            }
            p.update_history(0x10, taken);
            p.train(0x10, taken, &pred);
        }
        assert!(correct >= 950, "gshare should learn alternation: {correct}");
    }

    #[test]
    fn history_checkpoint_round_trip() {
        let mut p = Gshare::new(12);
        for i in 0..64 {
            p.update_history(i, i % 3 == 0);
        }
        let cp = p.checkpoint();
        let idx_before = p.index(0x42);
        for i in 0..32 {
            p.update_history(100 + i, true);
        }
        p.restore(&cp);
        assert_eq!(p.index(0x42), idx_before);
    }
}
