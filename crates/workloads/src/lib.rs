//! # br-workloads — synthetic benchmark kernels
//!
//! The paper evaluates on branch-misprediction-intensive members of SPEC
//! CPU2017 Integer Speed, SPEC CPU2006 Integer, and the GAP benchmark
//! suite, run as SimPoint regions under a PIN-based frontend. Neither the
//! proprietary SPEC sources/inputs nor the x86 PIN toolchain is available
//! here, so this crate substitutes a *synthetic kernel per benchmark*,
//! written directly in the `br-isa` micro-op ISA.
//!
//! Each kernel reproduces its benchmark's dominant *branch character* —
//! the property Branch Runahead targets:
//!
//! * hard-to-predict branches whose outcome is a pure function of data
//!   loaded from memory (pseudo-random tables, graph adjacency, hash
//!   buckets), carrying no global-history correlation for TAGE,
//! * short backward dataflow slices reaching those branches (so chains
//!   are extractable under the 16-uop cap),
//! * natural guard/affector structure (nested data-dependent branches,
//!   store→load communication), and
//! * realistic per-iteration "work" so the DCE has slack to run ahead.
//!
//! The substitution preserves the behaviour the evaluation depends on:
//! TAGE-SC-L fails on these branches for the same reason it fails on the
//! originals (no history correlation), and dependence chains succeed for
//! the same reason (the slice recomputes the value).
//!
//! ```
//! use br_workloads::{all_workloads, WorkloadParams};
//!
//! let params = WorkloadParams::default();
//! for w in all_workloads() {
//!     let image = w.build(&params);
//!     assert!(image.program.cond_branch_count() > 0);
//! }
//! ```

#![warn(missing_docs)]

mod gap;
mod spec06;
mod spec17;
mod util;
mod workload;

pub use util::XorShift64;
pub use workload::{Suite, Workload, WorkloadImage, WorkloadParams};

use std::collections::BTreeMap;

/// Every workload in the paper's evaluation order (Figure 1's x-axis):
/// SPEC2017, then SPEC2006, then GAP.
#[must_use]
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        // SPEC CPU2017 Integer Speed (branch-intensive subset).
        Box::new(spec17::Mcf17),
        Box::new(spec17::Leela17),
        Box::new(spec17::Xz17),
        Box::new(spec17::Deepsjeng17),
        Box::new(spec17::Omnetpp17),
        // SPEC CPU2006 Integer (branch-intensive subset).
        Box::new(spec06::Astar06),
        Box::new(spec06::Mcf06),
        Box::new(spec06::Gcc06),
        Box::new(spec06::Gobmk06),
        Box::new(spec06::Bzip206),
        Box::new(spec06::Sjeng06),
        Box::new(spec06::Omnetpp06),
        // GAP benchmark suite.
        Box::new(gap::Cc),
        Box::new(gap::Bfs),
        Box::new(gap::Tc),
        Box::new(gap::Bc),
        Box::new(gap::Pr),
        Box::new(gap::Sssp),
    ]
}

/// Looks up a workload by name (e.g. `"leela_17"`, `"bfs"`).
#[must_use]
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

/// Workload names grouped by suite, preserving evaluation order.
#[must_use]
pub fn names_by_suite() -> BTreeMap<Suite, Vec<&'static str>> {
    let mut m: BTreeMap<Suite, Vec<&'static str>> = BTreeMap::new();
    for w in all_workloads() {
        m.entry(w.suite()).or_default().push(w.name());
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_isa::Machine;

    #[test]
    fn registry_complete_and_unique() {
        let ws = all_workloads();
        assert_eq!(ws.len(), 18);
        let mut names: Vec<_> = ws.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18, "duplicate workload names");
        assert!(workload_by_name("leela_17").is_some());
        assert!(workload_by_name("nope").is_none());
    }

    #[test]
    fn suites_partition_correctly() {
        let m = names_by_suite();
        assert_eq!(m[&Suite::Spec2017].len(), 5);
        assert_eq!(m[&Suite::Spec2006].len(), 7);
        assert_eq!(m[&Suite::Gap].len(), 6);
    }

    #[test]
    fn every_workload_runs_functionally() {
        let params = WorkloadParams {
            scale: 256,
            iterations: 50,
            seed: 7,
        };
        for w in all_workloads() {
            let image = w.build(&params);
            let mut m = Machine::new(image.memory.into_memory());
            let steps = m
                .run(&image.program, 2_000_000)
                .unwrap_or_else(|e| panic!("{} faulted: {e}", w.name()));
            assert!(m.halted(), "{} did not halt in {steps} steps", w.name());
            assert!(steps > 500, "{} too trivial: {steps} uops", w.name());
        }
    }

    #[test]
    fn determinism_per_seed() {
        let params = WorkloadParams {
            scale: 128,
            iterations: 30,
            seed: 42,
        };
        for w in all_workloads() {
            let a = w.build(&params);
            let b = w.build(&params);
            assert_eq!(
                a.program,
                b.program,
                "{} program differs across builds",
                w.name()
            );
            let mut ma = Machine::new(a.memory.into_memory());
            let mut mb = Machine::new(b.memory.into_memory());
            ma.run(&a.program, 500_000).unwrap();
            mb.run(&b.program, 500_000).unwrap();
            assert_eq!(
                ma.cpu().regs,
                mb.cpu().regs,
                "{} nondeterministic",
                w.name()
            );
        }
    }

    /// The property the whole paper rests on: each workload must contain
    /// at least one genuinely hard-to-predict branch — one whose outcome
    /// stream has high flip entropy.
    #[test]
    fn every_workload_has_a_hard_branch() {
        let params = WorkloadParams {
            scale: 512,
            iterations: 400,
            seed: 3,
        };
        for w in all_workloads() {
            let image = w.build(&params);
            let mut m = Machine::new(image.memory.into_memory());
            let mut outcomes: std::collections::HashMap<u64, Vec<bool>> =
                std::collections::HashMap::new();
            while !m.halted() {
                let rec = match m.step(&image.program, None) {
                    Ok(r) => r,
                    Err(e) => panic!("{}: {e}", w.name()),
                };
                if let Some(b) = rec.branch {
                    if image.program.fetch(rec.pc).unwrap().is_cond_branch() {
                        outcomes.entry(rec.pc).or_default().push(b.actual_taken);
                    }
                }
                if m.steps() > 3_000_000 {
                    break;
                }
            }
            let hard = outcomes.values().any(|v| {
                if v.len() < 100 {
                    return false;
                }
                let taken = v.iter().filter(|t| **t).count() as f64 / v.len() as f64;
                let flips =
                    v.windows(2).filter(|w| w[0] != w[1]).count() as f64 / (v.len() - 1) as f64;
                (0.10..=0.90).contains(&taken) && flips > 0.10
            });
            assert!(hard, "{} has no hard-to-predict branch", w.name());
        }
    }
}
