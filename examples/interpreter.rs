//! A bytecode-interpreter scenario (the perlbench/gcc shape): a dispatch
//! loop that *calls* a handler per opcode through a computed target, with
//! a data-dependent branch inside one handler. Exercises the call/return
//! machinery (RAS), indirect-jump target prediction (BTB), and Branch
//! Runahead on the handler's hard branch — all at once.
//!
//! ```text
//! cargo run --release --example interpreter
//! ```

use branch_runahead::isa::{reg, Cond, Machine, MemOperand, MemoryImage, ProgramBuilder};
use branch_runahead::mem::{MemoryConfig, MemorySystem};
use branch_runahead::ooo::{Core, CoreConfig, NullHooks};
use branch_runahead::predictor::{TageScl, TageSclConfig};
use branch_runahead::runahead::{BranchRunahead, BranchRunaheadConfig};

const BYTECODE: u64 = 0x1_0000;
const DATA: u64 = 0x2_0000;
const N: u64 = 4096;

fn build() -> (branch_runahead::isa::Program, MemoryImage) {
    let mut img = MemoryImage::new();
    let mut x = 0x2545_f491_4f6c_dd1du64;
    let mut ops = Vec::new();
    let mut vals = Vec::new();
    for _ in 0..N {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        ops.push(x % 2); // opcode 0 or 1
        vals.push((x >> 13) % 5); // handler-1 operand
    }
    img.write_u64_slice(BYTECODE, &ops);
    img.write_u64_slice(DATA, &vals);

    let mut b = ProgramBuilder::new();
    let entry = b.new_label();
    let h0 = b.new_label();
    let h1 = b.new_label();
    b.jmp(entry);

    // handler 0: cheap accumulate.
    b.bind(h0);
    b.addi(reg::R2, reg::R2, 1);
    b.ret(reg::R15);

    // handler 1: data-dependent branch (the hard one BR should cover).
    b.bind(h1);
    let out = b.new_label();
    b.load(reg::R6, MemOperand::base_index(reg::R14, reg::R5, 8, 0));
    b.cmpi(reg::R6, 2);
    b.br(Cond::Ge, out);
    b.addi(reg::R3, reg::R3, 1);
    b.bind(out);
    b.ret(reg::R15);

    // dispatch loop.
    b.bind(entry);
    b.mov_imm(reg::R0, 0);
    b.mov_imm(reg::R12, BYTECODE as i64);
    b.mov_imm(reg::R14, DATA as i64);
    let top = b.here();
    let call0 = b.new_label();
    let done_iter = b.new_label();
    b.and(reg::R5, reg::R0, (N - 1) as i64);
    b.load(reg::R7, MemOperand::base_index(reg::R12, reg::R5, 8, 0));
    b.cmpi(reg::R7, 0);
    b.br(Cond::Eq, call0); // bytecode-dependent dispatch branch
    b.call(h1, reg::R15);
    b.jmp(done_iter);
    b.bind(call0);
    b.call(h0, reg::R15);
    b.bind(done_iter);
    // per-iteration work
    for _ in 0..3 {
        b.mul(reg::R8, reg::R8, 3i64);
        b.addi(reg::R9, reg::R9, 7);
    }
    b.addi(reg::R0, reg::R0, 1);
    b.cmpi(reg::R0, 200_000);
    b.br(Cond::Ne, top);
    b.halt();
    (b.build().expect("interpreter assembles"), img)
}

fn run(with_br: bool) -> (f64, f64, u64, u64) {
    let (program, img) = build();
    let mut core = Core::new(
        CoreConfig::default(),
        program,
        Machine::new(img.into_memory()),
        Box::new(TageScl::new(TageSclConfig::kb64())),
    );
    core.set_max_retired(300_000);
    let mut mem = MemorySystem::new(MemoryConfig::default());
    let mut br = with_br.then(|| BranchRunahead::new(BranchRunaheadConfig::mini(), 4));
    for cycle in 0..30_000_000u64 {
        let resps = mem.tick(cycle);
        let report = match &mut br {
            Some(b) => {
                let report = core.tick(&resps, &mut mem, b);
                b.tick(cycle, core.machine(), &mut mem, &resps, &report);
                report
            }
            None => core.tick(&resps, &mut mem, &mut NullHooks),
        };
        if report.done {
            break;
        }
    }
    let s = core.stats();
    (s.ipc(), s.mpki(), s.indirect_jumps, s.indirect_mispredicts)
}

fn main() {
    println!("bytecode interpreter: dispatch loop with called handlers\n");
    let (ipc0, mpki0, ind0, indw0) = run(false);
    let (ipc1, mpki1, _, _) = run(true);
    println!("{:<22}{:>10}{:>10}", "", "baseline", "mini-br");
    println!("{:<22}{:>10.3}{:>10.3}", "IPC", ipc0, ipc1);
    println!("{:<22}{:>10.2}{:>10.2}", "MPKI (conditional)", mpki0, mpki1);
    println!(
        "\nreturns/indirects: {ind0} retired, {indw0} target-mispredicted \
         ({:.2}% — the RAS handles call-heavy code)",
        indw0 as f64 / ind0.max(1) as f64 * 100.0
    );
    println!(
        "Branch Runahead gain on the interpreter: MPKI {:+.1}%, IPC {:+.1}%",
        (mpki1 - mpki0) / mpki0 * 100.0,
        (ipc1 - ipc0) / ipc0 * 100.0
    );
}
