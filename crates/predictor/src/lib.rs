//! # br-predictor — history-based conditional branch predictors
//!
//! The Branch Runahead paper's baseline is a 64 KB TAGE-SC-L (winner of the
//! CBP-2016 limited-storage track) and its unlimited-storage comparison
//! point is MTAGE-SC. This crate implements that predictor family from
//! scratch:
//!
//! * [`Tage`] — tagged geometric-history-length predictor with useful-bit
//!   management, allocation, and alternate-prediction policy,
//! * [`LoopPredictor`] — the "L" component: confident loop-exit prediction,
//! * [`StatisticalCorrector`] — the "SC" component: GEHL-style signed
//!   per-history bias tables that can veto a low-confidence TAGE output,
//! * [`TageScl`] — the composition, with 64 KB / 80 KB presets and an
//!   MTAGE-like unlimited preset ([`TageSclConfig`]),
//! * [`Gshare`] and [`Bimodal`] — simple baselines used by tests.
//!
//! All predictors implement [`ConditionalPredictor`], which models the
//! fetch-time protocol of a real front end: predict, *speculatively* update
//! history with the followed direction, checkpoint at each branch, restore
//! the checkpoint on a misprediction, and train at retirement using the
//! metadata captured at prediction time.
//!
//! ```
//! use br_predictor::{ConditionalPredictor, TageScl, TageSclConfig};
//!
//! let mut p = TageScl::new(TageSclConfig::kb64());
//! // A strongly biased branch becomes predictable after a few outcomes.
//! for _ in 0..64 {
//!     let pred = p.predict(0x400);
//!     p.update_history(0x400, true);
//!     p.train(0x400, true, &pred);
//! }
//! let pred = p.predict(0x400);
//! assert!(pred.taken);
//! ```

#![warn(missing_docs)]

mod bimodal;
mod gshare;
mod history;
mod inline_vec;
mod loop_pred;
mod perceptron;
mod sc;
mod tage;
mod tagescl;
mod traits;

pub use bimodal::Bimodal;
pub use gshare::Gshare;
pub use history::{FoldedHistory, GlobalHistory, HistoryCheckpoint};
pub use inline_vec::InlineVec;
pub use loop_pred::{LoopPredictor, LoopPredictorConfig};
pub use perceptron::{Perceptron, PerceptronConfig, MAX_PERCEPTRON_TABLES};
pub use sc::{StatisticalCorrector, StatisticalCorrectorConfig, MAX_SC_TABLES};
pub use tage::{Tage, TageConfig, TageMeta, MAX_TAGE_TABLES};
pub use tagescl::{TageScl, TageSclConfig};
pub use traits::{ConditionalPredictor, PredMeta, Prediction, PredictorCheckpoint};

/// Constructs a predictor by name. Recognised names: `"tage-sc-l-64kb"`,
/// `"tage-sc-l-80kb"`, `"mtage-unlimited"`, `"gshare"`, `"bimodal"`.
///
/// # Panics
///
/// Panics on an unrecognised name (configs are programmer-supplied).
#[must_use]
pub fn build_predictor(name: &str) -> Box<dyn ConditionalPredictor> {
    match name {
        "tage-sc-l-64kb" => Box::new(TageScl::new(TageSclConfig::kb64())),
        "tage-sc-l-80kb" => Box::new(TageScl::new(TageSclConfig::kb80())),
        "mtage-unlimited" => Box::new(TageScl::new(TageSclConfig::unlimited())),
        "perceptron" => Box::new(Perceptron::new(PerceptronConfig::default())),
        "gshare" => Box::new(Gshare::new(16)),
        "bimodal" => Box::new(Bimodal::new(14)),
        other => panic!("unknown predictor {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_all() {
        for name in [
            "tage-sc-l-64kb",
            "tage-sc-l-80kb",
            "mtage-unlimited",
            "perceptron",
            "gshare",
            "bimodal",
        ] {
            let p = build_predictor(name);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown predictor")]
    fn factory_rejects_unknown() {
        let _ = build_predictor("neural-net");
    }
}
