//! Dependence-chain extraction (§4.3, Figure 9).
//!
//! A backwards dataflow walk over the Chain Extraction Buffer, starting at
//! the most recently retired instance of a hard-to-predict branch:
//!
//! 1. the search list starts with the branch's source registers (the
//!    condition codes),
//! 2. older uops whose destinations intersect the search list join the
//!    chain; their sources join the search list,
//! 3. loads are matched against older stores by dynamic address (the CEB
//!    store buffer); a matching store joins the chain,
//! 4. the walk terminates at a second instance of the same branch (tag
//!    `<PC, *>`) or at an affector/guard branch (tag `<PC, taken>`).
//!
//! The collected slice is then locally renamed with move elimination and
//! store→load elimination (§4.3 "Dependence Chain Optimizations"), which
//! guarantees chains contain no stores, and local registers are compacted
//! by lifetime so the chain fits an 8-entry local register file.

use std::collections::BTreeSet;

use br_isa::{ArchReg, Operand, Pc, RegSet, UopKind, FLAGS, NUM_ARCH_REGS};

use crate::ceb::{CebRecord, ChainExtractionBuffer};
use crate::chain::{ChainOp, ChainSrc, ChainTag, DependenceChain, LocalReg};

/// Why extraction produced no chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtractOutcome {
    /// A chain was produced (paired with the chain itself by the caller).
    Ok,
    /// The walk ran off the CEB without finding a terminator.
    NoTermination,
    /// The chain would exceed the uop cap.
    TooLong,
    /// The chain needs more local registers than a local register file has.
    TooManyRegs,
    /// The slice contains an operation the DCE cannot execute (§1: no
    /// divides / floating point).
    ForbiddenOp,
    /// No flag-producing compare was found (the outcome would depend on
    /// live-in condition codes — not a computable chain).
    NoCmp,
    /// The target branch was not found in the CEB.
    TargetMissing,
}

/// Limits applied during extraction.
#[derive(Clone, Copy, Debug)]
pub struct ExtractLimits {
    /// Maximum executable chain ops after elimination.
    pub max_chain_len: usize,
    /// Local register file size.
    pub local_regs: usize,
}

#[derive(Clone, Copy, Debug)]
enum Binding {
    Local(usize),
    Imm(i64),
}

/// Local renamer over direct-indexed architectural-register tables (the
/// register file is 17 entries, so the maps are inline arrays — no
/// hashing, no heap).
struct Renamer {
    bind: [Option<Binding>; NUM_ARCH_REGS],
    next_virtual: usize,
    live_ins: Vec<(ArchReg, usize)>,
    written: [bool; NUM_ARCH_REGS],
}

impl Renamer {
    /// Creates a renamer reusing `live_ins` (cleared) as its buffer.
    fn new(mut live_ins: Vec<(ArchReg, usize)>) -> Self {
        live_ins.clear();
        Renamer {
            bind: [None; NUM_ARCH_REGS],
            next_virtual: 0,
            live_ins,
            written: [false; NUM_ARCH_REGS],
        }
    }

    fn alloc(&mut self) -> usize {
        let v = self.next_virtual;
        self.next_virtual += 1;
        v
    }

    /// Resolves a read of `r`, allocating a live-in on first touch.
    fn read(&mut self, r: ArchReg) -> ChainSrcV {
        match self.bind[r.index()] {
            Some(Binding::Local(l)) => ChainSrcV::Reg(l),
            Some(Binding::Imm(v)) => ChainSrcV::Imm(v),
            None => {
                let l = self.alloc();
                self.live_ins.push((r, l));
                self.bind[r.index()] = Some(Binding::Local(l));
                ChainSrcV::Reg(l)
            }
        }
    }

    fn read_operand(&mut self, o: Operand) -> ChainSrcV {
        match o {
            Operand::Reg(r) => self.read(r),
            Operand::Imm(v) => ChainSrcV::Imm(v),
        }
    }

    fn write(&mut self, r: ArchReg) -> usize {
        let l = self.alloc();
        self.bind[r.index()] = Some(Binding::Local(l));
        self.written[r.index()] = true;
        l
    }

    fn alias(&mut self, r: ArchReg, src: ChainSrcV) {
        let b = match src {
            ChainSrcV::Reg(l) => Binding::Local(l),
            ChainSrcV::Imm(v) => Binding::Imm(v),
        };
        self.bind[r.index()] = Some(b);
        self.written[r.index()] = true;
    }
}

/// Chain sources over *virtual* (pre-compaction) locals.
#[derive(Clone, Copy, Debug)]
enum ChainSrcV {
    Reg(usize),
    Imm(i64),
}

#[derive(Clone, Debug)]
enum ChainOpV {
    Alu {
        op: br_isa::AluOp,
        dst: usize,
        src1: ChainSrcV,
        src2: ChainSrcV,
    },
    Load {
        dst: usize,
        base: Option<ChainSrcV>,
        index: Option<ChainSrcV>,
        scale: u8,
        disp: i64,
        width: br_isa::Width,
        signed: bool,
    },
    Cmp {
        src1: ChainSrcV,
        src2: ChainSrcV,
    },
}

/// Reusable buffers for [`extract_chain_with`]. Extraction runs on every
/// HBT saturation event; the walk, rename, and compaction stages
/// otherwise allocate roughly ten collections per attempt. All buffers
/// are cleared on entry, so a long-lived scratch behaves identically to a
/// fresh one (`tests/extraction_props.rs` proves this by property test).
#[derive(Debug, Default)]
pub struct ExtractScratch {
    /// Collected CEB indices, youngest-first during the walk.
    collected: Vec<usize>,
    /// Loads awaiting an older matching store: `(addr, width, load idx)`.
    pending_loads: Vec<(u64, u64, usize)>,
    /// Store→load elimination pairs: `(load idx, store idx)`.
    pairs: Vec<(usize, usize)>,
    /// Stored-value binding captured at the store's program position.
    store_value: Vec<(usize, ChainSrcV)>,
    /// Live-in accumulation handed to the [`Renamer`].
    live_ins: Vec<(ArchReg, usize)>,
    /// Renamed ops over virtual (pre-compaction) locals.
    ops_v: Vec<ChainOpV>,
    /// Final bindings of written registers.
    live_outs_v: Vec<(ArchReg, ChainSrcV)>,
    compact: CompactScratch,
}

/// Extracts the dependence chain of `target_pc` from the CEB.
///
/// `ag_set` is the (bias-filtered) affector/guard set of the target from
/// the Hard Branch Table. Returns the chain or the rejection reason.
///
/// # Errors
///
/// Returns the [`ExtractOutcome`] describing why no chain was produced.
pub fn extract_chain(
    ceb: &ChainExtractionBuffer,
    target_pc: Pc,
    ag_set: &BTreeSet<Pc>,
    limits: &ExtractLimits,
) -> Result<DependenceChain, ExtractOutcome> {
    extract_chain_with(
        &mut ExtractScratch::default(),
        ceb,
        target_pc,
        ag_set,
        limits,
    )
}

/// [`extract_chain`] with caller-owned scratch buffers (the engine reuses
/// one scratch across every extraction attempt).
///
/// # Errors
///
/// Returns the [`ExtractOutcome`] describing why no chain was produced.
pub fn extract_chain_with(
    scr: &mut ExtractScratch,
    ceb: &ChainExtractionBuffer,
    target_pc: Pc,
    ag_set: &BTreeSet<Pc>,
    limits: &ExtractLimits,
) -> Result<DependenceChain, ExtractOutcome> {
    let (slice_a, slice_b) = ceb.as_slices();
    let n = slice_a.len() + slice_b.len();
    // Direct indexing across the CEB's two ring segments (no collecting).
    let rec = |i: usize| -> &CebRecord {
        if i < slice_a.len() {
            &slice_a[i]
        } else {
            &slice_b[i - slice_a.len()]
        }
    };

    // Newest instance of the target.
    let end = (0..n)
        .rev()
        .find(|&i| {
            let r = rec(i);
            r.uop.pc == target_pc && r.uop.is_cond_branch()
        })
        .ok_or(ExtractOutcome::TargetMissing)?;
    let target = rec(end);
    let cond = match target.uop.kind {
        UopKind::Branch { cond, .. } => cond,
        _ => return Err(ExtractOutcome::TargetMissing),
    };

    // ---------------------------------------------------- backward walk
    let mut search: RegSet = target.srcs;
    scr.collected.clear();
    scr.pending_loads.clear();
    scr.pairs.clear();
    let mut tag: Option<ChainTag> = None;
    let mut guard_terminated = false;

    for i in (0..end).rev() {
        let r = rec(i);
        if r.uop.is_cond_branch() {
            if r.uop.pc == target_pc {
                tag = Some(ChainTag {
                    pc: target_pc,
                    outcome: None,
                });
                break;
            }
            if ag_set.contains(&r.uop.pc) {
                tag = Some(ChainTag {
                    pc: r.uop.pc,
                    outcome: r.taken,
                });
                guard_terminated = true;
                break;
            }
            continue;
        }

        // Store matching an already-collected load (the "CEB store
        // buffer" of Figure 9).
        if let Some((addr, width, is_store)) = r.mem {
            if is_store {
                if let Some(pos) = scr
                    .pending_loads
                    .iter()
                    .position(|&(la, lw, _)| la == addr && lw == width.bytes())
                {
                    let (_, _, load_idx) = scr.pending_loads.swap_remove(pos);
                    scr.pairs.push((load_idx, i));
                    scr.collected.push(i);
                    // Only the *value* source matters; the pair is
                    // move-eliminated so the address computation is
                    // dropped.
                    if let UopKind::Store { src, .. } = r.uop.kind {
                        if let Some(vr) = src.reg() {
                            search.insert(vr);
                        }
                    }
                    if scr.collected.len() > limits.max_chain_len * 3 {
                        return Err(ExtractOutcome::TooLong);
                    }
                }
                continue;
            }
        }

        if !r.dsts.intersects(search) {
            continue;
        }
        // Forbidden operations poison the chain.
        if let UopKind::Alu { op, .. } = r.uop.kind {
            if !op.dce_allowed() {
                return Err(ExtractOutcome::ForbiddenOp);
            }
        }
        scr.collected.push(i);
        if scr.collected.len() > limits.max_chain_len * 3 {
            return Err(ExtractOutcome::TooLong);
        }
        search = search.difference(r.dsts);
        search = search.union(r.srcs);
        if let Some((addr, width, false)) = r.mem {
            scr.pending_loads.push((addr, width.bytes(), i));
            // The load's address registers stay in the search set (they
            // are only dropped if the load pairs with a store, in which
            // case the chain never computes the address).
        }
    }

    let tag = tag.ok_or(ExtractOutcome::NoTermination)?;

    // ------------------------------------------- rename and elimination
    scr.collected.sort_unstable();
    scr.store_value.clear();
    scr.ops_v.clear();

    let mut rn = Renamer::new(std::mem::take(&mut scr.live_ins));
    let mut eliminated = 0usize;
    let mut cmp_found = false;

    for &i in &scr.collected {
        let r = rec(i);
        if scr.pairs.iter().any(|&(_, st)| st == i) {
            if let UopKind::Store { src, .. } = r.uop.kind {
                scr.store_value.push((i, rn.read_operand(src)));
                eliminated += 1;
            }
            continue;
        }
        match r.uop.kind {
            UopKind::Mov { dst, src } => {
                let s = rn.read_operand(src);
                rn.alias(dst, s);
                eliminated += 1;
            }
            UopKind::Load {
                dst,
                addr,
                width,
                signed,
            } => {
                if let Some(st) = scr
                    .pairs
                    .iter()
                    .find_map(|&(ld, st)| (ld == i).then_some(st))
                {
                    // Store→load pair: logically a move (§4.3).
                    let v = scr
                        .store_value
                        .iter()
                        .find_map(|&(si, v)| (si == st).then_some(v))
                        .expect("store processed before its load");
                    rn.alias(dst, v);
                    eliminated += 1;
                } else {
                    let base = addr.base.map(|b| rn.read(b));
                    let index = addr.index.map(|x| rn.read(x));
                    let d = rn.write(dst);
                    scr.ops_v.push(ChainOpV::Load {
                        dst: d,
                        base,
                        index,
                        scale: addr.scale,
                        disp: addr.disp,
                        width,
                        signed,
                    });
                }
            }
            UopKind::Alu {
                op,
                dst,
                src1,
                src2,
            } => {
                let s1 = rn.read(src1);
                let s2 = rn.read_operand(src2);
                let d = rn.write(dst);
                scr.ops_v.push(ChainOpV::Alu {
                    op,
                    dst: d,
                    src1: s1,
                    src2: s2,
                });
            }
            UopKind::Cmp { src1, src2 } => {
                let s1 = rn.read(src1);
                let s2 = rn.read_operand(src2);
                rn.written[FLAGS.index()] = true;
                scr.ops_v.push(ChainOpV::Cmp { src1: s1, src2: s2 });
                cmp_found = true;
            }
            // Calls write their link register; if that feeds the branch
            // (rare), treat the link value as a constant of the slice.
            UopKind::Call { link, .. } => {
                rn.alias(link, ChainSrcV::Imm((r.uop.pc + 1) as i64));
                eliminated += 1;
            }
            UopKind::Store { .. }
            | UopKind::Branch { .. }
            | UopKind::Jump { .. }
            | UopKind::JumpInd { .. }
            | UopKind::Nop
            | UopKind::Halt => {}
        }
    }

    // Hand the live-in buffer back to the scratch before any early return
    // so rejected extractions don't leak its capacity.
    let num_virtuals = rn.next_virtual;
    scr.live_ins = std::mem::take(&mut rn.live_ins);

    if !cmp_found {
        return Err(ExtractOutcome::NoCmp);
    }
    if scr.ops_v.len() > limits.max_chain_len {
        return Err(ExtractOutcome::TooLong);
    }

    // Live-outs: every written (or aliased) register's final binding, plus
    // untouched live-ins pass through implicitly via the instance context.
    // Index order equals `ArchReg`'s `Ord`, so iteration is sorted.
    scr.live_outs_v.clear();
    for r in ArchReg::all() {
        if rn.written[r.index()] && !r.is_flags() {
            let b = match rn.bind[r.index()] {
                Some(Binding::Local(l)) => ChainSrcV::Reg(l),
                Some(Binding::Imm(v)) => ChainSrcV::Imm(v),
                None => unreachable!("written reg must be bound"),
            };
            scr.live_outs_v.push((r, b));
        }
    }

    // ------------------------------------ local register compaction
    let (ops, live_ins, live_outs, num_locals) = compact_locals(
        &scr.ops_v,
        &scr.live_ins,
        &scr.live_outs_v,
        limits.local_regs,
        num_virtuals,
        &mut scr.compact,
    )
    .ok_or(ExtractOutcome::TooManyRegs)?;

    let source_pcs: BTreeSet<Pc> = scr.collected.iter().map(|&i| rec(i).uop.pc).collect();
    Ok(DependenceChain {
        tag,
        branch_pc: target_pc,
        cond,
        ops,
        live_ins,
        live_outs,
        num_local_regs: num_locals,
        guard_terminated,
        eliminated_uops: eliminated,
        source_pcs,
    })
}

/// Reusable buffers for [`compact_locals`], all direct-indexed by virtual
/// local number.
#[derive(Debug, Default)]
struct CompactScratch {
    /// Last read position per virtual (`0` = untouched, `END` = live-out).
    last_use: Vec<usize>,
    /// Virtual → physical local assignment.
    mapping: Vec<Option<LocalReg>>,
    free: Vec<LocalReg>,
    /// Currently-live `(virtual, phys)` pairs.
    in_use: Vec<(usize, LocalReg)>,
}

/// Lifetime-based compaction of virtual locals into the physical local
/// register file (the paper's local rename "minimizes physical register
/// footprint"). Returns `None` if more than `budget` registers are live
/// simultaneously.
#[allow(clippy::type_complexity)]
fn compact_locals(
    ops: &[ChainOpV],
    live_ins: &[(ArchReg, usize)],
    live_outs: &[(ArchReg, ChainSrcV)],
    budget: usize,
    num_virtuals: usize,
    scr: &mut CompactScratch,
) -> Option<(
    Vec<ChainOp>,
    Vec<(ArchReg, LocalReg)>,
    Vec<(ArchReg, ChainSrc)>,
    usize,
)> {
    const END: usize = usize::MAX;
    scr.last_use.clear();
    scr.last_use.resize(num_virtuals, 0);
    let last_use = &mut scr.last_use;
    let touch = |m: &mut [usize], s: &ChainSrcV, at: usize| {
        if let ChainSrcV::Reg(v) = s {
            m[*v] = m[*v].max(at);
        }
    };
    for (i, op) in ops.iter().enumerate() {
        match op {
            ChainOpV::Alu { src1, src2, .. } | ChainOpV::Cmp { src1, src2 } => {
                touch(last_use, src1, i);
                touch(last_use, src2, i);
            }
            ChainOpV::Load { base, index, .. } => {
                if let Some(b) = base {
                    touch(last_use, b, i);
                }
                if let Some(x) = index {
                    touch(last_use, x, i);
                }
            }
        }
    }
    // Live-outs are read by successor chains: alive to the end.
    for (_, b) in live_outs {
        if let ChainSrcV::Reg(v) = b {
            last_use[*v] = END;
        }
    }
    let last_use = &scr.last_use;

    scr.mapping.clear();
    scr.mapping.resize(num_virtuals, None);
    let mapping = &mut scr.mapping;
    scr.free.clear();
    scr.free.extend((0..budget as u8).rev());
    let free = &mut scr.free;
    scr.in_use.clear();
    let in_use = &mut scr.in_use; // (virtual, phys)

    let alloc = |v: usize,
                 mapping: &mut Vec<Option<LocalReg>>,
                 free: &mut Vec<LocalReg>,
                 in_use: &mut Vec<(usize, LocalReg)>|
     -> Option<LocalReg> {
        let p = free.pop()?;
        mapping[v] = Some(p);
        in_use.push((v, p));
        Some(p)
    };

    // Live-ins allocated up front (the core writes them at sync).
    for (_, v) in live_ins {
        alloc(*v, mapping, free, in_use)?;
    }

    let release_dead = |at: usize,
                        free: &mut Vec<LocalReg>,
                        in_use: &mut Vec<(usize, LocalReg)>,
                        last_use: &[usize]| {
        in_use.retain(|(v, p)| {
            let lu = last_use[*v];
            if lu != END && lu < at {
                free.push(*p);
                false
            } else {
                true
            }
        });
    };

    let map_src = |s: &ChainSrcV, mapping: &[Option<LocalReg>]| -> ChainSrc {
        match s {
            ChainSrcV::Reg(v) => ChainSrc::Reg(mapping[*v].expect("read of unmapped virtual")),
            ChainSrcV::Imm(i) => ChainSrc::Imm(*i),
        }
    };

    let mut out = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        // Sources are read at i; anything last used before i is dead.
        release_dead(i, free, in_use, last_use);
        let mapped = match op {
            ChainOpV::Alu {
                op,
                dst,
                src1,
                src2,
            } => {
                let s1 = map_src(src1, mapping);
                let s2 = map_src(src2, mapping);
                // Sources whose last use is exactly i can donate their
                // register to the destination.
                release_dead(i + 1, free, in_use, last_use);
                let d = alloc(*dst, mapping, free, in_use)?;
                ChainOp::Alu {
                    op: *op,
                    dst: d,
                    src1: s1,
                    src2: s2,
                }
            }
            ChainOpV::Load {
                dst,
                base,
                index,
                scale,
                disp,
                width,
                signed,
            } => {
                let b = base.as_ref().map(|s| map_src(s, mapping));
                let x = index.as_ref().map(|s| map_src(s, mapping));
                release_dead(i + 1, free, in_use, last_use);
                let d = alloc(*dst, mapping, free, in_use)?;
                ChainOp::Load {
                    dst: d,
                    base: b,
                    index: x,
                    scale: *scale,
                    disp: *disp,
                    width: *width,
                    signed: *signed,
                }
            }
            ChainOpV::Cmp { src1, src2 } => ChainOp::Cmp {
                src1: map_src(src1, mapping),
                src2: map_src(src2, mapping),
            },
        };
        out.push(mapped);
    }

    let live_ins_m: Vec<(ArchReg, LocalReg)> = live_ins
        .iter()
        .map(|(r, v)| (*r, mapping[*v].expect("live-in allocated up front")))
        .collect();
    let live_outs_m: Vec<(ArchReg, ChainSrc)> = live_outs
        .iter()
        .map(|(r, b)| (*r, map_src(b, mapping)))
        .collect();
    let num_locals = budget - free.len();
    Some((out, live_ins_m, live_outs_m, num_locals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ceb::ChainExtractionBuffer;
    use br_isa::{reg, Cond as ICond, MemOperand, Uop, UopKind, Width};

    /// Helper to hand-build CEB records.
    struct CebBuilder {
        ceb: ChainExtractionBuffer,
        seq: u64,
    }

    impl CebBuilder {
        fn new() -> Self {
            CebBuilder {
                ceb: ChainExtractionBuffer::new(512),
                seq: 0,
            }
        }

        fn push(
            &mut self,
            pc: Pc,
            kind: UopKind,
            mem: Option<(u64, Width, bool)>,
            taken: Option<bool>,
        ) {
            let uop = Uop { pc, kind };
            self.ceb.push(CebRecord {
                seq: self.seq,
                uop,
                dsts: uop.dsts(),
                srcs: uop.srcs(),
                mem,
                taken,
            });
            self.seq += 1;
        }
    }

    const LIMITS: ExtractLimits = ExtractLimits {
        max_chain_len: 16,
        local_regs: 8,
    };

    /// The leela-like loop from Figure 4: one iteration's uops.
    /// r3 = pointer into offsets, r4 = offset value, r5 = board index,
    /// r12 = board base.
    fn push_leela_iteration(b: &mut CebBuilder, a_taken: bool, board_val: u64) {
        // add r3, r3, 4          (induction)
        b.push(
            0x0,
            UopKind::Alu {
                op: br_isa::AluOp::Add,
                dst: reg::R3,
                src1: reg::R3,
                src2: Operand::Imm(4),
            },
            None,
            None,
        );
        // ld r4 <- [r3]
        b.push(
            0x1,
            UopKind::Load {
                dst: reg::R4,
                addr: MemOperand::base_disp(reg::R3, 0),
                width: Width::B4,
                signed: true,
            },
            Some((0x5000, Width::B4, false)),
            None,
        );
        // add r5, r4, r14
        b.push(
            0x2,
            UopKind::Alu {
                op: br_isa::AluOp::Add,
                dst: reg::R5,
                src1: reg::R4,
                src2: Operand::Reg(reg::R14),
            },
            None,
            None,
        );
        // ld r6 <- board[r5]  (the random board value)
        b.push(
            0x3,
            UopKind::Load {
                dst: reg::R6,
                addr: MemOperand::base_index(reg::R12, reg::R5, 4, 0x6f0),
                width: Width::B4,
                signed: false,
            },
            Some((0x9000 + board_val * 4, Width::B4, false)),
            None,
        );
        // cmp r6, 2
        b.push(
            0x4,
            UopKind::Cmp {
                src1: reg::R6,
                src2: Operand::Imm(2),
            },
            None,
            None,
        );
        // branch A at pc 5
        b.push(
            0x5,
            UopKind::Branch {
                cond: ICond::Ne,
                target: 0x9,
            },
            None,
            Some(a_taken),
        );
    }

    #[test]
    fn leela_chain_extracts_self_terminated() {
        let mut b = CebBuilder::new();
        push_leela_iteration(&mut b, true, 1);
        push_leela_iteration(&mut b, false, 2);
        let chain = extract_chain(&b.ceb, 0x5, &BTreeSet::new(), &LIMITS).unwrap();
        assert_eq!(
            chain.tag,
            ChainTag {
                pc: 0x5,
                outcome: None
            },
            "self-terminated chains get the wildcard tag of Figure 4c"
        );
        assert_eq!(chain.branch_pc, 0x5);
        assert_eq!(chain.cond, ICond::Ne);
        // add(induction), load, add, load, cmp = 5 ops.
        assert_eq!(chain.len(), 5);
        assert!(!chain.guard_terminated);
        // Live-ins: r3 (pointer), r14, r12. All three needed.
        let li: Vec<ArchReg> = chain.live_ins.iter().map(|(r, _)| *r).collect();
        assert!(li.contains(&reg::R3) && li.contains(&reg::R14) && li.contains(&reg::R12));
        // The induction variable is a live-out so the chain self-sustains.
        assert!(chain.live_out_binding(reg::R3).is_some());
        assert!(chain.num_local_regs <= 8);
    }

    #[test]
    fn guard_terminated_chain_tagged_with_outcome() {
        // Branch B (pc 0x8) guarded by A (pc 0x5): extraction for B stops
        // at A and tags <A, NT> like Figure 4d.
        let mut b = CebBuilder::new();
        push_leela_iteration(&mut b, false, 1); // A not-taken -> B executes
                                                // B's feeder: ld r7 <- [r12 + r5*2 + 0x1ba4]; cmp r7, 1; branch B
        b.push(
            0x6,
            UopKind::Load {
                dst: reg::R7,
                addr: MemOperand::base_index(reg::R12, reg::R5, 2, 0x1ba4),
                width: Width::B2,
                signed: false,
            },
            Some((0xa000, Width::B2, false)),
            None,
        );
        b.push(
            0x7,
            UopKind::Cmp {
                src1: reg::R7,
                src2: Operand::Imm(1),
            },
            None,
            None,
        );
        b.push(
            0x8,
            UopKind::Branch {
                cond: ICond::Le,
                target: 0x9,
            },
            None,
            Some(true),
        );
        let ag: BTreeSet<Pc> = [0x5u64].into_iter().collect();
        let chain = extract_chain(&b.ceb, 0x8, &ag, &LIMITS).unwrap();
        assert_eq!(
            chain.tag,
            ChainTag {
                pc: 0x5,
                outcome: Some(false)
            }
        );
        assert!(chain.guard_terminated);
        assert_eq!(chain.branch_pc, 0x8);
        // load + cmp (r5 is a live-in: its producer is beyond the guard).
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn store_load_pair_eliminated() {
        // st [0x100] <- r2 ; ld r4 <- [0x100] ; cmp r4,0 ; br ; (x2)
        let mut b = CebBuilder::new();
        for taken in [true, false] {
            b.push(
                0x0,
                UopKind::Alu {
                    op: br_isa::AluOp::Add,
                    dst: reg::R2,
                    src1: reg::R2,
                    src2: Operand::Imm(1),
                },
                None,
                None,
            );
            b.push(
                0x1,
                UopKind::Store {
                    src: Operand::Reg(reg::R2),
                    addr: MemOperand::absolute(0x100),
                    width: Width::B8,
                },
                Some((0x100, Width::B8, true)),
                None,
            );
            b.push(
                0x2,
                UopKind::Load {
                    dst: reg::R4,
                    addr: MemOperand::absolute(0x100),
                    width: Width::B8,
                    signed: false,
                },
                Some((0x100, Width::B8, false)),
                None,
            );
            b.push(
                0x3,
                UopKind::Cmp {
                    src1: reg::R4,
                    src2: Operand::Imm(0),
                },
                None,
                None,
            );
            b.push(
                0x4,
                UopKind::Branch {
                    cond: ICond::Eq,
                    target: 0x5,
                },
                None,
                Some(taken),
            );
        }
        let chain = extract_chain(&b.ceb, 0x4, &BTreeSet::new(), &LIMITS).unwrap();
        // add + cmp survive; store+load eliminated.
        assert_eq!(chain.len(), 2);
        assert!(chain.eliminated_uops >= 2);
        assert!(
            chain.ops.iter().all(|o| !o.is_load()),
            "store→load pairs must be move-eliminated: {chain}"
        );
    }

    #[test]
    fn mov_elimination() {
        let mut b = CebBuilder::new();
        for taken in [true, false] {
            b.push(
                0x0,
                UopKind::Alu {
                    op: br_isa::AluOp::Add,
                    dst: reg::R1,
                    src1: reg::R1,
                    src2: Operand::Imm(1),
                },
                None,
                None,
            );
            b.push(
                0x1,
                UopKind::Mov {
                    dst: reg::R2,
                    src: Operand::Reg(reg::R1),
                },
                None,
                None,
            );
            b.push(
                0x2,
                UopKind::Cmp {
                    src1: reg::R2,
                    src2: Operand::Imm(7),
                },
                None,
                None,
            );
            b.push(
                0x3,
                UopKind::Branch {
                    cond: ICond::Eq,
                    target: 0x4,
                },
                None,
                Some(taken),
            );
        }
        let chain = extract_chain(&b.ceb, 0x3, &BTreeSet::new(), &LIMITS).unwrap();
        assert_eq!(chain.len(), 2, "mov eliminated: add + cmp remain");
        assert_eq!(chain.eliminated_uops, 1);
    }

    #[test]
    fn divide_rejected() {
        let mut b = CebBuilder::new();
        for taken in [true, false] {
            b.push(
                0x0,
                UopKind::Alu {
                    op: br_isa::AluOp::Div,
                    dst: reg::R1,
                    src1: reg::R1,
                    src2: Operand::Imm(3),
                },
                None,
                None,
            );
            b.push(
                0x1,
                UopKind::Cmp {
                    src1: reg::R1,
                    src2: Operand::Imm(0),
                },
                None,
                None,
            );
            b.push(
                0x2,
                UopKind::Branch {
                    cond: ICond::Eq,
                    target: 0x3,
                },
                None,
                Some(taken),
            );
        }
        assert_eq!(
            extract_chain(&b.ceb, 0x2, &BTreeSet::new(), &LIMITS),
            Err(ExtractOutcome::ForbiddenOp)
        );
    }

    #[test]
    fn single_instance_no_termination() {
        let mut b = CebBuilder::new();
        push_leela_iteration(&mut b, true, 1);
        assert_eq!(
            extract_chain(&b.ceb, 0x5, &BTreeSet::new(), &LIMITS),
            Err(ExtractOutcome::NoTermination)
        );
    }

    #[test]
    fn missing_target_reported() {
        let b = CebBuilder::new();
        assert_eq!(
            extract_chain(&b.ceb, 0x5, &BTreeSet::new(), &LIMITS),
            Err(ExtractOutcome::TargetMissing)
        );
    }

    #[test]
    fn too_long_chain_rejected() {
        let mut b = CebBuilder::new();
        for taken in [true, false] {
            // 20 dependent adds feeding the cmp.
            for _ in 0..20 {
                b.push(
                    0x0,
                    UopKind::Alu {
                        op: br_isa::AluOp::Add,
                        dst: reg::R1,
                        src1: reg::R1,
                        src2: Operand::Imm(1),
                    },
                    None,
                    None,
                );
            }
            b.push(
                0x1,
                UopKind::Cmp {
                    src1: reg::R1,
                    src2: Operand::Imm(0),
                },
                None,
                None,
            );
            b.push(
                0x2,
                UopKind::Branch {
                    cond: ICond::Eq,
                    target: 0x3,
                },
                None,
                Some(taken),
            );
        }
        assert_eq!(
            extract_chain(&b.ceb, 0x2, &BTreeSet::new(), &LIMITS),
            Err(ExtractOutcome::TooLong)
        );
    }

    #[test]
    fn compaction_reuses_registers() {
        // A chain of dependent adds: each dst can reuse the dying src reg,
        // so the whole chain should need very few locals.
        let mut b = CebBuilder::new();
        for taken in [true, false] {
            for _ in 0..10 {
                b.push(
                    0x0,
                    UopKind::Alu {
                        op: br_isa::AluOp::Add,
                        dst: reg::R1,
                        src1: reg::R1,
                        src2: Operand::Imm(1),
                    },
                    None,
                    None,
                );
            }
            b.push(
                0x1,
                UopKind::Cmp {
                    src1: reg::R1,
                    src2: Operand::Imm(0),
                },
                None,
                None,
            );
            b.push(
                0x2,
                UopKind::Branch {
                    cond: ICond::Eq,
                    target: 0x3,
                },
                None,
                Some(taken),
            );
        }
        let limits = ExtractLimits {
            max_chain_len: 16,
            local_regs: 8,
        };
        let chain = extract_chain(&b.ceb, 0x2, &BTreeSet::new(), &limits).unwrap();
        assert_eq!(chain.len(), 11);
        assert!(
            chain.num_local_regs <= 3,
            "dependent adds should need ~2 locals, got {}",
            chain.num_local_regs
        );
    }
}
