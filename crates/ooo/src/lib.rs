//! # br-ooo — the out-of-order core substrate
//!
//! A from-scratch, cycle-level out-of-order core in the style of Scarab
//! (the execution-driven simulator the paper uses): the front end drives a
//! functional emulator down the *predicted* path — including wrong paths —
//! so the Reorder Buffer genuinely contains wrong-path micro-ops at the
//! moment a misprediction is detected. Branch Runahead's merge-point
//! predictor (§4.4) depends on exactly that property: its Wrong Path
//! Buffer is filled by a forward ROB walk at flush time.
//!
//! The core models (Table 1 configuration by default):
//! * 4-wide fetch with taken-branch breaks and a front-end pipeline depth,
//! * a 256-entry ROB and 92-entry reservation stations,
//! * dependence scheduling via last-writer tracking, multi-cycle ALUs,
//! * a load/store unit with store-to-load forwarding and MSHR back-pressure
//!   against the shared [`br_mem::MemorySystem`],
//! * full misprediction recovery: emulator checkpoint restore, predictor
//!   history restore, rename-state restore, and redirect latency.
//!
//! External machinery (Branch Runahead itself, in `br-core`) observes and
//! steers the pipeline through the [`CoreHooks`] trait: prediction
//! override at fetch, wrong-path delivery at flush, and the in-order
//! retirement stream.
//!
//! ## Example
//!
//! ```
//! use br_isa::{reg, Machine, MemoryImage, ProgramBuilder};
//! use br_mem::{MemoryConfig, MemorySystem};
//! use br_ooo::{Core, CoreConfig, NullHooks};
//! use br_predictor::Bimodal;
//!
//! # fn main() -> Result<(), br_isa::IsaError> {
//! let mut b = ProgramBuilder::new();
//! b.mov_imm(reg::R1, 6);
//! b.mul(reg::R2, reg::R1, 7i64);
//! b.halt();
//! let program = b.build()?;
//!
//! let mut core = Core::new(
//!     CoreConfig::default(),
//!     program,
//!     Machine::new(MemoryImage::new().into_memory()),
//!     Box::new(Bimodal::new(12)),
//! );
//! let mut mem = MemorySystem::new(MemoryConfig::default());
//! let mut hooks = NullHooks;
//! for cycle in 0..1000 {
//!     let responses = mem.tick(cycle);
//!     if core.tick(&responses, &mut mem, &mut hooks).done {
//!         break;
//!     }
//! }
//! assert_eq!(core.machine().reg(reg::R2), 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod config;
mod core_impl;
mod hooks;
mod ras;
mod stats;

pub use config::CoreConfig;
pub use core_impl::{Core, CycleReport};
pub use hooks::{
    BranchOutcome, CoreHooks, FetchedBranch, MispredictInfo, NullHooks, PredictionProvenance,
    RetiredUop, WrongPathUop,
};
pub use ras::{Btb, ReturnAddressStack};
pub use stats::{BranchSiteStats, CoreStats};
