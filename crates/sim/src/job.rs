//! The unit of schedulable simulation work.
//!
//! A [`SimJob`] bundles everything one simulation run needs — the system
//! configuration, the workload name, the region's seed salt and SimPoint
//! weight, and the retired-uop budget — into a self-contained value that
//! is `Send`, independently executable, and hashable (for caching and
//! run-log identification). Experiment drivers *enumerate* jobs up front
//! and hand them to a runner (sequential or the sharded thread pool in
//! [`crate::runner`]); they never interleave enumeration with execution,
//! which is what makes the parallel and sequential paths bit-identical.

use std::sync::Arc;

use br_workloads::{all_workloads, workload_by_name, Workload, WorkloadImage, WorkloadParams};

use crate::config::SimConfig;
use crate::system::{RunResult, System};

/// Errors from experiment setup or execution.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A workload name did not match any registered kernel.
    UnknownWorkload {
        /// The name that failed to resolve.
        name: String,
        /// Every valid workload name, for the error message.
        valid: Vec<&'static str>,
    },
    /// A worker thread panicked while executing a job. The runner converts
    /// the panic into this error so the caller learns *which* job died
    /// instead of seeing a bare thread-join abort.
    JobPanicked {
        /// [`SimJob::label`] of the failing job.
        job: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownWorkload { name, valid } => {
                write!(
                    f,
                    "unknown workload {name:?}; valid names: {}",
                    valid.join(", ")
                )
            }
            SimError::JobPanicked { job, message } => {
                write!(f, "job {job} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// One independently executable simulation: a configuration, a workload
/// region, and a budget. The SimPoint `weight` rides along so the caller
/// can aggregate region results without tracking a side table.
#[derive(Clone, Debug)]
pub struct SimJob {
    /// The full system configuration (its `max_retired` is overridden by
    /// [`SimJob::max_retired`] at execution time).
    pub config: SimConfig,
    /// Registered workload name (e.g. `"leela_17"`).
    pub workload: String,
    /// Base build parameters; [`SimJob::region_seed`] salts the seed.
    pub params: WorkloadParams,
    /// Region index/salt: region `k` rebuilds the kernel with a seed
    /// derived from `params.seed` and `k` (the SimPoint analogue).
    pub region_seed: u64,
    /// SimPoint weight of this region in the workload's aggregate.
    pub weight: f64,
    /// Retired-uop budget for this run.
    pub max_retired: u64,
}

impl SimJob {
    /// The build parameters for this job's region: the base parameters
    /// with the seed salted by the region index.
    #[must_use]
    pub fn effective_params(&self) -> WorkloadParams {
        WorkloadParams {
            seed: self.params.seed ^ (self.region_seed.wrapping_mul(0x9E37_79B9)),
            ..self.params
        }
    }

    /// Resolves the workload, or reports the valid names.
    pub fn resolve(&self) -> Result<Box<dyn Workload>, SimError> {
        workload_by_name(&self.workload).ok_or_else(|| SimError::UnknownWorkload {
            name: self.workload.clone(),
            valid: all_workloads().iter().map(|w| w.name()).collect(),
        })
    }

    /// Builds this job's workload image. Runners that execute many jobs
    /// should build each distinct `(workload, params)` image once and
    /// share it via [`SimJob::execute`] instead.
    pub fn build_image(&self) -> Result<Arc<WorkloadImage>, SimError> {
        Ok(Arc::new(self.resolve()?.build(&self.effective_params())))
    }

    /// Executes the job against an already built image (the image must
    /// match [`SimJob::effective_params`]).
    #[must_use]
    pub fn execute(&self, image: &WorkloadImage) -> RunResult {
        let mut cfg = self.config.clone();
        cfg.max_retired = self.max_retired;
        System::new(cfg, image).run()
    }

    /// Builds and runs the job in one step.
    pub fn run(&self) -> Result<RunResult, SimError> {
        let image = self.build_image()?;
        Ok(self.execute(&image))
    }

    /// A short human-readable identity for logs and panic reports, e.g.
    /// `"tage-sc-l-64kb+br-mini/leela_17/r2"`.
    #[must_use]
    pub fn label(&self) -> String {
        let predictor = self.config.predictor.name();
        match &self.config.runahead {
            Some(rc) => format!(
                "{predictor}+br-{}/{}/r{}",
                rc.name, self.workload, self.region_seed
            ),
            None => format!("{predictor}/{}/r{}", self.workload, self.region_seed),
        }
    }

    /// The cache key identifying this job's workload image: distinct keys
    /// build distinct images, equal keys may share one.
    #[must_use]
    pub fn image_key(&self) -> (String, WorkloadParams) {
        (self.workload.clone(), self.effective_params())
    }

    /// A stable 64-bit fingerprint of the whole job (FNV-1a over the
    /// canonical debug form). Two jobs with the same fingerprint run the
    /// same simulation; useful for run logs and result caches.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let repr = format!(
            "{:?}|{}|{:?}|{}|{}|{}",
            self.config,
            self.workload,
            self.params,
            self.region_seed,
            self.weight.to_bits(),
            self.max_retired,
        );
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(workload: &str) -> SimJob {
        SimJob {
            config: SimConfig::baseline(),
            workload: workload.into(),
            params: WorkloadParams {
                scale: 512,
                iterations: 1_000_000,
                seed: 7,
            },
            region_seed: 0,
            weight: 1.0,
            max_retired: 5_000,
        }
    }

    #[test]
    fn job_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SimJob>();
        assert_send::<System>();
    }

    #[test]
    fn unknown_workload_lists_valid_names() {
        let err = job("no_such_kernel").run().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("no_such_kernel"));
        assert!(msg.contains("leela_17"), "must list valid names: {msg}");
    }

    #[test]
    fn job_runs_independently() {
        let r = job("leela_17").run().unwrap();
        assert!(r.core.retired_uops >= 5_000);
    }

    #[test]
    fn region_seed_salts_params() {
        let mut j = job("leela_17");
        let base = j.effective_params();
        j.region_seed = 1;
        assert_ne!(base.seed, j.effective_params().seed);
        assert_eq!(base.scale, j.effective_params().scale);
    }

    #[test]
    fn label_is_human_readable() {
        let mut j = job("leela_17");
        j.region_seed = 2;
        assert_eq!(j.label(), "tage-sc-l-64kb/leela_17/r2");
        j.config = SimConfig::mini_br();
        assert_eq!(j.label(), "tage-sc-l-64kb+br-mini/leela_17/r2");
    }

    #[test]
    fn fingerprint_distinguishes_jobs() {
        let a = job("leela_17");
        let mut b = job("leela_17");
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.region_seed = 3;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = job("bfs");
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
