//! The observation/steering interface between the core and Branch Runahead.

use br_isa::{CpuState, ExecRecord, Pc, RegSet, Uop};

/// Who supplied the final direction used at fetch for a conditional branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PredictionProvenance {
    /// The baseline history predictor (TAGE-SC-L).
    BasePredictor,
    /// A Branch Runahead prediction queue.
    Dce,
}

/// A conditional branch as seen at fetch time.
#[derive(Clone, Copy, Debug)]
pub struct FetchedBranch {
    /// Dynamic sequence number (also its ROB identity).
    pub seq: u64,
    /// Branch PC.
    pub pc: Pc,
    /// Direction the fetch unit followed.
    pub followed: bool,
    /// What the baseline predictor said.
    pub base_prediction: bool,
    /// Who provided `followed`.
    pub provenance: PredictionProvenance,
    /// Fetch cycle.
    pub cycle: u64,
}

/// A retired (architecturally committed) micro-op.
#[derive(Clone, Copy, Debug)]
pub struct RetiredUop {
    /// Dynamic sequence number.
    pub seq: u64,
    /// The static uop.
    pub uop: Uop,
    /// Its resolved execution record (addresses, values, directions).
    pub rec: ExecRecord,
    /// Retirement cycle.
    pub cycle: u64,
}

/// Outcome information delivered when a conditional branch retires.
#[derive(Clone, Copy, Debug)]
pub struct BranchOutcome {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Branch PC.
    pub pc: Pc,
    /// The resolved direction.
    pub taken: bool,
    /// Whether the fetch-time direction was wrong (a misprediction).
    pub mispredicted: bool,
    /// What the baseline predictor had said at fetch.
    pub base_prediction: bool,
    /// Who provided the fetch-time direction.
    pub provenance: PredictionProvenance,
    /// Retirement cycle.
    pub cycle: u64,
}

/// A summary of one wrong-path uop handed to the flush hook (the material
/// the Wrong Path Buffer ingests during its ROB walk, §4.4).
#[derive(Clone, Copy, Debug)]
pub struct WrongPathUop {
    /// The uop's PC.
    pub pc: Pc,
    /// Registers it wrote.
    pub dsts: RegSet,
    /// Memory address written, for stores.
    pub store_addr: Option<u64>,
    /// Whether it is a conditional branch, and its followed direction.
    pub branch: Option<bool>,
}

/// Details of a detected misprediction, delivered *after* the emulator has
/// been restored to the corrected point (so `CpuState` passed alongside is
/// the synchronized architectural register file the DCE copies live-ins
/// from, §4.1).
#[derive(Clone, Copy, Debug)]
pub struct MispredictInfo {
    /// Sequence number of the mispredicted branch.
    pub seq: u64,
    /// Branch PC.
    pub pc: Pc,
    /// The correct direction.
    pub actual_taken: bool,
    /// The direction fetch had followed.
    pub followed: bool,
    /// What the baseline predictor had said (for throttle maintenance:
    /// a DCE-caused misprediction where TAGE was right is the §4.2
    /// "DCE incorrect and TAGE correct" event).
    pub base_prediction: bool,
    /// Who provided the wrong direction.
    pub provenance: PredictionProvenance,
    /// Whether the mispredicting uop was a conditional branch (false =
    /// an indirect jump's target misprediction).
    pub conditional: bool,
    /// Cycle of detection.
    pub cycle: u64,
}

/// Observation/steering callbacks invoked by [`crate::Core`].
///
/// The default implementations observe nothing and never override, so a
/// baseline (no Branch Runahead) simulation can pass [`NullHooks`].
pub trait CoreHooks {
    /// Asked once per fetched conditional branch, before the speculative
    /// history update: return `Some(direction)` to override the baseline
    /// prediction (the paper's prediction-queue MUX in front of TAGE).
    fn override_prediction(&mut self, _pc: Pc, _base: bool, _cycle: u64) -> Option<bool> {
        None
    }

    /// A conditional branch was fetched with the final direction decided.
    fn on_branch_fetch(&mut self, _b: &FetchedBranch) {}

    /// A misprediction was detected. `wrong_path` is the younger ROB
    /// content in fetch order (the ROB-walk source); `cpu` is the restored
    /// architectural register state (live-in source).
    fn on_mispredict(
        &mut self,
        _info: &MispredictInfo,
        _wrong_path: &[WrongPathUop],
        _cpu: &CpuState,
    ) {
    }

    /// A uop retired (called in program order for every retired uop).
    fn on_retire(&mut self, _u: &RetiredUop) {}

    /// A conditional branch retired (called after its `on_retire`).
    fn on_branch_retire(&mut self, _b: &BranchOutcome) {}
}

/// Hooks that do nothing: the baseline core.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullHooks;

impl CoreHooks for NullHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_hooks_never_override() {
        let mut h = NullHooks;
        assert_eq!(h.override_prediction(0x40, true, 0), None);
    }
}
