//! Text rendering of experiment results (one table per figure).

use std::fmt;

/// How the summary row aggregates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeanKind {
    /// Arithmetic mean (the paper's MPKI-improvement summaries).
    Arithmetic,
    /// Geometric mean over `1 + x/100` (the paper's IPC summaries).
    GeometricPct,
}

/// A figure/table result: one row per workload, one column per series.
#[derive(Clone, Debug)]
pub struct ExpTable {
    /// Title, e.g. `"Figure 10: IPC improvement (%)"`.
    pub title: String,
    /// Column (series) names.
    pub series: Vec<String>,
    /// `(workload, values)` rows.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Aggregation for the summary row.
    pub mean: MeanKind,
}

impl ExpTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, series: Vec<String>, mean: MeanKind) -> Self {
        ExpTable {
            title: title.into(),
            series,
            rows: Vec::new(),
            mean,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the series count.
    pub fn push_row(&mut self, workload: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.series.len(), "row arity mismatch");
        self.rows.push((workload.into(), values));
    }

    /// The summary (mean) row values.
    #[must_use]
    pub fn mean_row(&self) -> Vec<f64> {
        if self.rows.is_empty() {
            return vec![0.0; self.series.len()];
        }
        (0..self.series.len())
            .map(|c| {
                let vals = self.rows.iter().map(|(_, v)| v[c]);
                match self.mean {
                    MeanKind::Arithmetic => vals.sum::<f64>() / self.rows.len() as f64,
                    MeanKind::GeometricPct => {
                        let prod: f64 = vals.map(|v| (1.0 + v / 100.0).max(1e-9).ln()).sum();
                        ((prod / self.rows.len() as f64).exp() - 1.0) * 100.0
                    }
                }
            })
            .collect()
    }

    /// The value at `(workload, series)`, if present.
    #[must_use]
    pub fn value(&self, workload: &str, series: &str) -> Option<f64> {
        let c = self.series.iter().position(|s| s == series)?;
        let (_, v) = self.rows.iter().find(|(w, _)| w == workload)?;
        Some(v[c])
    }

    /// Renders the table as a small JSON document (hand-rolled to avoid a
    /// JSON dependency): `{"title", "series", "rows": {wl: [..]}, "mean"}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.4}")
            } else {
                "null".to_string()
            }
        }
        let series: Vec<String> = self
            .series
            .iter()
            .map(|s| format!("\"{}\"", esc(s)))
            .collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|(w, vals)| {
                let vs: Vec<String> = vals.iter().map(|v| num(*v)).collect();
                format!("\"{}\": [{}]", esc(w), vs.join(", "))
            })
            .collect();
        let mean: Vec<String> = self.mean_row().iter().map(|v| num(*v)).collect();
        format!(
            "{{\"title\": \"{}\", \"series\": [{}], \"rows\": {{{}}}, \"mean\": [{}]}}",
            esc(&self.title),
            series.join(", "),
            rows.join(", "),
            mean.join(", ")
        )
    }
}

impl fmt::Display for ExpTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        write!(f, "{:<14}", "workload")?;
        for s in &self.series {
            write!(f, " {s:>16}")?;
        }
        writeln!(f)?;
        for (w, vals) in &self.rows {
            write!(f, "{w:<14}")?;
            for v in vals {
                write!(f, " {v:>16.2}")?;
            }
            writeln!(f)?;
        }
        let label = match self.mean {
            MeanKind::Arithmetic => "mean",
            MeanKind::GeometricPct => "gmean",
        };
        write!(f, "{label:<14}")?;
        for v in self.mean_row() {
            write!(f, " {v:>16.2}")?;
        }
        writeln!(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_mean() {
        let mut t = ExpTable::new("t", vec!["a".into()], MeanKind::Arithmetic);
        t.push_row("w1", vec![10.0]);
        t.push_row("w2", vec![20.0]);
        assert_eq!(t.mean_row(), vec![15.0]);
        assert_eq!(t.value("w2", "a"), Some(20.0));
        assert_eq!(t.value("w2", "b"), None);
    }

    #[test]
    fn geometric_mean_pct() {
        let mut t = ExpTable::new("t", vec!["a".into()], MeanKind::GeometricPct);
        t.push_row("w1", vec![0.0]);
        t.push_row("w2", vec![21.0]);
        let g = t.mean_row()[0];
        // sqrt(1.21) = 1.1 → 10%
        assert!((g - 10.0).abs() < 0.01, "{g}");
    }

    #[test]
    fn render_includes_everything() {
        let mut t = ExpTable::new(
            "Figure X",
            vec!["s1".into(), "s2".into()],
            MeanKind::Arithmetic,
        );
        t.push_row("leela_17", vec![1.0, 2.0]);
        let s = t.to_string();
        assert!(s.contains("Figure X") && s.contains("leela_17") && s.contains("mean"));
    }

    #[test]
    fn json_rendering_well_formed() {
        let mut t = ExpTable::new(
            "Figure \"X\"",
            vec!["s1".into(), "s2".into()],
            MeanKind::Arithmetic,
        );
        t.push_row("leela_17", vec![1.5, -2.0]);
        let j = t.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"leela_17\": [1.5000, -2.0000]"), "{j}");
        assert!(j.contains("\\\"X\\\""), "title quotes escaped: {j}");
        assert!(j.contains("\"mean\": [1.5000, -2.0000]"), "{j}");
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = ExpTable::new("t", vec!["a".into()], MeanKind::Arithmetic);
        t.push_row("w", vec![1.0, 2.0]);
    }
}
