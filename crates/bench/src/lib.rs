//! # br-bench — the benchmark harness
//!
//! Two entry points:
//!
//! * the **`figures` binary** regenerates every table and figure of the
//!   paper's evaluation:
//!
//!   ```text
//!   cargo run --release -p br-bench --bin figures -- all
//!   cargo run --release -p br-bench --bin figures -- --threads 4 fig10
//!   cargo run --release -p br-bench --bin figures -- --quick fig12
//!   ```
//!
//! * the **timing benches** (`cargo bench -p br-bench`) time reduced
//!   versions of each experiment plus component micro-benchmarks
//!   (predictor lookups, cache accesses, chain extraction).
//!
//! The experiment logic itself lives in [`br_sim::experiments`]; this
//! crate only drives it.

#![warn(missing_docs)]

pub mod perf;

#[cfg(feature = "bench-alloc")]
pub mod alloc_count;

use std::path::{Path, PathBuf};

use br_sim::experiments::{self, ExperimentSetup};
use br_sim::{run_jobs, SimConfig, SimError, TelemetryRun};
use br_telemetry::export;

/// Names accepted by the `figures` binary.
pub const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig5",
    "fig10",
    "fig11-top",
    "fig11-bottom",
    "fig12",
    "fig13",
    "fig14",
    "merge-point",
    "ablations",
    "area",
];

/// Runs one named experiment and returns its JSON rendering (tables and
/// static reports are wrapped as a string field). Every object carries a
/// `"seconds"` field: the wall-clock time the experiment took.
///
/// # Errors
///
/// Propagates [`SimError`] from the experiment (e.g. an unknown workload
/// name in the setup), and reports an unknown *experiment* name as
/// [`SimError::InvalidConfig`] listing [`EXPERIMENTS`].
pub fn run_experiment_json(name: &str, setup: &ExperimentSetup) -> Result<String, SimError> {
    let started = std::time::Instant::now();
    let body = match name {
        "table1" | "table2" | "area" => {
            let text = run_experiment(name, setup)?
                .replace('\n', "\\n")
                .replace('"', "\\\"");
            format!("\"name\": \"{name}\", \"text\": \"{text}\"")
        }
        "fig10" => {
            let (mpki, ipc) = experiments::fig10(setup)?;
            format!(
                "\"name\": \"fig10\", \"mpki\": {}, \"ipc\": {}",
                mpki.to_json(),
                ipc.to_json()
            )
        }
        other => {
            let t = match other {
                "fig1" => experiments::fig1(setup)?,
                "fig2" => experiments::fig2(setup)?,
                "fig3" => experiments::fig3(setup)?,
                "fig5" => experiments::fig5(setup)?,
                "fig11-top" => experiments::fig11_top(setup)?,
                "fig11-bottom" => experiments::fig11_bottom(setup)?,
                "fig12" => experiments::fig12(setup)?,
                "fig13" => experiments::fig13(setup)?,
                "fig14" => experiments::fig14(setup)?,
                "merge-point" => experiments::merge_point(setup)?,
                "ablations" => experiments::ablations(setup)?,
                _ => return Err(unknown_experiment(other)),
            };
            format!("\"name\": \"{other}\", \"table\": {}", t.to_json())
        }
    };
    Ok(format!(
        "{{{body}, \"seconds\": {:.3}}}",
        started.elapsed().as_secs_f64()
    ))
}

/// Reports an unknown experiment name as a typed, actionable error.
fn unknown_experiment(name: &str) -> SimError {
    SimError::InvalidConfig(format!(
        "unknown experiment {name:?}; known: {EXPERIMENTS:?}"
    ))
}

/// Runs one named experiment and returns its rendered output.
///
/// # Errors
///
/// Propagates [`SimError`] from the experiment (e.g. an unknown workload
/// name in the setup), and reports an unknown *experiment* name as
/// [`SimError::InvalidConfig`] listing [`EXPERIMENTS`].
pub fn run_experiment(name: &str, setup: &ExperimentSetup) -> Result<String, SimError> {
    Ok(match name {
        "table1" => br_sim::SimConfig::baseline().render_table1(),
        "table2" => br_sim::render_table2(),
        "fig1" => experiments::fig1(setup)?.to_string(),
        "fig2" => experiments::fig2(setup)?.to_string(),
        "fig3" => experiments::fig3(setup)?.to_string(),
        "fig5" => experiments::fig5(setup)?.to_string(),
        "fig10" => {
            let (mpki, ipc) = experiments::fig10(setup)?;
            format!("{mpki}\n{ipc}")
        }
        "fig11-top" => experiments::fig11_top(setup)?.to_string(),
        "fig11-bottom" => experiments::fig11_bottom(setup)?.to_string(),
        "fig12" => experiments::fig12(setup)?.to_string(),
        "fig13" => experiments::fig13(setup)?.to_string(),
        "fig14" => experiments::fig14(setup)?.to_string(),
        "merge-point" => experiments::merge_point(setup)?.to_string(),
        "ablations" => experiments::ablations(setup)?.to_string(),
        "area" => experiments::area_report(),
        other => return Err(unknown_experiment(other)),
    })
}

/// Runs the setup's workloads under Mini Branch Runahead with telemetry
/// enabled and writes every exporter's output into `dir`:
/// `trace.json` (Chrome trace viewer), `samples.jsonl` / `samples.csv`
/// (interval samples), `events.jsonl` (the event ring), and
/// `counters.json` (final counter/gauge/histogram values). Jobs execute
/// on `setup.threads` workers; the files are assembled from results in
/// job order, so output is byte-identical for any thread count. Returns
/// the written paths.
///
/// # Errors
///
/// Propagates [`SimError`] from the runs; filesystem failures creating
/// `dir` or writing the files surface as [`SimError::Io`] naming the
/// path.
pub fn export_telemetry(setup: &ExperimentSetup, dir: &Path) -> Result<Vec<PathBuf>, SimError> {
    let io_err = |path: &Path, e: std::io::Error| SimError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    let mut setup = setup.clone();
    setup.telemetry.enabled = true;
    let jobs: Vec<br_sim::SimJob> = setup
        .workloads
        .clone()
        .iter()
        .flat_map(|w| setup.jobs(&SimConfig::mini_br(), w))
        .collect();
    let results = run_jobs(&jobs, setup.threads)?;
    let runs: Vec<(String, TelemetryRun)> = jobs
        .iter()
        .zip(results)
        .filter_map(|(job, r)| r.telemetry.map(|t| (job.label(), t)))
        .collect();
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let files: [(&str, String); 5] = [
        ("trace.json", export::chrome_trace(&runs)),
        ("samples.jsonl", export::samples_jsonl(&runs)),
        ("samples.csv", export::samples_csv(&runs)),
        ("events.jsonl", export::events_jsonl(&runs)),
        ("counters.json", export::counters_json(&runs)),
    ];
    let mut written = Vec::with_capacity(files.len());
    for (name, contents) in files {
        let path = dir.join(name);
        std::fs::write(&path, contents).map_err(|e| io_err(&path, e))?;
        written.push(path);
    }
    Ok(written)
}

/// Runs the architectural-equivalence soak over the setup's workloads
/// under Mini Branch Runahead: each `(workload, region)` job runs once
/// fault-free and `schedules` times under seeded fault schedules derived
/// from `spec`, with machine checks always on. See [`br_sim::run_soak`]
/// for the pass criterion (bit-identical retired instruction streams).
#[must_use]
pub fn run_faults_soak(
    setup: &ExperimentSetup,
    spec: br_sim::FaultSpec,
    schedules: u32,
) -> br_sim::SoakReport {
    let jobs: Vec<br_sim::SimJob> = setup
        .workloads
        .clone()
        .iter()
        .flat_map(|w| setup.jobs(&SimConfig::mini_br(), w))
        .collect();
    br_sim::run_soak(&jobs, spec, schedules, setup.threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_experiments_render() {
        let setup = ExperimentSetup::quick();
        for name in ["table1", "table2", "area"] {
            let out = run_experiment(name, &setup).unwrap();
            assert!(!out.is_empty(), "{name} produced nothing");
        }
    }

    #[test]
    fn json_carries_timing() {
        let setup = ExperimentSetup::quick();
        let out = run_experiment_json("table1", &setup).unwrap();
        assert!(out.contains("\"seconds\": "), "missing timing: {out}");
    }

    #[test]
    fn unknown_workload_is_an_error_not_a_panic() {
        let mut setup = ExperimentSetup::quick();
        setup.workloads = vec!["nope".into()];
        let err = run_experiment("fig2", &setup).unwrap_err();
        assert!(err.to_string().contains("nope"));
        assert!(err.to_string().contains("leela_17"));
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        for f in [run_experiment, run_experiment_json] {
            let err = f("fig99", &ExperimentSetup::quick()).unwrap_err();
            assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");
            assert!(err.to_string().contains("fig99"), "{err}");
            assert!(err.to_string().contains("fig10"), "lists known: {err}");
        }
    }
}
