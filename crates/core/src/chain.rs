//! Dependence-chain representation after extraction and local rename.
//!
//! A chain is the backward dataflow slice of a hard-to-predict branch,
//! expressed over *local* registers (local rename happens once, at
//! extraction — §4.3). The chain's live-in/live-out maps record which
//! architectural registers each local register corresponds to; global
//! rename (at initiation) uses them to link an instance to its producer's
//! register file (§4.2, Figure 8).

use std::collections::BTreeSet;
use std::fmt;

use br_isa::{AluOp, ArchReg, Cond, Pc, Width};

/// Index into a chain's local register file.
pub type LocalReg = u8;

/// A register-or-immediate source inside a chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainSrc {
    /// A local register.
    Reg(LocalReg),
    /// An immediate.
    Imm(i64),
}

/// One executable chain micro-op. Chains contain no stores and no control
/// flow — guaranteed by construction (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainOp {
    /// ALU operation.
    Alu {
        /// Operation (never `Div` — rejected at extraction).
        op: AluOp,
        /// Destination local register.
        dst: LocalReg,
        /// First source.
        src1: ChainSrc,
        /// Second source.
        src2: ChainSrc,
    },
    /// Register/immediate move (most are move-eliminated; immediates that
    /// fed an eliminated store→load pair survive as moves).
    Mov {
        /// Destination local register.
        dst: LocalReg,
        /// Source.
        src: ChainSrc,
    },
    /// Memory load.
    Load {
        /// Destination local register.
        dst: LocalReg,
        /// Base register.
        base: Option<ChainSrc>,
        /// Index register.
        index: Option<ChainSrc>,
        /// Index scale.
        scale: u8,
        /// Displacement.
        disp: i64,
        /// Access width.
        width: Width,
        /// Sign extension.
        signed: bool,
    },
    /// Flag-setting compare; the chain's final outcome is `cond(flags)`.
    Cmp {
        /// First source.
        src1: ChainSrc,
        /// Second source.
        src2: ChainSrc,
    },
}

impl ChainOp {
    /// Local registers this op reads.
    #[must_use]
    pub fn src_regs(&self) -> Vec<LocalReg> {
        let mut v = Vec::new();
        let mut push = |s: &ChainSrc| {
            if let ChainSrc::Reg(r) = s {
                v.push(*r);
            }
        };
        match self {
            ChainOp::Alu { src1, src2, .. } | ChainOp::Cmp { src1, src2 } => {
                push(src1);
                push(src2);
            }
            ChainOp::Mov { src, .. } => push(src),
            ChainOp::Load { base, index, .. } => {
                if let Some(b) = base {
                    push(b);
                }
                if let Some(i) = index {
                    push(i);
                }
            }
        }
        v
    }

    /// The local register this op writes, if any (`Cmp` writes the chain's
    /// flags instead).
    #[must_use]
    pub fn dst_reg(&self) -> Option<LocalReg> {
        match self {
            ChainOp::Alu { dst, .. } | ChainOp::Mov { dst, .. } | ChainOp::Load { dst, .. } => {
                Some(*dst)
            }
            ChainOp::Cmp { .. } => None,
        }
    }

    /// Whether this op is a load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, ChainOp::Load { .. })
    }

    /// Compute latency in cycles (memory latency modelled separately).
    #[must_use]
    pub fn latency(&self) -> u64 {
        match self {
            ChainOp::Alu { op, .. } => u64::from(op.latency()),
            _ => 1,
        }
    }
}

/// The tag that initiates a chain: a trigger branch PC and the outcome it
/// must produce. `outcome == None` is the wildcard `<PC, *>` of §3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ChainTag {
    /// Triggering branch PC.
    pub pc: Pc,
    /// Required trigger outcome; `None` matches either direction.
    pub outcome: Option<bool>,
}

impl ChainTag {
    /// Whether an observed `(pc, outcome)` event matches this tag.
    #[must_use]
    pub fn matches(&self, pc: Pc, outcome: bool) -> bool {
        self.pc == pc && self.outcome.is_none_or(|o| o == outcome)
    }

    /// Whether this is a wildcard tag.
    #[must_use]
    pub fn is_wildcard(&self) -> bool {
        self.outcome.is_none()
    }
}

impl fmt::Display for ChainTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.outcome {
            None => write!(f, "<{:#x}, *>", self.pc),
            Some(true) => write!(f, "<{:#x}, T>", self.pc),
            Some(false) => write!(f, "<{:#x}, NT>", self.pc),
        }
    }
}

/// An extracted, locally renamed dependence chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DependenceChain {
    /// Initiation tag.
    pub tag: ChainTag,
    /// PC of the branch this chain pre-computes.
    pub branch_pc: Pc,
    /// The branch's condition, applied to the chain's final flags.
    pub cond: Cond,
    /// Chain ops in program order.
    pub ops: Vec<ChainOp>,
    /// Architectural live-ins: `(arch reg, local reg)` pairs, copied from
    /// the producer at initiation.
    pub live_ins: Vec<(ArchReg, LocalReg)>,
    /// Architectural live-outs: `(arch reg, binding)` pairs exposed to
    /// successor chains. A binding may be an immediate when move
    /// elimination folded a constant into the register.
    pub live_outs: Vec<(ArchReg, ChainSrc)>,
    /// Number of local registers used.
    pub num_local_regs: usize,
    /// Whether extraction terminated at an affector/guard branch (versus a
    /// second instance of the target itself). Drives Figure 5.
    pub guard_terminated: bool,
    /// Uops eliminated by move / store→load elimination (for stats).
    pub eliminated_uops: usize,
    /// Static PCs of every uop in the backward slice (including ones that
    /// move elimination removed). Diagnostic: shows *which* program
    /// instructions the chain covers.
    pub source_pcs: BTreeSet<Pc>,
}

impl DependenceChain {
    /// Number of executable uops in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the chain has no executable uops (possible when everything
    /// was move-eliminated; the outcome still depends on live-in flags —
    /// such chains are rejected at extraction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The local register holding the live-in copy of `r`, if any.
    #[must_use]
    pub fn live_in_local(&self, r: ArchReg) -> Option<LocalReg> {
        self.live_ins.iter().find(|(a, _)| *a == r).map(|(_, l)| *l)
    }

    /// The binding whose final value corresponds to arch reg `r` at chain
    /// end, if the chain writes it.
    #[must_use]
    pub fn live_out_binding(&self, r: ArchReg) -> Option<ChainSrc> {
        self.live_outs
            .iter()
            .find(|(a, _)| *a == r)
            .map(|(_, l)| *l)
    }
}

impl fmt::Display for DependenceChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chain tag {} -> branch {:#x} ({:?}), {} ops, {} live-ins",
            self.tag,
            self.branch_pc,
            self.cond,
            self.ops.len(),
            self.live_ins.len()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_matching() {
        let wild = ChainTag {
            pc: 0x10,
            outcome: None,
        };
        assert!(wild.is_wildcard());
        assert!(wild.matches(0x10, true) && wild.matches(0x10, false));
        assert!(!wild.matches(0x14, true));

        let nt = ChainTag {
            pc: 0x10,
            outcome: Some(false),
        };
        assert!(nt.matches(0x10, false));
        assert!(!nt.matches(0x10, true));
        assert_eq!(nt.to_string(), "<0x10, NT>");
        assert_eq!(wild.to_string(), "<0x10, *>");
    }

    #[test]
    fn op_dataflow() {
        let op = ChainOp::Alu {
            op: AluOp::Add,
            dst: 2,
            src1: ChainSrc::Reg(0),
            src2: ChainSrc::Imm(4),
        };
        assert_eq!(op.src_regs(), vec![0]);
        assert_eq!(op.dst_reg(), Some(2));

        let cmp = ChainOp::Cmp {
            src1: ChainSrc::Reg(1),
            src2: ChainSrc::Imm(2),
        };
        assert_eq!(cmp.dst_reg(), None);
        assert_eq!(cmp.src_regs(), vec![1]);

        let ld = ChainOp::Load {
            dst: 3,
            base: Some(ChainSrc::Reg(0)),
            index: Some(ChainSrc::Reg(1)),
            scale: 4,
            disp: 0x6f0,
            width: Width::B4,
            signed: false,
        };
        assert!(ld.is_load());
        assert_eq!(ld.src_regs(), vec![0, 1]);
    }
}
