//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [--json] [--threads N] [--retired N] [--regions K]
//!         [--workloads a,b,c] [--telemetry-out DIR] [--sample-interval N]
//!         [--faults SPEC [--soak N]] [--bench [--bench-ref SECS]]
//!         [<experiment>|all]
//! ```

use std::process::ExitCode;

use br_bench::{
    export_telemetry, perf, run_experiment, run_experiment_json, run_faults_soak, EXPERIMENTS,
};
use br_sim::experiments::ExperimentSetup;
use br_sim::FaultSpec;

// With `--features bench-alloc` every heap allocation in the process is
// counted, making `figures --bench` report allocations per job.
#[cfg(feature = "bench-alloc")]
#[global_allocator]
static GLOBAL: br_bench::alloc_count::CountingAllocator = br_bench::alloc_count::CountingAllocator;

fn usage() -> ExitCode {
    eprintln!(
        "usage: figures [--quick] [--json] [--threads N] [--retired N] [--regions K] [--workloads a,b,c] [--telemetry-out DIR] [--sample-interval N] [--faults SPEC [--soak N]] <experiment>|all\n\
         \x20 --threads N          run simulations on N worker threads (0 = one per CPU; default 1)\n\
         \x20 --telemetry-out DIR  also run the workloads with telemetry enabled and write\n\
         \x20                      trace.json/samples.{{jsonl,csv}}/events.jsonl/counters.json to DIR\n\
         \x20 --sample-interval N  telemetry sample cadence in retired uops (default 10000)\n\
         \x20 --faults SPEC        run the fault-injection soak: \"default\" or key=value list\n\
         \x20                      (flip/drop/evict/decay/delaymem=<prob>, delay/period/seed=<int>,\n\
         \x20                      sabotage=0|1); prints a JSON report, exits nonzero on failure\n\
         \x20 --soak N             fault schedules per job in the soak (default 4)\n\
         \x20 --bench              run the perf suite and write BENCH_quick.json (with\n\
         \x20                      --quick) or BENCH_full.json; build with\n\
         \x20                      --features bench-alloc to also count heap allocations\n\
         \x20 --bench-ref SECS     record SECS as the reference build's total for the\n\
         \x20                      suite and report the speedup against it\n\
         experiments: {}",
        EXPERIMENTS.join(", ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut setup = ExperimentSetup::default();
    let mut targets: Vec<String> = Vec::new();
    let mut json = false;
    let mut threads = setup.threads;
    let mut telemetry_out: Option<std::path::PathBuf> = None;
    let mut faults: Option<FaultSpec> = None;
    let mut soak_schedules: u32 = 4;
    let mut bench = false;
    let mut bench_ref: Option<f64> = None;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                setup = ExperimentSetup::quick();
                quick = true;
            }
            "--json" => json = true,
            "--threads" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                threads = n;
            }
            "--retired" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                setup.max_retired = n;
            }
            "--regions" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage();
                };
                // Paper-style 1..=5 regions with decaying weights.
                setup = setup.with_regions(n);
            }
            "--workloads" => {
                let Some(list) = args.next() else {
                    return usage();
                };
                setup.workloads = list.split(',').map(str::to_string).collect();
            }
            "--telemetry-out" => {
                let Some(dir) = args.next() else {
                    return usage();
                };
                telemetry_out = Some(dir.into());
            }
            "--sample-interval" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                setup.telemetry.sample_interval = n;
            }
            "--faults" => {
                let Some(spec) = args.next() else {
                    return usage();
                };
                match FaultSpec::parse(&spec) {
                    Ok(s) => faults = Some(s),
                    Err(e) => {
                        eprintln!("error: {e}");
                        return usage();
                    }
                }
            }
            "--soak" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                soak_schedules = n;
            }
            "--bench" => bench = true,
            "--bench-ref" => {
                let Some(s) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                bench_ref = Some(s);
            }
            "--help" | "-h" => return usage(),
            name => targets.push(name.to_string()),
        }
    }
    setup.threads = threads;
    if targets.is_empty() && telemetry_out.is_none() && faults.is_none() && !bench {
        return usage();
    }
    if targets.iter().any(|t| t == "all") {
        targets = EXPERIMENTS.iter().map(|s| (*s).to_string()).collect();
    }
    for t in &targets {
        if !EXPERIMENTS.contains(&t.as_str()) {
            eprintln!("unknown experiment {t:?}");
            return usage();
        }
    }
    for t in targets {
        let started = std::time::Instant::now();
        let rendered = if json {
            run_experiment_json(&t, &setup)
        } else {
            run_experiment(&t, &setup).map(|out| format!("=== {t} ===\n{out}"))
        };
        match rendered {
            Ok(out) => println!("{out}"),
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        }
        eprintln!("[{t}: {:.1}s]", started.elapsed().as_secs_f64());
    }
    if let Some(dir) = telemetry_out {
        let started = std::time::Instant::now();
        match export_telemetry(&setup, &dir) {
            Ok(files) => {
                for f in files {
                    eprintln!("wrote {}", f.display());
                }
            }
            Err(e) => {
                eprintln!("error: telemetry export failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("[telemetry: {:.1}s]", started.elapsed().as_secs_f64());
    }
    if bench {
        let suite = if quick { "quick" } else { "full" };
        match perf::run_bench(&setup, suite, bench_ref) {
            Ok(report) => {
                let path = format!("BENCH_{suite}.json");
                if let Err(e) = std::fs::write(&path, report.to_json()) {
                    eprintln!("error: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                for j in &report.jobs {
                    eprintln!(
                        "bench {}: {:.3}s, {:.0} uops/s{}",
                        j.name,
                        j.seconds,
                        j.uops_per_sec,
                        j.allocations
                            .map(|a| format!(", {a} allocs"))
                            .unwrap_or_default()
                    );
                }
                if let Some(s) = report.speedup() {
                    eprintln!("bench speedup vs reference: {s:.2}x");
                }
                eprintln!(
                    "wrote {path} [bench: {:.1}s total, {:.0} uops/s]",
                    report.total_seconds,
                    report.uops_per_sec()
                );
            }
            Err(e) => {
                eprintln!("error: bench failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(spec) = faults {
        let started = std::time::Instant::now();
        let report = run_faults_soak(&setup, spec, soak_schedules);
        // The JSON report is the machine-readable contract (see
        // tools/check_soak.py); human-readable failure lines go to stderr.
        println!("{}", report.to_json());
        for f in &report.failures {
            eprintln!("soak failure: {}", f.error);
        }
        eprintln!(
            "[soak: {} runs, {} failures, {:.1}s]",
            report.runs.len(),
            report.failures.len(),
            started.elapsed().as_secs_f64()
        );
        if !report.passed() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
