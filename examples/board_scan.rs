//! The paper's Figure 4 walkthrough: the `leela_17` GO-board kernel.
//!
//! Runs the kernel under Mini Branch Runahead and then dissects what the
//! hardware learned: the extracted dependence chains (with their
//! `<PC, outcome>` tags), the affector/guard relationships in the Hard
//! Branch Table, and the per-branch accuracy of the DCE's predictions.
//!
//! ```text
//! cargo run --release --example board_scan
//! ```

use branch_runahead::sim::{SimConfig, System};
use branch_runahead::workloads::{workload_by_name, WorkloadParams};

fn main() {
    let w = workload_by_name("leela_17").expect("leela_17 registered");
    let params = WorkloadParams::default();
    println!("== Figure 4 walkthrough: {} ==\n", w.name());

    // Show the kernel's hot loop.
    let image = w.build(&params);
    println!("kernel micro-ops:");
    for uop in image.program.iter().take(40) {
        println!("  {uop}");
    }

    let mut cfg = SimConfig::mini_br();
    cfg.max_retired = 300_000;
    let mut sys = System::new(cfg, &image);
    let result = sys.run();
    let br_sys = sys.runahead().expect("BR enabled");

    println!("\nextracted dependence chains:");
    for chain in br_sys.chain_cache().iter() {
        println!("{chain}");
        // The slice's static coverage: which program uops feed the branch.
        let pcs: Vec<String> = chain.source_pcs.iter().map(|p| format!("{p:#x}")).collect();
        println!("  slice covers program uops: [{}]\n", pcs.join(", "));
    }

    println!("affector/guard relationships (HBT):");
    for uop in sys.core().program().iter() {
        if uop.is_cond_branch() {
            if let Some(e) = br_sys.hard_branch_table().get(uop.pc) {
                println!(
                    "  branch {:#06x}: misp-ctr {:>2}, biased {}, guarded/affected by {:?}",
                    uop.pc,
                    e.misp_counter,
                    e.is_biased(),
                    e.agl
                );
            }
        }
    }

    println!("\nper-branch outcome (hardest first):");
    for (pc, s) in result.core.hardest_branches(5) {
        println!(
            "  branch {:#06x}: {:>7} execs, followed-misp {:>5.1}%, TAGE-alone-misp {:>5.1}%, DCE supplied {:>5.1}%",
            pc,
            s.executed,
            s.misp_rate() * 100.0,
            s.base_wrong as f64 / s.executed.max(1) as f64 * 100.0,
            s.dce_provided as f64 / s.executed.max(1) as f64 * 100.0,
        );
    }

    let br = result.br.expect("BR stats");
    println!(
        "\nprediction breakdown: correct {:.1}%, incorrect {:.1}%, late {:.1}%, inactive {:.1}%, throttled {:.1}%",
        br.category_fraction(branch_runahead::runahead::PredictionCategory::Correct) * 100.0,
        br.category_fraction(branch_runahead::runahead::PredictionCategory::Incorrect) * 100.0,
        br.category_fraction(branch_runahead::runahead::PredictionCategory::Late) * 100.0,
        br.category_fraction(branch_runahead::runahead::PredictionCategory::Inactive) * 100.0,
        br.category_fraction(branch_runahead::runahead::PredictionCategory::Throttled) * 100.0,
    );
    println!(
        "merge points found: {}, accuracy over validated samples: {:.0}% (paper: 92%)",
        br.merge_points_found,
        br.merge_accuracy() * 100.0
    );
}
