//! Data TLB model.
//!
//! The paper's DCE "shares the D-Cache and D-TLB with the core" (§4.2).
//! This TLB is a fully-associative LRU array of page translations; a miss
//! adds a fixed page-walk latency to the access that triggered it. The
//! simulator is physically-mapped, so the TLB models *timing only*.

/// Configuration for [`Tlb`].
#[derive(Clone, Copy, Debug)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// log2 page size in bytes (4 KB pages → 12).
    pub page_log2: u32,
    /// Page-walk latency in cycles added to a missing access.
    pub walk_latency: u64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            entries: 64,
            page_log2: 12,
            walk_latency: 25,
        }
    }
}

/// TLB statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct TlbStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (paid the walk).
    pub misses: u64,
}

/// A fully-associative, LRU data TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    /// (page number, lru tick)
    entries: Vec<(u64, u64)>,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    #[must_use]
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0, "TLB must have entries");
        Tlb {
            cfg,
            entries: Vec::new(),
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Translates `addr`; returns the extra latency this access pays
    /// (0 on a hit, the walk latency on a miss, which also fills).
    pub fn access(&mut self, addr: u64) -> u64 {
        self.tick += 1;
        let page = addr >> self.cfg.page_log2;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.tick;
            self.stats.hits += 1;
            return 0;
        }
        self.stats.misses += 1;
        if self.entries.len() >= self.cfg.entries {
            let victim = self
                .entries
                .iter_mut()
                .min_by_key(|(_, lru)| *lru)
                .expect("nonempty at capacity");
            *victim = (page, self.tick);
        } else {
            self.entries.push((page, self.tick));
        }
        self.cfg.walk_latency
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_same_page() {
        let mut t = Tlb::new(TlbConfig::default());
        assert_eq!(t.access(0x1234), 25);
        assert_eq!(t.access(0x1FFF), 0, "same 4KB page");
        assert_eq!(t.access(0x2000), 25, "next page misses");
        let s = t.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut t = Tlb::new(TlbConfig {
            entries: 2,
            ..TlbConfig::default()
        });
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // refresh page 0
        t.access(0x2000); // page 2 evicts page 1
        assert_eq!(t.access(0x0000), 0);
        assert_eq!(t.access(0x1000), 25, "page 1 was evicted");
    }
}
