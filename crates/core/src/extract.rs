//! Dependence-chain extraction (§4.3, Figure 9).
//!
//! A backwards dataflow walk over the Chain Extraction Buffer, starting at
//! the most recently retired instance of a hard-to-predict branch:
//!
//! 1. the search list starts with the branch's source registers (the
//!    condition codes),
//! 2. older uops whose destinations intersect the search list join the
//!    chain; their sources join the search list,
//! 3. loads are matched against older stores by dynamic address (the CEB
//!    store buffer); a matching store joins the chain,
//! 4. the walk terminates at a second instance of the same branch (tag
//!    `<PC, *>`) or at an affector/guard branch (tag `<PC, taken>`).
//!
//! The collected slice is then locally renamed with move elimination and
//! store→load elimination (§4.3 "Dependence Chain Optimizations"), which
//! guarantees chains contain no stores, and local registers are compacted
//! by lifetime so the chain fits an 8-entry local register file.

use std::collections::{BTreeSet, HashMap};

use br_isa::{ArchReg, Operand, Pc, RegSet, UopKind, FLAGS};

use crate::ceb::{CebRecord, ChainExtractionBuffer};
use crate::chain::{ChainOp, ChainSrc, ChainTag, DependenceChain, LocalReg};

/// Why extraction produced no chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtractOutcome {
    /// A chain was produced (paired with the chain itself by the caller).
    Ok,
    /// The walk ran off the CEB without finding a terminator.
    NoTermination,
    /// The chain would exceed the uop cap.
    TooLong,
    /// The chain needs more local registers than a local register file has.
    TooManyRegs,
    /// The slice contains an operation the DCE cannot execute (§1: no
    /// divides / floating point).
    ForbiddenOp,
    /// No flag-producing compare was found (the outcome would depend on
    /// live-in condition codes — not a computable chain).
    NoCmp,
    /// The target branch was not found in the CEB.
    TargetMissing,
}

/// Limits applied during extraction.
#[derive(Clone, Copy, Debug)]
pub struct ExtractLimits {
    /// Maximum executable chain ops after elimination.
    pub max_chain_len: usize,
    /// Local register file size.
    pub local_regs: usize,
}

#[derive(Clone, Copy, Debug)]
enum Binding {
    Local(usize),
    Imm(i64),
}

struct Renamer {
    bind: HashMap<ArchReg, Binding>,
    next_virtual: usize,
    live_ins: Vec<(ArchReg, usize)>,
    written: BTreeSet<ArchReg>,
}

impl Renamer {
    fn new() -> Self {
        Renamer {
            bind: HashMap::new(),
            next_virtual: 0,
            live_ins: Vec::new(),
            written: BTreeSet::new(),
        }
    }

    fn alloc(&mut self) -> usize {
        let v = self.next_virtual;
        self.next_virtual += 1;
        v
    }

    /// Resolves a read of `r`, allocating a live-in on first touch.
    fn read(&mut self, r: ArchReg) -> ChainSrcV {
        match self.bind.get(&r) {
            Some(Binding::Local(l)) => ChainSrcV::Reg(*l),
            Some(Binding::Imm(v)) => ChainSrcV::Imm(*v),
            None => {
                let l = self.alloc();
                self.live_ins.push((r, l));
                self.bind.insert(r, Binding::Local(l));
                ChainSrcV::Reg(l)
            }
        }
    }

    fn read_operand(&mut self, o: Operand) -> ChainSrcV {
        match o {
            Operand::Reg(r) => self.read(r),
            Operand::Imm(v) => ChainSrcV::Imm(v),
        }
    }

    fn write(&mut self, r: ArchReg) -> usize {
        let l = self.alloc();
        self.bind.insert(r, Binding::Local(l));
        self.written.insert(r);
        l
    }

    fn alias(&mut self, r: ArchReg, src: ChainSrcV) {
        let b = match src {
            ChainSrcV::Reg(l) => Binding::Local(l),
            ChainSrcV::Imm(v) => Binding::Imm(v),
        };
        self.bind.insert(r, b);
        self.written.insert(r);
    }
}

/// Chain sources over *virtual* (pre-compaction) locals.
#[derive(Clone, Copy, Debug)]
enum ChainSrcV {
    Reg(usize),
    Imm(i64),
}

#[derive(Clone, Debug)]
enum ChainOpV {
    Alu {
        op: br_isa::AluOp,
        dst: usize,
        src1: ChainSrcV,
        src2: ChainSrcV,
    },
    Load {
        dst: usize,
        base: Option<ChainSrcV>,
        index: Option<ChainSrcV>,
        scale: u8,
        disp: i64,
        width: br_isa::Width,
        signed: bool,
    },
    Cmp {
        src1: ChainSrcV,
        src2: ChainSrcV,
    },
}

/// Extracts the dependence chain of `target_pc` from the CEB.
///
/// `ag_set` is the (bias-filtered) affector/guard set of the target from
/// the Hard Branch Table. Returns the chain or the rejection reason.
///
/// # Errors
///
/// Returns the [`ExtractOutcome`] describing why no chain was produced.
pub fn extract_chain(
    ceb: &ChainExtractionBuffer,
    target_pc: Pc,
    ag_set: &BTreeSet<Pc>,
    limits: &ExtractLimits,
) -> Result<DependenceChain, ExtractOutcome> {
    let (a, b) = ceb.as_slices();
    let recs: Vec<&CebRecord> = a.iter().chain(b.iter()).collect();

    // Newest instance of the target.
    let end = recs
        .iter()
        .rposition(|r| r.uop.pc == target_pc && r.uop.is_cond_branch())
        .ok_or(ExtractOutcome::TargetMissing)?;
    let target = recs[end];
    let cond = match target.uop.kind {
        UopKind::Branch { cond, .. } => cond,
        _ => return Err(ExtractOutcome::TargetMissing),
    };

    // ---------------------------------------------------- backward walk
    let mut search: RegSet = target.srcs;
    let mut collected: Vec<usize> = Vec::new(); // indices, youngest-first
                                                // Loads awaiting an older matching store: (addr, width, load idx).
    let mut pending_loads: Vec<(u64, u64, usize)> = Vec::new();
    // load idx -> store idx, for elimination.
    let mut pairs: HashMap<usize, usize> = HashMap::new();
    let mut tag: Option<ChainTag> = None;
    let mut guard_terminated = false;

    for i in (0..end).rev() {
        let r = recs[i];
        if r.uop.is_cond_branch() {
            if r.uop.pc == target_pc {
                tag = Some(ChainTag {
                    pc: target_pc,
                    outcome: None,
                });
                break;
            }
            if ag_set.contains(&r.uop.pc) {
                tag = Some(ChainTag {
                    pc: r.uop.pc,
                    outcome: r.taken,
                });
                guard_terminated = true;
                break;
            }
            continue;
        }

        // Store matching an already-collected load (the "CEB store
        // buffer" of Figure 9).
        if let Some((addr, width, is_store)) = r.mem {
            if is_store {
                if let Some(pos) = pending_loads
                    .iter()
                    .position(|&(la, lw, _)| la == addr && lw == width.bytes())
                {
                    let (_, _, load_idx) = pending_loads.swap_remove(pos);
                    pairs.insert(load_idx, i);
                    collected.push(i);
                    // Only the *value* source matters; the pair is
                    // move-eliminated so the address computation is
                    // dropped.
                    if let UopKind::Store { src, .. } = r.uop.kind {
                        if let Some(vr) = src.reg() {
                            search.insert(vr);
                        }
                    }
                    if collected.len() > limits.max_chain_len * 3 {
                        return Err(ExtractOutcome::TooLong);
                    }
                }
                continue;
            }
        }

        if !r.dsts.intersects(search) {
            continue;
        }
        // Forbidden operations poison the chain.
        if let UopKind::Alu { op, .. } = r.uop.kind {
            if !op.dce_allowed() {
                return Err(ExtractOutcome::ForbiddenOp);
            }
        }
        collected.push(i);
        if collected.len() > limits.max_chain_len * 3 {
            return Err(ExtractOutcome::TooLong);
        }
        search = search.difference(r.dsts);
        search = search.union(r.srcs);
        if let Some((addr, width, false)) = r.mem {
            pending_loads.push((addr, width.bytes(), i));
            // The load's address registers stay in the search set (they
            // are only dropped if the load pairs with a store, in which
            // case the chain never computes the address).
        }
    }

    let tag = tag.ok_or(ExtractOutcome::NoTermination)?;

    // ------------------------------------------- rename and elimination
    collected.sort_unstable();
    let store_indices: BTreeSet<usize> = pairs.values().copied().collect();
    // Stored-value binding captured at the store's program position.
    let mut store_value: HashMap<usize, ChainSrcV> = HashMap::new();

    let mut rn = Renamer::new();
    let mut ops_v: Vec<ChainOpV> = Vec::new();
    let mut eliminated = 0usize;
    let mut cmp_found = false;

    for &i in &collected {
        let r = recs[i];
        if store_indices.contains(&i) {
            if let UopKind::Store { src, .. } = r.uop.kind {
                store_value.insert(i, rn.read_operand(src));
                eliminated += 1;
            }
            continue;
        }
        match r.uop.kind {
            UopKind::Mov { dst, src } => {
                let s = rn.read_operand(src);
                rn.alias(dst, s);
                eliminated += 1;
            }
            UopKind::Load {
                dst,
                addr,
                width,
                signed,
            } => {
                if let Some(&st) = pairs.get(&i) {
                    // Store→load pair: logically a move (§4.3).
                    let v = store_value
                        .get(&st)
                        .copied()
                        .expect("store processed before its load");
                    rn.alias(dst, v);
                    eliminated += 1;
                } else {
                    let base = addr.base.map(|b| rn.read(b));
                    let index = addr.index.map(|x| rn.read(x));
                    let d = rn.write(dst);
                    ops_v.push(ChainOpV::Load {
                        dst: d,
                        base,
                        index,
                        scale: addr.scale,
                        disp: addr.disp,
                        width,
                        signed,
                    });
                }
            }
            UopKind::Alu {
                op,
                dst,
                src1,
                src2,
            } => {
                let s1 = rn.read(src1);
                let s2 = rn.read_operand(src2);
                let d = rn.write(dst);
                ops_v.push(ChainOpV::Alu {
                    op,
                    dst: d,
                    src1: s1,
                    src2: s2,
                });
            }
            UopKind::Cmp { src1, src2 } => {
                let s1 = rn.read(src1);
                let s2 = rn.read_operand(src2);
                rn.written.insert(FLAGS);
                ops_v.push(ChainOpV::Cmp { src1: s1, src2: s2 });
                cmp_found = true;
            }
            // Calls write their link register; if that feeds the branch
            // (rare), treat the link value as a constant of the slice.
            UopKind::Call { link, .. } => {
                rn.alias(link, ChainSrcV::Imm((recs[i].uop.pc + 1) as i64));
                eliminated += 1;
            }
            UopKind::Store { .. }
            | UopKind::Branch { .. }
            | UopKind::Jump { .. }
            | UopKind::JumpInd { .. }
            | UopKind::Nop
            | UopKind::Halt => {}
        }
    }

    if !cmp_found {
        return Err(ExtractOutcome::NoCmp);
    }
    if ops_v.len() > limits.max_chain_len {
        return Err(ExtractOutcome::TooLong);
    }

    // Live-outs: every written (or aliased) register's final binding, plus
    // untouched live-ins pass through implicitly via the instance context.
    let live_outs_v: Vec<(ArchReg, ChainSrcV)> = rn
        .written
        .iter()
        .filter(|r| !r.is_flags())
        .map(|r| {
            let b = match rn.bind.get(r) {
                Some(Binding::Local(l)) => ChainSrcV::Reg(*l),
                Some(Binding::Imm(v)) => ChainSrcV::Imm(*v),
                None => unreachable!("written reg must be bound"),
            };
            (*r, b)
        })
        .collect();

    // ------------------------------------ local register compaction
    let (ops, live_ins, live_outs, num_locals) =
        compact_locals(&ops_v, &rn.live_ins, &live_outs_v, limits.local_regs)
            .ok_or(ExtractOutcome::TooManyRegs)?;

    let source_pcs: BTreeSet<Pc> = collected.iter().map(|&i| recs[i].uop.pc).collect();
    Ok(DependenceChain {
        tag,
        branch_pc: target_pc,
        cond,
        ops,
        live_ins,
        live_outs,
        num_local_regs: num_locals,
        guard_terminated,
        eliminated_uops: eliminated,
        source_pcs,
    })
}

/// Lifetime-based compaction of virtual locals into the physical local
/// register file (the paper's local rename "minimizes physical register
/// footprint"). Returns `None` if more than `budget` registers are live
/// simultaneously.
#[allow(clippy::type_complexity)]
fn compact_locals(
    ops: &[ChainOpV],
    live_ins: &[(ArchReg, usize)],
    live_outs: &[(ArchReg, ChainSrcV)],
    budget: usize,
) -> Option<(
    Vec<ChainOp>,
    Vec<(ArchReg, LocalReg)>,
    Vec<(ArchReg, ChainSrc)>,
    usize,
)> {
    const END: usize = usize::MAX;
    let mut last_use: HashMap<usize, usize> = HashMap::new();
    for (r, v) in live_ins {
        let _ = r;
        last_use.insert(*v, 0); // at least alive at start
    }
    let touch = |m: &mut HashMap<usize, usize>, s: &ChainSrcV, at: usize| {
        if let ChainSrcV::Reg(v) = s {
            let e = m.entry(*v).or_insert(at);
            *e = (*e).max(at);
        }
    };
    for (i, op) in ops.iter().enumerate() {
        match op {
            ChainOpV::Alu { src1, src2, .. } | ChainOpV::Cmp { src1, src2 } => {
                touch(&mut last_use, src1, i);
                touch(&mut last_use, src2, i);
            }
            ChainOpV::Load { base, index, .. } => {
                if let Some(b) = base {
                    touch(&mut last_use, b, i);
                }
                if let Some(x) = index {
                    touch(&mut last_use, x, i);
                }
            }
        }
    }
    // Live-outs are read by successor chains: alive to the end.
    for (_, b) in live_outs {
        if let ChainSrcV::Reg(v) = b {
            last_use.insert(*v, END);
        }
    }

    let mut mapping: HashMap<usize, LocalReg> = HashMap::new();
    let mut free: Vec<LocalReg> = (0..budget as u8).rev().collect();
    let mut in_use: Vec<(usize, LocalReg)> = Vec::new(); // (virtual, phys)

    let alloc = |v: usize,
                 mapping: &mut HashMap<usize, LocalReg>,
                 free: &mut Vec<LocalReg>,
                 in_use: &mut Vec<(usize, LocalReg)>|
     -> Option<LocalReg> {
        let p = free.pop()?;
        mapping.insert(v, p);
        in_use.push((v, p));
        Some(p)
    };

    // Live-ins allocated up front (the core writes them at sync).
    for (_, v) in live_ins {
        alloc(*v, &mut mapping, &mut free, &mut in_use)?;
    }

    let release_dead = |at: usize,
                        free: &mut Vec<LocalReg>,
                        in_use: &mut Vec<(usize, LocalReg)>,
                        last_use: &HashMap<usize, usize>| {
        in_use.retain(|(v, p)| {
            let lu = last_use.get(v).copied().unwrap_or(0);
            if lu != END && lu < at {
                free.push(*p);
                false
            } else {
                true
            }
        });
    };

    let map_src = |s: &ChainSrcV, mapping: &HashMap<usize, LocalReg>| -> ChainSrc {
        match s {
            ChainSrcV::Reg(v) => ChainSrc::Reg(mapping[v]),
            ChainSrcV::Imm(i) => ChainSrc::Imm(*i),
        }
    };

    let mut out = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        // Sources are read at i; anything last used before i is dead.
        release_dead(i, &mut free, &mut in_use, &last_use);
        let mapped = match op {
            ChainOpV::Alu {
                op,
                dst,
                src1,
                src2,
            } => {
                let s1 = map_src(src1, &mapping);
                let s2 = map_src(src2, &mapping);
                // Sources whose last use is exactly i can donate their
                // register to the destination.
                release_dead(i + 1, &mut free, &mut in_use, &last_use);
                let d = alloc(*dst, &mut mapping, &mut free, &mut in_use)?;
                ChainOp::Alu {
                    op: *op,
                    dst: d,
                    src1: s1,
                    src2: s2,
                }
            }
            ChainOpV::Load {
                dst,
                base,
                index,
                scale,
                disp,
                width,
                signed,
            } => {
                let b = base.as_ref().map(|s| map_src(s, &mapping));
                let x = index.as_ref().map(|s| map_src(s, &mapping));
                release_dead(i + 1, &mut free, &mut in_use, &last_use);
                let d = alloc(*dst, &mut mapping, &mut free, &mut in_use)?;
                ChainOp::Load {
                    dst: d,
                    base: b,
                    index: x,
                    scale: *scale,
                    disp: *disp,
                    width: *width,
                    signed: *signed,
                }
            }
            ChainOpV::Cmp { src1, src2 } => ChainOp::Cmp {
                src1: map_src(src1, &mapping),
                src2: map_src(src2, &mapping),
            },
        };
        out.push(mapped);
    }

    let live_ins_m: Vec<(ArchReg, LocalReg)> =
        live_ins.iter().map(|(r, v)| (*r, mapping[v])).collect();
    let live_outs_m: Vec<(ArchReg, ChainSrc)> = live_outs
        .iter()
        .map(|(r, b)| (*r, map_src(b, &mapping)))
        .collect();
    let num_locals = budget - free.len();
    Some((out, live_ins_m, live_outs_m, num_locals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ceb::ChainExtractionBuffer;
    use br_isa::{reg, Cond as ICond, MemOperand, Uop, UopKind, Width};

    /// Helper to hand-build CEB records.
    struct CebBuilder {
        ceb: ChainExtractionBuffer,
        seq: u64,
    }

    impl CebBuilder {
        fn new() -> Self {
            CebBuilder {
                ceb: ChainExtractionBuffer::new(512),
                seq: 0,
            }
        }

        fn push(
            &mut self,
            pc: Pc,
            kind: UopKind,
            mem: Option<(u64, Width, bool)>,
            taken: Option<bool>,
        ) {
            let uop = Uop { pc, kind };
            self.ceb.push(CebRecord {
                seq: self.seq,
                uop,
                dsts: uop.dsts(),
                srcs: uop.srcs(),
                mem,
                taken,
            });
            self.seq += 1;
        }
    }

    const LIMITS: ExtractLimits = ExtractLimits {
        max_chain_len: 16,
        local_regs: 8,
    };

    /// The leela-like loop from Figure 4: one iteration's uops.
    /// r3 = pointer into offsets, r4 = offset value, r5 = board index,
    /// r12 = board base.
    fn push_leela_iteration(b: &mut CebBuilder, a_taken: bool, board_val: u64) {
        // add r3, r3, 4          (induction)
        b.push(
            0x0,
            UopKind::Alu {
                op: br_isa::AluOp::Add,
                dst: reg::R3,
                src1: reg::R3,
                src2: Operand::Imm(4),
            },
            None,
            None,
        );
        // ld r4 <- [r3]
        b.push(
            0x1,
            UopKind::Load {
                dst: reg::R4,
                addr: MemOperand::base_disp(reg::R3, 0),
                width: Width::B4,
                signed: true,
            },
            Some((0x5000, Width::B4, false)),
            None,
        );
        // add r5, r4, r14
        b.push(
            0x2,
            UopKind::Alu {
                op: br_isa::AluOp::Add,
                dst: reg::R5,
                src1: reg::R4,
                src2: Operand::Reg(reg::R14),
            },
            None,
            None,
        );
        // ld r6 <- board[r5]  (the random board value)
        b.push(
            0x3,
            UopKind::Load {
                dst: reg::R6,
                addr: MemOperand::base_index(reg::R12, reg::R5, 4, 0x6f0),
                width: Width::B4,
                signed: false,
            },
            Some((0x9000 + board_val * 4, Width::B4, false)),
            None,
        );
        // cmp r6, 2
        b.push(
            0x4,
            UopKind::Cmp {
                src1: reg::R6,
                src2: Operand::Imm(2),
            },
            None,
            None,
        );
        // branch A at pc 5
        b.push(
            0x5,
            UopKind::Branch {
                cond: ICond::Ne,
                target: 0x9,
            },
            None,
            Some(a_taken),
        );
    }

    #[test]
    fn leela_chain_extracts_self_terminated() {
        let mut b = CebBuilder::new();
        push_leela_iteration(&mut b, true, 1);
        push_leela_iteration(&mut b, false, 2);
        let chain = extract_chain(&b.ceb, 0x5, &BTreeSet::new(), &LIMITS).unwrap();
        assert_eq!(
            chain.tag,
            ChainTag {
                pc: 0x5,
                outcome: None
            },
            "self-terminated chains get the wildcard tag of Figure 4c"
        );
        assert_eq!(chain.branch_pc, 0x5);
        assert_eq!(chain.cond, ICond::Ne);
        // add(induction), load, add, load, cmp = 5 ops.
        assert_eq!(chain.len(), 5);
        assert!(!chain.guard_terminated);
        // Live-ins: r3 (pointer), r14, r12. All three needed.
        let li: Vec<ArchReg> = chain.live_ins.iter().map(|(r, _)| *r).collect();
        assert!(li.contains(&reg::R3) && li.contains(&reg::R14) && li.contains(&reg::R12));
        // The induction variable is a live-out so the chain self-sustains.
        assert!(chain.live_out_binding(reg::R3).is_some());
        assert!(chain.num_local_regs <= 8);
    }

    #[test]
    fn guard_terminated_chain_tagged_with_outcome() {
        // Branch B (pc 0x8) guarded by A (pc 0x5): extraction for B stops
        // at A and tags <A, NT> like Figure 4d.
        let mut b = CebBuilder::new();
        push_leela_iteration(&mut b, false, 1); // A not-taken -> B executes
                                                // B's feeder: ld r7 <- [r12 + r5*2 + 0x1ba4]; cmp r7, 1; branch B
        b.push(
            0x6,
            UopKind::Load {
                dst: reg::R7,
                addr: MemOperand::base_index(reg::R12, reg::R5, 2, 0x1ba4),
                width: Width::B2,
                signed: false,
            },
            Some((0xa000, Width::B2, false)),
            None,
        );
        b.push(
            0x7,
            UopKind::Cmp {
                src1: reg::R7,
                src2: Operand::Imm(1),
            },
            None,
            None,
        );
        b.push(
            0x8,
            UopKind::Branch {
                cond: ICond::Le,
                target: 0x9,
            },
            None,
            Some(true),
        );
        let ag: BTreeSet<Pc> = [0x5u64].into_iter().collect();
        let chain = extract_chain(&b.ceb, 0x8, &ag, &LIMITS).unwrap();
        assert_eq!(
            chain.tag,
            ChainTag {
                pc: 0x5,
                outcome: Some(false)
            }
        );
        assert!(chain.guard_terminated);
        assert_eq!(chain.branch_pc, 0x8);
        // load + cmp (r5 is a live-in: its producer is beyond the guard).
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn store_load_pair_eliminated() {
        // st [0x100] <- r2 ; ld r4 <- [0x100] ; cmp r4,0 ; br ; (x2)
        let mut b = CebBuilder::new();
        for taken in [true, false] {
            b.push(
                0x0,
                UopKind::Alu {
                    op: br_isa::AluOp::Add,
                    dst: reg::R2,
                    src1: reg::R2,
                    src2: Operand::Imm(1),
                },
                None,
                None,
            );
            b.push(
                0x1,
                UopKind::Store {
                    src: Operand::Reg(reg::R2),
                    addr: MemOperand::absolute(0x100),
                    width: Width::B8,
                },
                Some((0x100, Width::B8, true)),
                None,
            );
            b.push(
                0x2,
                UopKind::Load {
                    dst: reg::R4,
                    addr: MemOperand::absolute(0x100),
                    width: Width::B8,
                    signed: false,
                },
                Some((0x100, Width::B8, false)),
                None,
            );
            b.push(
                0x3,
                UopKind::Cmp {
                    src1: reg::R4,
                    src2: Operand::Imm(0),
                },
                None,
                None,
            );
            b.push(
                0x4,
                UopKind::Branch {
                    cond: ICond::Eq,
                    target: 0x5,
                },
                None,
                Some(taken),
            );
        }
        let chain = extract_chain(&b.ceb, 0x4, &BTreeSet::new(), &LIMITS).unwrap();
        // add + cmp survive; store+load eliminated.
        assert_eq!(chain.len(), 2);
        assert!(chain.eliminated_uops >= 2);
        assert!(
            chain.ops.iter().all(|o| !o.is_load()),
            "store→load pairs must be move-eliminated: {chain}"
        );
    }

    #[test]
    fn mov_elimination() {
        let mut b = CebBuilder::new();
        for taken in [true, false] {
            b.push(
                0x0,
                UopKind::Alu {
                    op: br_isa::AluOp::Add,
                    dst: reg::R1,
                    src1: reg::R1,
                    src2: Operand::Imm(1),
                },
                None,
                None,
            );
            b.push(
                0x1,
                UopKind::Mov {
                    dst: reg::R2,
                    src: Operand::Reg(reg::R1),
                },
                None,
                None,
            );
            b.push(
                0x2,
                UopKind::Cmp {
                    src1: reg::R2,
                    src2: Operand::Imm(7),
                },
                None,
                None,
            );
            b.push(
                0x3,
                UopKind::Branch {
                    cond: ICond::Eq,
                    target: 0x4,
                },
                None,
                Some(taken),
            );
        }
        let chain = extract_chain(&b.ceb, 0x3, &BTreeSet::new(), &LIMITS).unwrap();
        assert_eq!(chain.len(), 2, "mov eliminated: add + cmp remain");
        assert_eq!(chain.eliminated_uops, 1);
    }

    #[test]
    fn divide_rejected() {
        let mut b = CebBuilder::new();
        for taken in [true, false] {
            b.push(
                0x0,
                UopKind::Alu {
                    op: br_isa::AluOp::Div,
                    dst: reg::R1,
                    src1: reg::R1,
                    src2: Operand::Imm(3),
                },
                None,
                None,
            );
            b.push(
                0x1,
                UopKind::Cmp {
                    src1: reg::R1,
                    src2: Operand::Imm(0),
                },
                None,
                None,
            );
            b.push(
                0x2,
                UopKind::Branch {
                    cond: ICond::Eq,
                    target: 0x3,
                },
                None,
                Some(taken),
            );
        }
        assert_eq!(
            extract_chain(&b.ceb, 0x2, &BTreeSet::new(), &LIMITS),
            Err(ExtractOutcome::ForbiddenOp)
        );
    }

    #[test]
    fn single_instance_no_termination() {
        let mut b = CebBuilder::new();
        push_leela_iteration(&mut b, true, 1);
        assert_eq!(
            extract_chain(&b.ceb, 0x5, &BTreeSet::new(), &LIMITS),
            Err(ExtractOutcome::NoTermination)
        );
    }

    #[test]
    fn missing_target_reported() {
        let b = CebBuilder::new();
        assert_eq!(
            extract_chain(&b.ceb, 0x5, &BTreeSet::new(), &LIMITS),
            Err(ExtractOutcome::TargetMissing)
        );
    }

    #[test]
    fn too_long_chain_rejected() {
        let mut b = CebBuilder::new();
        for taken in [true, false] {
            // 20 dependent adds feeding the cmp.
            for _ in 0..20 {
                b.push(
                    0x0,
                    UopKind::Alu {
                        op: br_isa::AluOp::Add,
                        dst: reg::R1,
                        src1: reg::R1,
                        src2: Operand::Imm(1),
                    },
                    None,
                    None,
                );
            }
            b.push(
                0x1,
                UopKind::Cmp {
                    src1: reg::R1,
                    src2: Operand::Imm(0),
                },
                None,
                None,
            );
            b.push(
                0x2,
                UopKind::Branch {
                    cond: ICond::Eq,
                    target: 0x3,
                },
                None,
                Some(taken),
            );
        }
        assert_eq!(
            extract_chain(&b.ceb, 0x2, &BTreeSet::new(), &LIMITS),
            Err(ExtractOutcome::TooLong)
        );
    }

    #[test]
    fn compaction_reuses_registers() {
        // A chain of dependent adds: each dst can reuse the dying src reg,
        // so the whole chain should need very few locals.
        let mut b = CebBuilder::new();
        for taken in [true, false] {
            for _ in 0..10 {
                b.push(
                    0x0,
                    UopKind::Alu {
                        op: br_isa::AluOp::Add,
                        dst: reg::R1,
                        src1: reg::R1,
                        src2: Operand::Imm(1),
                    },
                    None,
                    None,
                );
            }
            b.push(
                0x1,
                UopKind::Cmp {
                    src1: reg::R1,
                    src2: Operand::Imm(0),
                },
                None,
                None,
            );
            b.push(
                0x2,
                UopKind::Branch {
                    cond: ICond::Eq,
                    target: 0x3,
                },
                None,
                Some(taken),
            );
        }
        let limits = ExtractLimits {
            max_chain_len: 16,
            local_regs: 8,
        };
        let chain = extract_chain(&b.ceb, 0x2, &BTreeSet::new(), &limits).unwrap();
        assert_eq!(chain.len(), 11);
        assert!(
            chain.num_local_regs <= 3,
            "dependent adds should need ~2 locals, got {}",
            chain.num_local_regs
        );
    }
}
