//! A counting global allocator for the `bench-alloc` feature.
//!
//! Wraps the system allocator and counts every `alloc`/`alloc_zeroed`/
//! `realloc` call in a relaxed atomic. The `figures` binary installs it as
//! the global allocator when built with `--features bench-alloc`, letting
//! `figures --bench` report heap allocations per simulation job — the
//! direct measurement behind the allocation-free hot-loop claim.
//!
//! Counting is process-global, so readings are only meaningful while jobs
//! run one at a time (which `figures --bench` guarantees).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The counting allocator; a unit type suitable for `#[global_allocator]`.
pub struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the only addition is a
// relaxed counter increment, which cannot violate allocator invariants.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocation calls since process start.
#[must_use]
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
