//! The Dependence Chain Engine (§4.2, Figures 7 and 8).
//!
//! Executes dependence-chain instances out of order within a chain, with
//! chain-level parallelism across instances. The "window" — the number of
//! local register file / reservation station pairs — bounds how many
//! dynamic instances run concurrently. Global rename is modelled by
//! producer links: an instance reads live-in values from its producer
//! instance's (architectural) context, exactly the red/blue/orange
//! register-file linking of Figure 8.
//!
//! The engine shares the D-cache with the core and only uses ports the
//! core left idle this cycle; the Core-Only variant additionally executes
//! compute ops only in the core's idle issue slots.

use std::sync::Arc;

use br_isa::{ArchReg, CpuState, Flags, Machine, Pc, Width};
use br_mem::{MemResp, MemorySystem, ReqId, ReqSource};

use crate::chain::{ChainOp, ChainSrc, DependenceChain};
use crate::chain_cache::DependenceChainCache;
use crate::config::{BranchRunaheadConfig, InitiationMode};
use crate::pqueue::PredictionQueues;
use crate::stats::BrStats;

/// Where an op's source value comes from after dataflow analysis.
#[derive(Clone, Copy, Debug)]
enum SrcRef {
    Imm(i64),
    /// The chain's live-in value of an architectural register.
    LiveIn(ArchReg),
    /// The result of an earlier op in the same instance.
    Op(usize),
}

/// One byte per op: instances inline an op-state array, and a small state
/// keeps them cheap to move. ALU completion times live in the engine's
/// event list ([`DependenceChainEngine::alu_events`]), not here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpState {
    Waiting,
    Issued,
    MemPending,
    Done,
}

/// An op's resolved source references: at most two per op, stored inline
/// so a view never chases a per-op heap allocation.
#[derive(Clone, Copy, Debug)]
struct OpSrcs {
    refs: [SrcRef; 2],
    n: u8,
}

impl OpSrcs {
    fn as_slice(&self) -> &[SrcRef] {
        &self.refs[..usize::from(self.n)]
    }
}

/// Dataflow view of a chain: per-op source references and live-out
/// resolution, precomputed once per *chain* and shared by every instance
/// of it (the view cache keys on the chain's `Arc` identity).
#[derive(Clone, Debug)]
struct DataflowView {
    srcs: Vec<OpSrcs>,
    /// For each live-out `(arch, _)`: where its final value comes from.
    outs: Vec<(ArchReg, SrcRef)>,
    /// Index of the flag-producing cmp (the last one in the chain).
    flags_op: usize,
}

/// Per-local-reg resolution state while building a view. Local regs are
/// `u8`-indexed, so direct-indexed tables replace hash maps.
struct ResolveTables {
    /// Op index of the latest writer of each local, or `usize::MAX`.
    writer: [usize; 256],
    /// The live-in arch reg bound to each unwritten local, if any.
    live_in_of: [Option<ArchReg>; 256],
}

fn resolve_src(s: &ChainSrc, t: &ResolveTables) -> SrcRef {
    match s {
        ChainSrc::Imm(v) => SrcRef::Imm(*v),
        ChainSrc::Reg(l) => {
            let w = t.writer[usize::from(*l)];
            if w != usize::MAX {
                SrcRef::Op(w)
            } else {
                SrcRef::LiveIn(
                    t.live_in_of[usize::from(*l)].expect("unwritten local must be a live-in"),
                )
            }
        }
    }
}

fn build_dataflow(chain: &DependenceChain) -> DataflowView {
    let mut t = ResolveTables {
        writer: [usize::MAX; 256],
        live_in_of: [None; 256],
    };
    for (a, l) in &chain.live_ins {
        t.live_in_of[usize::from(*l)] = Some(*a);
    }
    let mut srcs = Vec::with_capacity(chain.ops.len());
    let mut flags_op = usize::MAX;
    for (i, op) in chain.ops.iter().enumerate() {
        let mut refs = OpSrcs {
            refs: [SrcRef::Imm(0); 2],
            n: 0,
        };
        let push = |r: SrcRef, refs: &mut OpSrcs| {
            refs.refs[usize::from(refs.n)] = r;
            refs.n += 1;
        };
        match op {
            ChainOp::Alu { src1, src2, .. } | ChainOp::Cmp { src1, src2 } => {
                push(resolve_src(src1, &t), &mut refs);
                push(resolve_src(src2, &t), &mut refs);
            }
            ChainOp::Mov { src, .. } => push(resolve_src(src, &t), &mut refs),
            ChainOp::Load { base, index, .. } => {
                if let Some(b) = base {
                    push(resolve_src(b, &t), &mut refs);
                }
                if let Some(x) = index {
                    push(resolve_src(x, &t), &mut refs);
                }
            }
        }
        srcs.push(refs);
        if let Some(d) = op.dst_reg() {
            t.writer[usize::from(d)] = i;
        }
        if matches!(op, ChainOp::Cmp { .. }) {
            flags_op = i;
        }
    }
    let outs = chain
        .live_outs
        .iter()
        .map(|(a, b)| (*a, resolve_src(b, &t)))
        .collect();
    DataflowView {
        srcs,
        outs,
        flags_op,
    }
}

/// Upper bound on ops per chain, sized for the largest `max-chain-len`
/// the Figure 13 sweep explores (the paper's budget is 16). Keeping op
/// state inline in the instance makes initiation allocation-free.
const MAX_CHAIN_OPS: usize = 32;

struct Instance {
    id: u64,
    chain: Arc<DependenceChain>,
    view: Arc<DataflowView>,
    op_state: [OpState; MAX_CHAIN_OPS],
    op_result: [u64; MAX_CHAIN_OPS],
    /// Bitmasks mirroring `op_state` (bit per op): ops not yet `Done`,
    /// ops still `Waiting`, ops in flight as `Issued`. They let the tick
    /// loops visit only ops that can actually make progress.
    undone: u32,
    waiting: u32,
    issued: u32,
    flags: Option<Flags>,
    /// Architectural context inherited from the producer (or the core at
    /// a sync). `ctx_ready[r]` gates reads.
    ctx: [u64; 16],
    ctx_ready: [bool; 16],
    /// Number of `ctx` entries still not ready (cached to skip the pull
    /// scan for satisfied instances — the Big window makes this hot).
    ctx_missing: u8,
    producer: Option<u64>,
    outcome: Option<bool>,
    /// Prediction-queue slot this instance fills.
    slot: Option<(Pc, u64)>,
    /// Required producer outcome (predictive initiation); `None` when the
    /// initiation was unconditional (sync, wildcard, outcome-based).
    assumption: Option<bool>,
    /// Chains spawned from this instance: (chain ptr key, assumption,
    /// spawned instance id).
    spawned: Vec<(usize, Option<bool>, u64)>,
    /// Outcome-based spawn performed.
    spawn_done: bool,
    /// Successor initiations deferred on window/queue pressure, with the
    /// cycle each entry was deferred at (entries time out individually).
    pending_spawn: Vec<(Arc<DependenceChain>, Option<bool>, u64)>,
    /// Pre-allocated queue slots for non-wildcard successor chains,
    /// resolved when this instance's outcome is known: `(chain, slot,
    /// required outcome)`. Allocating at initiation keeps every queue in
    /// program order even though instances complete out of order (§4.2:
    /// "slots must be allocated at initiation").
    placeholders: Vec<(Arc<DependenceChain>, u64, bool)>,
    dead: bool,
}

/// What happens to the queue slots of a killed instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Disposition {
    /// The corresponding branch executions will still happen: slots stay
    /// consumable (Late) so iteration correspondence is preserved.
    Dead,
    /// The corresponding executions will never happen (wrong-assumption
    /// speculation): fetch must skip the slots entirely.
    Cancelled,
}

impl Instance {
    fn completed(&self) -> bool {
        self.outcome.is_some()
    }

    /// Takes the instance's growable lists for reuse, cleared (dropping
    /// their `Arc`s now rather than when the pool entry is next used).
    fn recycle_vecs(&mut self) -> InstanceVecs {
        let mut spawned = std::mem::take(&mut self.spawned);
        let mut pending_spawn = std::mem::take(&mut self.pending_spawn);
        let mut placeholders = std::mem::take(&mut self.placeholders);
        spawned.clear();
        pending_spawn.clear();
        placeholders.clear();
        (spawned, pending_spawn, placeholders)
    }

    fn chain_key(c: &Arc<DependenceChain>) -> usize {
        Arc::as_ptr(c) as usize
    }

    /// Resolves a source reference to a value, if available.
    fn value_of(&self, s: SrcRef) -> Option<u64> {
        match s {
            SrcRef::Imm(v) => Some(v as u64),
            SrcRef::LiveIn(r) => self.ctx_ready[r.index()].then(|| self.ctx[r.index()]),
            SrcRef::Op(i) => (self.op_state[i] == OpState::Done).then(|| self.op_result[i]),
        }
    }

    /// This instance's end-of-chain value for arch reg `r`, if known:
    /// chain live-out if written, else the inherited context.
    fn arch_value(&self, r: ArchReg) -> Option<u64> {
        if let Some((_, src)) = self.view.outs.iter().find(|(a, _)| *a == r) {
            return self.value_of(*src);
        }
        self.ctx_ready[r.index()].then(|| self.ctx[r.index()])
    }
}

/// How an initiation request fared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Initiate {
    Ok(u64),
    WindowFull,
    QueueFull,
}

/// Reusable tick-path buffers owned by the engine and cleared per use, so
/// steady-state cycles never touch the heap. Buffers consumed while
/// `&mut self` methods run are `mem::take`n and restored (keeping their
/// capacity) rather than reallocated.
#[derive(Default)]
struct Scratch {
    /// Context pulls gathered in phase 2: `(inst idx, reg, val)`.
    pulls: Vec<(usize, usize, u64)>,
    /// Instances completing this cycle.
    completed: Vec<u64>,
    /// Instances with deferred spawns to retry.
    stuck: Vec<u64>,
    /// Producers blocked from freeing by a context-starved dependent.
    blocked: Vec<u64>,
    /// Work queue for `kill_recursive`.
    kill_work: Vec<u64>,
    /// Work queue for `spawn_early`.
    spawn_work: Vec<u64>,
    /// Wildcard / non-wildcard successor chains in `spawn_early`.
    chains_wild: Vec<Arc<DependenceChain>>,
    chains_nonwild: Vec<Arc<DependenceChain>>,
    /// Chain-cache lookup buffer for `spawn_early` (live across the
    /// buffers above, so it needs its own storage).
    spawn_lookup: Vec<Arc<DependenceChain>>,
    /// Chain-cache lookup buffer for `spawn_at_completion` / `sync_initiate`.
    lookup: Vec<Arc<DependenceChain>>,
    /// Wrong- then right-assumption successor ids in `spawn_at_completion`.
    judged: Vec<u64>,
    /// Newly spawned instance ids in `spawn_at_completion`.
    newly: Vec<u64>,
    /// Deferred-spawn entries being retried in tick phase 6.
    pending: Vec<(Arc<DependenceChain>, Option<bool>, u64)>,
}

/// The three per-instance growable lists, recycled between activations so
/// steady-state initiation performs no heap allocation.
type InstanceVecs = (
    Vec<(usize, Option<bool>, u64)>,
    Vec<(Arc<DependenceChain>, Option<bool>, u64)>,
    Vec<(Arc<DependenceChain>, u64, bool)>,
);

/// The Dependence Chain Engine.
pub struct DependenceChainEngine {
    cfg: BranchRunaheadConfig,
    instances: Vec<Instance>,
    next_id: u64,
    /// Outstanding DCE loads: `(req id, instance id, op idx, addr)`.
    /// Bounded by the DCE MSHR budget, so a linear scan beats hashing.
    pending_mem: Vec<(ReqId, u64, usize, u64)>,
    /// 3-bit initiation counters (Predictive mode, §4.1), keyed by branch
    /// PC. Hard branches are few (HBT-bounded): linear scan, no hashing.
    init_counters: Vec<(Pc, u8)>,
    /// Dataflow views built once per chain and shared by its instances,
    /// keyed by `Arc` identity (holding the `Arc` keeps the key stable).
    view_cache: Vec<(usize, Arc<DependenceChain>, Arc<DataflowView>)>,
    /// Live (non-dead) instance count, maintained incrementally so the
    /// per-initiation window check is O(1).
    live: usize,
    /// In-flight ALU ops: `(done_at, instance id, op idx)`. Bounded by the
    /// ALU issue rate times the max op latency; scanning it beats storing
    /// a completion cycle per op per instance.
    alu_events: Vec<(u64, u64, u8)>,
    /// Recycled `spawned`/`pending_spawn`/`placeholders` buffers from
    /// freed instances, reused by the next initiations.
    vec_pool: Vec<InstanceVecs>,
    scratch: Scratch,
    cycle: u64,
}

/// Cap on cached dataflow views; on overflow the cache resets (views are
/// cheap to rebuild and the big config's chain cache holds 1024 chains).
const VIEW_CACHE_CAP: usize = 2048;

impl std::fmt::Debug for DependenceChainEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DependenceChainEngine")
            .field("instances", &self.instances.len())
            .field("outstanding_loads", &self.pending_mem.len())
            .finish()
    }
}

impl DependenceChainEngine {
    /// Creates an engine for `cfg`.
    #[must_use]
    pub fn new(cfg: BranchRunaheadConfig) -> Self {
        DependenceChainEngine {
            cfg,
            instances: Vec::new(),
            next_id: 0,
            pending_mem: Vec::new(),
            init_counters: Vec::new(),
            view_cache: Vec::new(),
            live: 0,
            alu_events: Vec::new(),
            vec_pool: Vec::new(),
            scratch: Scratch::default(),
            cycle: 0,
        }
    }

    /// The (cached) dataflow view for `chain`. The cache is sorted by key
    /// for binary-search hits; a view is a pure function of its chain, so
    /// cache resets never change observable behaviour.
    fn dataflow_view(&mut self, chain: &Arc<DependenceChain>) -> Arc<DataflowView> {
        let key = Instance::chain_key(chain);
        match self.view_cache.binary_search_by_key(&key, |(k, _, _)| *k) {
            Ok(i) => Arc::clone(&self.view_cache[i].2),
            Err(i) => {
                let view = Arc::new(build_dataflow(chain));
                if self.view_cache.len() >= VIEW_CACHE_CAP {
                    self.view_cache.clear();
                    self.view_cache
                        .push((key, Arc::clone(chain), Arc::clone(&view)));
                } else {
                    self.view_cache
                        .insert(i, (key, Arc::clone(chain), Arc::clone(&view)));
                }
                view
            }
        }
    }

    /// Live (non-dead) instance count.
    #[must_use]
    pub fn active_instances(&self) -> usize {
        debug_assert_eq!(self.live, self.instances.iter().filter(|i| !i.dead).count());
        self.live
    }

    /// Whether memory request `id` is an outstanding DCE load (the fault
    /// harness uses this to delay only DCE traffic).
    #[must_use]
    pub fn owns_request(&self, id: ReqId) -> bool {
        self.pending_mem.iter().any(|(r, ..)| *r == id)
    }

    /// Validates structural invariants: the live-instance window bound,
    /// the DCE MSHR bound on outstanding loads, and initiation counters
    /// within their 3-bit range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let recount = self.instances.iter().filter(|i| !i.dead).count();
        if self.live != recount {
            return Err(format!(
                "dce: live counter {} disagrees with recount {}",
                self.live, recount
            ));
        }
        if !self.instances.is_sorted_by_key(|i| i.id) {
            return Err("dce: instances not sorted by id".to_string());
        }
        if self.active_instances() > self.cfg.window_instances {
            return Err(format!(
                "dce: {} live instances exceed window {}",
                self.active_instances(),
                self.cfg.window_instances
            ));
        }
        if self.pending_mem.len() > self.cfg.dce_mshrs {
            return Err(format!(
                "dce: {} outstanding loads exceed {} MSHRs",
                self.pending_mem.len(),
                self.cfg.dce_mshrs
            ));
        }
        for (pc, c) in &self.init_counters {
            if *c > 7 {
                return Err(format!(
                    "dce[{pc:#x}]: initiation counter {c} exceeds 3-bit range"
                ));
            }
        }
        Ok(())
    }

    /// Updates the per-branch 3-bit initiation counter with a resolved
    /// outcome.
    pub fn train_init_counter(&mut self, pc: Pc, taken: bool) {
        let i = self
            .init_counters
            .iter()
            .position(|(p, _)| *p == pc)
            .unwrap_or_else(|| {
                self.init_counters.push((pc, 4));
                self.init_counters.len() - 1
            });
        let c = &mut self.init_counters[i].1;
        if taken {
            *c = (*c + 1).min(7);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn predict_init(&self, pc: Pc) -> bool {
        self.init_counters
            .iter()
            .find(|(p, _)| *p == pc)
            .map_or(4, |(_, c)| *c)
            >= 4
    }

    /// Flushes every instance (synchronization).
    pub fn flush_all(&mut self, queues: &mut PredictionQueues, stats: &mut BrStats) {
        for inst in &mut self.instances {
            if !inst.dead {
                inst.dead = true;
                stats.instances_flushed += 1;
                if let Some((pc, slot)) = inst.slot {
                    queues.kill(pc, slot);
                }
                for (chain, slot, _) in &inst.placeholders {
                    queues.kill(chain.branch_pc, *slot);
                }
            }
        }
        self.instances.clear();
        self.pending_mem.clear();
        self.alu_events.clear();
        self.live = 0;
    }

    fn kill_recursive(
        &mut self,
        id: u64,
        disposition: Disposition,
        queues: &mut PredictionQueues,
        stats: &mut BrStats,
    ) {
        let mut work = std::mem::take(&mut self.scratch.kill_work);
        work.clear();
        work.push(id);
        while let Some(cur) = work.pop() {
            let mut producer = None;
            if let Some(ci) = self.find(cur) {
                let inst = &mut self.instances[ci];
                if !inst.dead {
                    inst.dead = true;
                    self.live -= 1;
                    stats.instances_flushed += 1;
                    if let Some((pc, slot)) = inst.slot {
                        match disposition {
                            Disposition::Dead => queues.kill(pc, slot),
                            Disposition::Cancelled => queues.cancel(pc, slot),
                        }
                    }
                    // Placeholder slots of a cancelled lineage correspond
                    // to executions that will never happen; a flushed
                    // (Dead) lineage's placeholders stay consumable.
                    for (chain, slot, _) in &inst.placeholders {
                        match disposition {
                            Disposition::Dead => queues.kill(chain.branch_pc, *slot),
                            Disposition::Cancelled => queues.cancel(chain.branch_pc, *slot),
                        }
                    }
                    producer = inst.producer;
                }
            }
            for inst in &self.instances {
                if inst.producer == Some(cur) && !inst.dead {
                    work.push(inst.id);
                }
            }
            // Forget the killed instance in its producer's spawn record so
            // a later outcome can legitimately respawn the chain (only the
            // producer ever records `cur` in `spawned`).
            if let Some(pi) = producer.and_then(|p| self.find(p)) {
                self.instances[pi].spawned.retain(|(_, _, sid)| *sid != cur);
            }
        }
        let pool = &mut self.vec_pool;
        self.instances.retain_mut(|i| {
            if i.dead {
                pool.push(Instance::recycle_vecs(i));
            }
            !i.dead
        });
        self.scratch.kill_work = work;
    }

    /// Index of instance `id`. Instances are created with ascending ids
    /// and only removed by order-preserving `retain`, so the vector is
    /// always id-sorted and a binary search suffices.
    fn find(&self, id: u64) -> Option<usize> {
        self.instances.binary_search_by_key(&id, |i| i.id).ok()
    }

    /// Initiates a chain instance. `producer` is `None` for a core sync.
    fn initiate(
        &mut self,
        chain: &Arc<DependenceChain>,
        producer: Option<u64>,
        cpu: Option<&CpuState>,
        assumption: Option<bool>,
        queues: &mut PredictionQueues,
        stats: &mut BrStats,
    ) -> Initiate {
        if self.active_instances() >= self.cfg.window_instances {
            return Initiate::WindowFull;
        }
        let Some(slot) = queues.allocate_slot(chain.branch_pc) else {
            return Initiate::QueueFull;
        };
        self.initiate_with_slot(chain, producer, cpu, assumption, slot, stats)
    }

    /// Initiates a chain instance filling a pre-allocated queue slot.
    fn initiate_with_slot(
        &mut self,
        chain: &Arc<DependenceChain>,
        producer: Option<u64>,
        cpu: Option<&CpuState>,
        assumption: Option<bool>,
        slot: u64,
        stats: &mut BrStats,
    ) -> Initiate {
        if self.active_instances() >= self.cfg.window_instances {
            return Initiate::WindowFull;
        }
        let id = self.next_id;
        self.next_id += 1;
        let view = self.dataflow_view(chain);
        let n = chain.ops.len();
        assert!(n <= MAX_CHAIN_OPS, "chain exceeds MAX_CHAIN_OPS");
        let all_ops: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
        let mut ctx = [0u64; 16];
        let mut ctx_ready = [false; 16];
        let mut ctx_missing = 16u8;
        if let Some(cpu) = cpu {
            ctx.copy_from_slice(&cpu.regs);
            ctx_ready = [true; 16];
            ctx_missing = 0;
        }
        let (spawned, pending_spawn, placeholders) = self.vec_pool.pop().unwrap_or_default();
        self.instances.push(Instance {
            id,
            chain: Arc::clone(chain),
            view,
            op_state: [OpState::Waiting; MAX_CHAIN_OPS],
            op_result: [0; MAX_CHAIN_OPS],
            undone: all_ops,
            waiting: all_ops,
            issued: 0,
            flags: None,
            ctx,
            ctx_ready,
            ctx_missing,
            producer,
            outcome: None,
            slot: Some((chain.branch_pc, slot)),
            assumption,
            spawned,
            spawn_done: false,
            pending_spawn,
            placeholders,
            dead: false,
        });
        self.live += 1;
        stats.instances_initiated += 1;
        debug_assert!(
            self.instances
                .last()
                .is_some_and(|i| i.assumption == assumption),
            "assumption recorded on the new instance"
        );
        Initiate::Ok(id)
    }

    /// Synchronization entry point: a core misprediction on `pc` resolved
    /// to `outcome`; live-ins are copied from the restored register file
    /// (§4.1 "Entering Runahead Mode").
    pub fn sync_initiate(
        &mut self,
        pc: Pc,
        outcome: bool,
        cpu: &CpuState,
        cache: &mut DependenceChainCache,
        queues: &mut PredictionQueues,
        stats: &mut BrStats,
    ) {
        stats.syncs += 1;
        let mut chains = std::mem::take(&mut self.scratch.lookup);
        cache.lookup_into(pc, outcome, &mut chains);
        for chain in &chains {
            if let Initiate::Ok(id) = self.initiate(chain, None, Some(cpu), None, queues, stats) {
                self.spawn_early(id, cache, queues, stats);
            }
        }
        self.scratch.lookup = chains;
    }

    /// Window slots kept free of the eager wildcard cascade so that
    /// outcome-triggered spawns (guarded chains) can always enter.
    fn spawn_reserve(&self) -> usize {
        (self.cfg.window_instances / 8).max(2)
    }

    /// Early (initiation-time) successor spawning for wildcard chains and,
    /// in Predictive mode, predicted-outcome chains.
    fn spawn_early(
        &mut self,
        id: u64,
        cache: &mut DependenceChainCache,
        queues: &mut PredictionQueues,
        stats: &mut BrStats,
    ) {
        if self.cfg.initiation == InitiationMode::NonSpeculative {
            return;
        }
        // Work queue: spawning can cascade (self-triggering chains). The
        // cascade's *instance creation* stops short of the full window
        // (spawn_reserve) but placeholder slot allocation always proceeds
        // (slots cost no window space and must be allocated in program
        // order).
        let reserve = self.spawn_reserve();
        let mut work = std::mem::take(&mut self.scratch.spawn_work);
        work.clear();
        work.push(id);
        let mut to_spawn = std::mem::take(&mut self.scratch.chains_wild);
        let mut non_wild = std::mem::take(&mut self.scratch.chains_nonwild);
        let mut looked = std::mem::take(&mut self.scratch.spawn_lookup);
        while let Some(pid) = work.pop() {
            let Some(pidx) = self.find(pid) else { continue };
            let trigger_pc = self.instances[pidx].chain.branch_pc;
            if !self.instances[pidx].spawned.is_empty()
                || !self.instances[pidx].placeholders.is_empty()
            {
                continue; // early spawning already performed for pid
            }
            // Wildcard successors initiate immediately (they run no matter
            // how the trigger resolves).
            to_spawn.clear();
            non_wild.clear();
            cache.lookup_into(trigger_pc, true, &mut looked);
            for chain in looked.drain(..) {
                if chain.tag.is_wildcard() {
                    to_spawn.push(chain);
                } else {
                    non_wild.push(chain);
                }
            }
            cache.lookup_into(trigger_pc, false, &mut looked);
            for chain in looked.drain(..) {
                if !chain.tag.is_wildcard() {
                    non_wild.push(chain);
                }
            }
            for chain in to_spawn.drain(..) {
                let key = Instance::chain_key(&chain);
                let room = self.active_instances() + reserve <= self.cfg.window_instances;
                let attempt = if room {
                    self.initiate(&chain, Some(pid), None, None, queues, stats)
                } else {
                    Initiate::WindowFull
                };
                match attempt {
                    Initiate::Ok(nid) => {
                        if let Some(pidx) = self.find(pid) {
                            self.instances[pidx].spawned.push((key, None, nid));
                        }
                        work.push(nid);
                    }
                    Initiate::WindowFull | Initiate::QueueFull => {
                        if let Some(pidx) = self.find(pid) {
                            let at = self.cycle;
                            self.instances[pidx].pending_spawn.push((chain, None, at));
                        }
                    }
                }
            }
            // Non-wildcard successors get their queue slots NOW (program
            // order). Predictive mode also starts the predicted ones; the
            // rest wait as placeholders for the trigger outcome.
            let predicted = self.predict_init(trigger_pc);
            for chain in non_wild.drain(..) {
                let key = Instance::chain_key(&chain);
                let required = chain.tag.outcome.expect("non-wildcard tag");
                let Some(slot) = queues.allocate_slot(chain.branch_pc) else {
                    continue; // queue full: lose this iteration's coverage
                };
                let speculate = self.cfg.initiation == InitiationMode::Predictive
                    && required == predicted
                    && self.active_instances() + reserve <= self.cfg.window_instances;
                if speculate {
                    match self.initiate_with_slot(
                        &chain,
                        Some(pid),
                        None,
                        Some(required),
                        slot,
                        stats,
                    ) {
                        Initiate::Ok(nid) => {
                            if let Some(pidx) = self.find(pid) {
                                self.instances[pidx]
                                    .spawned
                                    .push((key, Some(required), nid));
                            }
                            work.push(nid);
                            continue;
                        }
                        _ => { /* fall through to placeholder */ }
                    }
                }
                if let Some(pidx) = self.find(pid) {
                    self.instances[pidx]
                        .placeholders
                        .push((chain, slot, required));
                } else {
                    queues.kill(chain.branch_pc, slot);
                }
            }
        }
        self.scratch.spawn_work = work;
        self.scratch.chains_wild = to_spawn;
        self.scratch.chains_nonwild = non_wild;
        self.scratch.spawn_lookup = looked;
    }

    /// Outcome-time successor handling: kill wrong-assumption speculative
    /// successors, then spawn the chains matching the real outcome.
    fn spawn_at_completion(
        &mut self,
        id: u64,
        cache: &mut DependenceChainCache,
        queues: &mut PredictionQueues,
        stats: &mut BrStats,
    ) {
        let Some(idx) = self.find(id) else { return };
        let outcome = self.instances[idx].outcome.expect("completed");
        let trigger_pc = self.instances[idx].chain.branch_pc;

        // Flush mispredicted speculative successors. Their (and their
        // descendants') queue slots are *cancelled*: those branch
        // executions never happen on the correct path.
        let mut judged = std::mem::take(&mut self.scratch.judged);
        judged.clear();
        judged.extend(
            self.instances[idx]
                .spawned
                .iter()
                .filter(|(_, a, _)| a.is_some_and(|a| a != outcome))
                .map(|(_, _, sid)| *sid),
        );
        for &sid in &judged {
            self.kill_recursive(sid, Disposition::Cancelled, queues, stats);
        }
        // Validate the surviving speculative successors: their assumption
        // held, so they may now complete and be freed normally.
        let Some(own) = self.find(id) else {
            self.scratch.judged = judged;
            return;
        };
        judged.clear();
        judged.extend(
            self.instances[own]
                .spawned
                .iter()
                .filter(|(_, a, _)| a.is_some())
                .map(|(_, _, sid)| *sid),
        );
        for &sid in &judged {
            if let Some(sidx) = self.find(sid) {
                self.instances[sidx].assumption = None;
            }
        }
        self.scratch.judged = judged;

        let mut newly = std::mem::take(&mut self.scratch.newly);
        newly.clear();

        // Resolve placeholder slots: matching chains start now (into their
        // pre-allocated, correctly ordered slots); non-matching slots are
        // cancelled so fetch skips them.
        let placeholders = {
            let Some(idx) = self.find(id) else {
                self.scratch.newly = newly;
                return;
            };
            std::mem::take(&mut self.instances[idx].placeholders)
        };
        for (chain, slot, required) in placeholders {
            if required != outcome {
                queues.cancel(chain.branch_pc, slot);
                continue;
            }
            let key = Instance::chain_key(&chain);
            let mut attempt = self.initiate_with_slot(&chain, Some(id), None, None, slot, stats);
            if attempt == Initiate::WindowFull {
                // Outcome-triggered successors are architecturally required
                // for continuous execution; preempt the youngest (furthest
                // ahead, least valuable) speculative instance.
                if self.preempt_youngest(id, queues, stats) {
                    attempt = self.initiate_with_slot(&chain, Some(id), None, None, slot, stats);
                }
            }
            match attempt {
                Initiate::Ok(nid) => {
                    if let Some(idx) = self.find(id) {
                        self.instances[idx].spawned.push((key, None, nid));
                    }
                    newly.push(nid);
                }
                _ => queues.kill(chain.branch_pc, slot),
            }
        }

        // Non-speculative mode does all successor work here (instances are
        // serial, so completion order *is* program order). The speculative
        // modes still extend *wildcard* lineages here: the early cascade
        // stops short of the window (spawn_reserve), so the lineage tail
        // grows at completion — and only the tail can lack a spawned
        // successor, so queue order is preserved.
        {
            let mut looked = std::mem::take(&mut self.scratch.lookup);
            cache.lookup_into(trigger_pc, outcome, &mut looked);
            for chain in looked.drain(..) {
                if !(self.cfg.initiation == InitiationMode::NonSpeculative
                    || chain.tag.is_wildcard())
                {
                    continue;
                }
                let key = Instance::chain_key(&chain);
                let Some(idx) = self.find(id) else { break };
                let already = self.instances[idx]
                    .spawned
                    .iter()
                    .any(|(k, _, _)| *k == key);
                let pending = self.instances[idx]
                    .pending_spawn
                    .iter()
                    .any(|(c, _, _)| Instance::chain_key(c) == key);
                if already || pending {
                    continue;
                }
                let room = self.cfg.initiation == InitiationMode::NonSpeculative
                    || self.active_instances() + self.spawn_reserve() <= self.cfg.window_instances;
                let attempt = if room {
                    self.initiate(&chain, Some(id), None, None, queues, stats)
                } else {
                    Initiate::WindowFull
                };
                match attempt {
                    Initiate::Ok(nid) => {
                        if let Some(idx) = self.find(id) {
                            self.instances[idx].spawned.push((key, None, nid));
                        }
                        newly.push(nid);
                    }
                    Initiate::WindowFull | Initiate::QueueFull => {
                        if let Some(idx) = self.find(id) {
                            let at = self.cycle;
                            self.instances[idx].pending_spawn.push((chain, None, at));
                        }
                    }
                }
            }
            self.scratch.lookup = looked;
        }

        if let Some(idx) = self.find(id) {
            self.instances[idx].spawn_done = true;
        }
        for &nid in &newly {
            self.spawn_early(nid, cache, queues, stats);
        }
        self.scratch.newly = newly;
    }

    /// Kills the youngest live, uncompleted *leaf* instance other than
    /// `exclude`. Restricting to leaves (no live successors) guarantees
    /// the kill cannot cascade into `exclude` or other useful work — a
    /// running ancestor may have already spawned completed descendants.
    /// Returns whether a slot was freed.
    fn preempt_youngest(
        &mut self,
        exclude: u64,
        queues: &mut PredictionQueues,
        stats: &mut BrStats,
    ) -> bool {
        // Rare path (window-full outcome spawns): a quadratic scan over a
        // window-bounded set beats building a hash set per call.
        let has_successor = |id: u64| {
            self.instances
                .iter()
                .any(|i| !i.dead && i.producer == Some(id))
        };
        let victim = self
            .instances
            .iter()
            .filter(|i| !i.dead && !i.completed() && i.id != exclude && !has_successor(i.id))
            .map(|i| i.id)
            .max();
        match victim {
            Some(v) => {
                self.kill_recursive(v, Disposition::Dead, queues, stats);
                true
            }
            None => false,
        }
    }

    /// Advances the engine one cycle.
    #[allow(clippy::too_many_arguments)]
    pub fn tick(
        &mut self,
        cycle: u64,
        machine: &Machine,
        mem: &mut MemorySystem,
        responses: &[MemResp],
        free_load_ports: usize,
        free_issue_slots: usize,
        cache: &mut DependenceChainCache,
        queues: &mut PredictionQueues,
        stats: &mut BrStats,
    ) {
        self.cycle = cycle;

        // 1. Memory completions: read the value *now* (arrival time).
        for r in responses {
            let pos = self.pending_mem.iter().position(|(rid, ..)| *rid == r.id);
            if let Some(pos) = pos {
                let (_, iid, op_idx, addr) = self.pending_mem.swap_remove(pos);
                if let Some(idx) = self.find(iid) {
                    let inst = &mut self.instances[idx];
                    if inst.op_state[op_idx] == OpState::MemPending {
                        let (width, signed) = match inst.chain.ops[op_idx] {
                            ChainOp::Load { width, signed, .. } => (width, signed),
                            _ => (Width::B8, false),
                        };
                        let raw = machine.memory().read(addr, width);
                        inst.op_result[op_idx] = if signed { width.sign_extend(raw) } else { raw };
                        inst.op_state[op_idx] = OpState::Done;
                        inst.undone &= !(1 << op_idx);
                    }
                }
            }
        }

        // 2. Context pulls: completed-or-running instances resolve their
        // live-ins (and, when completed, their full pass-through context)
        // from their producer chain. Two-phase to satisfy the borrow
        // checker: gather reads, then apply.
        let mut pulls = std::mem::take(&mut self.scratch.pulls); // (inst idx, reg, val)
        pulls.clear();
        for (i, inst) in self.instances.iter().enumerate() {
            if inst.dead || inst.ctx_missing == 0 {
                continue;
            }
            let Some(pid) = inst.producer else { continue };
            let Some(pidx) = self.find(pid) else { continue };
            // Which regs do we still need? Live-ins always; all 16 once
            // completed (so successors can pass through and the producer
            // can be freed).
            let want_all = inst.completed();
            for r in ArchReg::gprs() {
                if inst.ctx_ready[r.index()] {
                    continue;
                }
                let needed = want_all || inst.chain.live_in_local(r).is_some();
                if !needed {
                    continue;
                }
                if let Some(v) = self.instances[pidx].arch_value(r) {
                    pulls.push((i, r.index(), v));
                }
            }
        }
        for &(i, r, v) in &pulls {
            let inst = &mut self.instances[i];
            if !inst.ctx_ready[r] {
                inst.ctx[r] = v;
                inst.ctx_ready[r] = true;
                inst.ctx_missing -= 1;
            }
        }
        self.scratch.pulls = pulls;

        // 3. Issue ready ops.
        let mut alu_budget = if self.cfg.dce_alus > 0 {
            self.cfg.dce_alus
        } else {
            free_issue_slots
        };
        let mut load_budget = free_load_ports;
        for idx in 0..self.instances.len() {
            if alu_budget == 0 && load_budget == 0 {
                break;
            }
            if self.instances[idx].dead || self.instances[idx].completed() {
                continue;
            }
            let mut wm = self.instances[idx].waiting;
            while wm != 0 {
                let op_idx = wm.trailing_zeros() as usize;
                wm &= wm - 1;
                // In-order ablation: an op may only issue when every older
                // op in the chain has at least issued.
                if self.cfg.dce_in_order && self.instances[idx].waiting & ((1 << op_idx) - 1) != 0 {
                    break;
                }
                let ready = self.instances[idx].view.srcs[op_idx]
                    .as_slice()
                    .iter()
                    .all(|s| self.instances[idx].value_of(*s).is_some());
                if !ready {
                    continue;
                }
                let inst = &self.instances[idx];
                let op = inst.chain.ops[op_idx];
                if op.is_load() {
                    if load_budget == 0 || self.pending_mem.len() >= self.cfg.dce_mshrs {
                        continue;
                    }
                    let ChainOp::Load {
                        base,
                        index,
                        scale,
                        disp,
                        ..
                    } = op
                    else {
                        unreachable!()
                    };
                    let refs = inst.view.srcs[op_idx];
                    let mut it = refs.as_slice().iter();
                    let b = base
                        .map(|_| inst.value_of(*it.next().expect("base ref")).expect("ready"))
                        .unwrap_or(0);
                    let x = index
                        .map(|_| {
                            inst.value_of(*it.next().expect("index ref"))
                                .expect("ready")
                        })
                        .unwrap_or(0);
                    let addr = b
                        .wrapping_add(x.wrapping_mul(u64::from(scale)))
                        .wrapping_add(disp as u64);
                    let iid = inst.id;
                    match mem.request(addr, false, ReqSource::Dce, cycle) {
                        Ok(req) => {
                            self.pending_mem.push((req, iid, op_idx, addr));
                            self.instances[idx].op_state[op_idx] = OpState::MemPending;
                            self.instances[idx].waiting &= !(1 << op_idx);
                            load_budget -= 1;
                            stats.dce_uops += 1;
                            stats.dce_loads += 1;
                        }
                        Err(_) => continue,
                    }
                } else {
                    if alu_budget == 0 {
                        continue;
                    }
                    let lat = op.latency();
                    let iid = self.instances[idx].id;
                    self.alu_events.push((cycle + lat, iid, op_idx as u8));
                    self.instances[idx].op_state[op_idx] = OpState::Issued;
                    self.instances[idx].waiting &= !(1 << op_idx);
                    self.instances[idx].issued |= 1 << op_idx;
                    alu_budget -= 1;
                    stats.dce_uops += 1;
                }
            }
        }

        // 4. Compute completions: drain due ALU events (stale events for
        // killed/flushed instances fall out via the `find` miss).
        let mut ev = std::mem::take(&mut self.alu_events);
        let mut kept = 0;
        for k in 0..ev.len() {
            let (done_at, iid, op8) = ev[k];
            if done_at > cycle {
                ev[kept] = ev[k];
                kept += 1;
                continue;
            }
            let op_idx = usize::from(op8);
            let Some(idx) = self.find(iid) else { continue };
            if self.instances[idx].dead || self.instances[idx].op_state[op_idx] != OpState::Issued {
                continue;
            }
            let inst = &self.instances[idx];
            let mut vals = [0u64; 2];
            for (j, s) in inst.view.srcs[op_idx].as_slice().iter().enumerate() {
                vals[j] = inst.value_of(*s).expect("issued implies ready");
            }
            let op = inst.chain.ops[op_idx];
            let inst = &mut self.instances[idx];
            match op {
                ChainOp::Alu { op, .. } => {
                    inst.op_result[op_idx] = op.eval(vals[0], vals[1]);
                }
                ChainOp::Mov { .. } => inst.op_result[op_idx] = vals[0],
                ChainOp::Cmp { .. } => {
                    inst.flags = Some(Flags::from_cmp(vals[0], vals[1]));
                }
                ChainOp::Load { .. } => unreachable!("loads complete via memory"),
            }
            inst.op_state[op_idx] = OpState::Done;
            inst.issued &= !(1 << op_idx);
            inst.undone &= !(1 << op_idx);
        }
        ev.truncate(kept);
        self.alu_events = ev;

        // 5. Instance completion: all ops done -> outcome, fill queue,
        // spawn successors.
        let mut completed_now = std::mem::take(&mut self.scratch.completed);
        completed_now.clear();
        for idx in 0..self.instances.len() {
            let inst = &self.instances[idx];
            if inst.dead || inst.completed() {
                continue;
            }
            if inst.undone == 0 {
                debug_assert_eq!(
                    inst.op_state[inst.view.flags_op],
                    OpState::Done,
                    "flag producer must have executed"
                );
                let flags = inst.flags.expect("chains end in a cmp");
                let outcome = inst.chain.cond.eval(flags);
                let id = inst.id;
                let slot = inst.slot;
                let inst = &mut self.instances[idx];
                inst.outcome = Some(outcome);
                if let Some((pc, s)) = slot {
                    queues.fill(pc, s, outcome);
                }
                stats.instances_completed += 1;
                completed_now.push(id);
            }
        }
        for &id in &completed_now {
            self.spawn_at_completion(id, cache, queues, stats);
        }
        self.scratch.completed = completed_now;

        // 6. Retry deferred spawns (window/queue pressure), oldest first;
        // drop spawns stuck past the timeout so the engine can drain.
        let mut stuck = std::mem::take(&mut self.scratch.stuck);
        stuck.clear();
        stuck.extend(
            self.instances
                .iter()
                .filter(|i| !i.dead && !i.pending_spawn.is_empty())
                .map(|i| i.id),
        );
        let mut pending = std::mem::take(&mut self.scratch.pending);
        for &id in &stuck {
            let Some(idx) = self.find(id) else { continue };
            // `append` empties the instance's queue but keeps its capacity,
            // so requeued entries below don't reallocate it.
            pending.clear();
            pending.append(&mut self.instances[idx].pending_spawn);
            for (chain, assumption, since) in pending.drain(..) {
                let key = Instance::chain_key(&chain);
                let room = if chain.tag.is_wildcard()
                    && self.cfg.initiation != InitiationMode::NonSpeculative
                {
                    self.active_instances() + self.spawn_reserve() <= self.cfg.window_instances
                } else {
                    true
                };
                let attempt = if room {
                    self.initiate(&chain, Some(id), None, assumption, queues, stats)
                } else {
                    Initiate::WindowFull
                };
                match attempt {
                    Initiate::Ok(nid) => {
                        if let Some(idx) = self.find(id) {
                            self.instances[idx].spawned.push((key, assumption, nid));
                        }
                        self.spawn_early(nid, cache, queues, stats);
                    }
                    _ => {
                        if cycle.saturating_sub(since) < 256 {
                            if let Some(idx) = self.find(id) {
                                self.instances[idx]
                                    .pending_spawn
                                    .push((chain, assumption, since));
                            }
                        }
                        // else: dropped — runahead simply stops extending
                        // this lineage until the next synchronization.
                    }
                }
            }
        }
        self.scratch.pending = pending;
        self.scratch.stuck = stuck;

        // 7. Free drained instances: completed, successors spawned, and no
        // live dependent still missing context.
        self.scratch.blocked.clear();
        self.scratch.blocked.extend(
            self.instances
                .iter()
                .filter(|s| !s.dead && s.ctx_missing > 0)
                .filter_map(|s| s.producer),
        );
        self.scratch.blocked.sort_unstable();
        let blocked = &self.scratch.blocked;
        let pool = &mut self.vec_pool;
        let mut removed_live = 0usize;
        self.instances.retain_mut(|i| {
            if i.dead {
                pool.push(Instance::recycle_vecs(i));
                return false;
            }
            let drained = i.completed()
                && i.spawn_done
                // An unvalidated assumption means the producer hasn't
                // completed: stay killable until it does.
                && i.assumption.is_none()
                && i.pending_spawn.is_empty()
                && blocked.binary_search(&i.id).is_err();
            removed_live += usize::from(drained);
            if drained {
                pool.push(Instance::recycle_vecs(i));
            }
            !drained
        });
        self.live -= removed_live;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{ChainOp, ChainSrc, ChainTag};
    use br_isa::{reg, Cond, JournaledMemory, MemoryImage};
    use br_mem::MemoryConfig;

    /// A self-triggering chain like leela's branch A:
    ///   l0 = live-in r3; op0: add l1 = l0 + 8; op1: load l2 = [l1];
    ///   op2: cmp l2, 0 -> branch Eq; live-out r3 = l1.
    fn self_chain() -> DependenceChain {
        DependenceChain {
            tag: ChainTag {
                pc: 0x50,
                outcome: None,
            },
            branch_pc: 0x50,
            cond: Cond::Eq,
            ops: vec![
                ChainOp::Alu {
                    op: br_isa::AluOp::Add,
                    dst: 1,
                    src1: ChainSrc::Reg(0),
                    src2: ChainSrc::Imm(8),
                },
                ChainOp::Load {
                    dst: 2,
                    base: Some(ChainSrc::Reg(1)),
                    index: None,
                    scale: 1,
                    disp: 0,
                    width: Width::B8,
                    signed: false,
                },
                ChainOp::Cmp {
                    src1: ChainSrc::Reg(2),
                    src2: ChainSrc::Imm(0),
                },
            ],
            live_ins: vec![(reg::R3, 0)],
            live_outs: vec![(reg::R3, ChainSrc::Reg(1))],
            num_local_regs: 3,
            guard_terminated: false,
            eliminated_uops: 0,
            source_pcs: std::collections::BTreeSet::new(),
        }
    }

    fn machine_with(data: &[(u64, u64)]) -> Machine {
        let mut img = MemoryImage::new();
        for (a, v) in data {
            img.write(*a, Width::B8, *v);
        }
        Machine::new(img.into_memory())
    }

    fn run_engine(
        dce: &mut DependenceChainEngine,
        machine: &Machine,
        mem: &mut MemorySystem,
        cache: &mut DependenceChainCache,
        queues: &mut PredictionQueues,
        stats: &mut BrStats,
        cycles: u64,
    ) {
        for c in 0..cycles {
            let resps = mem.tick(c);
            dce.tick(c, machine, mem, &resps, 2, 4, cache, queues, stats);
        }
    }

    #[test]
    fn single_chain_computes_outcome_and_chains_forward() {
        // Memory: [0x108]=0 (Eq -> taken), [0x110]=5 (-> not taken),
        // [0x118]=0 (taken).
        let machine = machine_with(&[(0x108, 0), (0x110, 5), (0x118, 0)]);
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut cache = DependenceChainCache::new(8);
        let mut queues = PredictionQueues::new(4, 16);
        let mut stats = BrStats::default();
        cache.install(self_chain());

        let mut cfg = BranchRunaheadConfig::mini();
        cfg.initiation = InitiationMode::Predictive;
        let mut dce = DependenceChainEngine::new(cfg);

        let mut cpu = CpuState::new();
        cpu.regs[reg::R3.index()] = 0x100;
        dce.sync_initiate(0x50, true, &cpu, &mut cache, &mut queues, &mut stats);
        run_engine(
            &mut dce,
            &machine,
            &mut mem,
            &mut cache,
            &mut queues,
            &mut stats,
            600,
        );

        assert!(stats.instances_completed >= 3, "chain must self-sustain");
        // Consume the first three predictions: T, NT, T.
        let expected = [true, false, true];
        for (i, want) in expected.iter().enumerate() {
            match queues.consume_at_fetch(0x50) {
                crate::pqueue::FetchVerdict::Use { value, .. } => {
                    assert_eq!(value, *want, "prediction {i}");
                }
                v => panic!("prediction {i}: expected Use, got {v:?}"),
            }
        }
    }

    #[test]
    fn window_bounds_concurrency() {
        let machine = machine_with(&[]);
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut cache = DependenceChainCache::new(8);
        let mut queues = PredictionQueues::new(4, 256);
        let mut stats = BrStats::default();
        cache.install(self_chain());

        let mut cfg = BranchRunaheadConfig::mini();
        cfg.window_instances = 4;
        let mut dce = DependenceChainEngine::new(cfg);
        let cpu = CpuState::new();
        dce.sync_initiate(0x50, true, &cpu, &mut cache, &mut queues, &mut stats);
        // Spawning cascades immediately but must stop at the window bound.
        assert!(dce.active_instances() <= 4);
        run_engine(
            &mut dce,
            &machine,
            &mut mem,
            &mut cache,
            &mut queues,
            &mut stats,
            200,
        );
        assert!(dce.active_instances() <= 4);
        assert!(stats.instances_completed > 4, "instances recycle");
    }

    #[test]
    fn flush_all_clears_engine() {
        let machine = machine_with(&[]);
        let mut cache = DependenceChainCache::new(8);
        let mut queues = PredictionQueues::new(4, 16);
        let mut stats = BrStats::default();
        cache.install(self_chain());
        let mut dce = DependenceChainEngine::new(BranchRunaheadConfig::mini());
        let cpu = CpuState::new();
        dce.sync_initiate(0x50, true, &cpu, &mut cache, &mut queues, &mut stats);
        assert!(dce.active_instances() > 0);
        dce.flush_all(&mut queues, &mut stats);
        assert_eq!(dce.active_instances(), 0);
        let _ = machine;
    }

    #[test]
    fn init_counter_predictions() {
        let mut dce = DependenceChainEngine::new(BranchRunaheadConfig::mini());
        for _ in 0..5 {
            dce.train_init_counter(0x50, false);
        }
        assert!(!dce.predict_init(0x50));
        for _ in 0..6 {
            dce.train_init_counter(0x50, true);
        }
        assert!(dce.predict_init(0x50));
    }

    #[test]
    fn non_speculative_is_serial() {
        let machine = machine_with(&[(0x108, 0)]);
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut cache = DependenceChainCache::new(8);
        let mut queues = PredictionQueues::new(4, 256);
        let mut stats = BrStats::default();
        cache.install(self_chain());
        let mut cfg = BranchRunaheadConfig::mini();
        cfg.initiation = InitiationMode::NonSpeculative;
        let mut dce = DependenceChainEngine::new(cfg);
        let mut cpu = CpuState::new();
        cpu.regs[reg::R3.index()] = 0x100;
        dce.sync_initiate(0x50, true, &cpu, &mut cache, &mut queues, &mut stats);
        // Only the sync instance exists until it completes.
        assert_eq!(dce.active_instances(), 1);
        run_engine(
            &mut dce,
            &machine,
            &mut mem,
            &mut cache,
            &mut queues,
            &mut stats,
            300,
        );
        assert!(stats.instances_completed >= 2, "successors follow serially");
    }

    #[test]
    fn dataflow_view_wires_dependencies() {
        let chain = self_chain();
        let view = build_dataflow(&chain);
        // op1 (load) reads op0's result; op2 (cmp) reads op1's.
        assert!(matches!(view.srcs[1].as_slice()[0], SrcRef::Op(0)));
        assert!(matches!(view.srcs[2].as_slice()[0], SrcRef::Op(1)));
        assert!(matches!(view.srcs[0].as_slice()[0], SrcRef::LiveIn(r) if r == reg::R3));
        assert_eq!(view.flags_op, 2);
        assert!(matches!(view.outs[0], (r, SrcRef::Op(0)) if r == reg::R3));
    }

    #[test]
    fn mem_values_read_functionally() {
        let _ = JournaledMemory::new();
    }

    /// A guarded chain like leela's branch B: triggered by `<0x50, NT>`,
    /// reads the probe index the A-chain produced.
    ///   op0: load l2 = [l0 + 0x1000]; op1: cmp l2, 0 -> branch Eq @ 0x60.
    /// Live-in r3 (the A-chain's live-out pointer).
    fn guarded_chain() -> DependenceChain {
        DependenceChain {
            tag: ChainTag {
                pc: 0x50,
                outcome: Some(false),
            },
            branch_pc: 0x60,
            cond: Cond::Eq,
            ops: vec![
                ChainOp::Load {
                    dst: 2,
                    base: Some(ChainSrc::Reg(0)),
                    index: None,
                    scale: 1,
                    disp: 0x1000,
                    width: Width::B8,
                    signed: false,
                },
                ChainOp::Cmp {
                    src1: ChainSrc::Reg(2),
                    src2: ChainSrc::Imm(0),
                },
            ],
            live_ins: vec![(reg::R3, 0)],
            live_outs: vec![],
            num_local_regs: 3,
            guard_terminated: true,
            eliminated_uops: 0,
            source_pcs: std::collections::BTreeSet::new(),
        }
    }

    /// End-to-end ordering check for the guarded-chain machinery: B's
    /// queue must deliver outcomes exactly for the A-NT iterations, in
    /// iteration order, no matter how instances complete.
    #[test]
    fn guarded_chain_slots_align_with_trigger_outcomes() {
        // A-chain walks r3 by 8 per instance: r3 = 0x100, 0x108, ...
        // A outcome (Eq): mem[r3+8] == 0; B outcome (Eq): mem[r3+8+0x1000]==0
        // (regions are disjoint: A in 0x108.., B in 0x1108..).
        let mut data = Vec::new();
        let mut expected_b = Vec::new();
        let mut x = 0xabcdefu64;
        for i in 1..40u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a_taken = x & 0x10 != 0; // Eq outcome
            let b_taken = x & 0x20 != 0;
            data.push((0x100 + i * 8, u64::from(!a_taken)));
            data.push((0x1100 + i * 8, u64::from(!b_taken)));
            if !a_taken {
                // A not-taken triggers <0x50, NT>: B executes.
                expected_b.push(b_taken);
            }
        }
        let machine = machine_with(&data);
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut cache = DependenceChainCache::new(8);
        let mut queues = PredictionQueues::new(4, 256);
        let mut stats = BrStats::default();
        cache.install(self_chain());
        cache.install(guarded_chain());

        let mut cfg = BranchRunaheadConfig::mini();
        cfg.window_instances = 6; // tight window: stresses placeholders
        let mut dce = DependenceChainEngine::new(cfg);
        let mut cpu = CpuState::new();
        cpu.regs[reg::R3.index()] = 0x100;
        dce.sync_initiate(0x50, true, &cpu, &mut cache, &mut queues, &mut stats);
        // Drive until B produced everything it can.
        for c in 0..6000 {
            let resps = mem.tick(c);
            dce.tick(
                c,
                &machine,
                &mut mem,
                &resps,
                2,
                4,
                &mut cache,
                &mut queues,
                &mut stats,
            );
        }
        // Consume B's queue: every *filled* slot must match the A-NT
        // subsequence at its position. Late slots (instances preempted by
        // the deliberately tiny window) are gaps: they consume a position
        // but predict nothing — exactly how the core treats them.
        let mut used = 0;
        let mut pos = 0usize;
        loop {
            match queues.consume_at_fetch(0x60) {
                crate::pqueue::FetchVerdict::Use { value, .. } => {
                    assert!(
                        pos < expected_b.len(),
                        "B produced more outcomes than A-NT iterations"
                    );
                    assert_eq!(
                        value, expected_b[pos],
                        "B outcome at A-NT position {pos} misaligned"
                    );
                    used += 1;
                    pos += 1;
                }
                crate::pqueue::FetchVerdict::Late { .. } => pos += 1,
                _ => break,
            }
            if pos > expected_b.len() + 4 {
                break;
            }
        }
        assert!(
            used >= 6,
            "B must produce a healthy number of usable predictions: {used} over {pos} positions"
        );
    }

    #[test]
    fn wrong_assumption_speculation_cancels_slots() {
        // Predictive mode with a trigger that is always TAKEN but whose
        // counter initially predicts NT half the time: killed speculative
        // B instances must leave *no* consumable slots behind.
        let machine = machine_with(&[]); // all zero: A outcome Eq=taken
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut cache = DependenceChainCache::new(8);
        let mut queues = PredictionQueues::new(4, 64);
        let mut stats = BrStats::default();
        cache.install(self_chain());
        cache.install(guarded_chain());
        let mut dce = DependenceChainEngine::new(BranchRunaheadConfig::mini());
        // Bias the initiation counter toward NT so speculation fires.
        for _ in 0..8 {
            dce.train_init_counter(0x50, false);
        }
        let cpu = CpuState::new();
        dce.sync_initiate(0x50, true, &cpu, &mut cache, &mut queues, &mut stats);
        for c in 0..1500 {
            let resps = mem.tick(c);
            dce.tick(
                c,
                &machine,
                &mut mem,
                &resps,
                2,
                4,
                &mut cache,
                &mut queues,
                &mut stats,
            );
        }
        // A is always taken (mem is zero -> cmp 0 -> Eq -> taken), so B
        // never executes; every B slot must have been cancelled.
        match queues.consume_at_fetch(0x60) {
            crate::pqueue::FetchVerdict::Inactive | crate::pqueue::FetchVerdict::NoQueue => {}
            v => panic!("B queue must be empty after cancellations, got {v:?}"),
        }
        assert!(
            stats.instances_flushed > 0,
            "speculation must have fired and been killed"
        );
    }
}
