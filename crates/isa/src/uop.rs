//! Micro-op definitions: opcodes, operands, addressing, and dataflow queries.

use std::fmt;

use crate::reg::{ArchReg, RegSet, FLAGS};

/// A program counter. PCs index directly into a [`crate::Program`]'s uop
/// vector; the fall-through successor of a uop at `pc` is `pc + 1`.
pub type Pc = u64;

/// Access width for loads and stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl Width {
    /// The number of bytes accessed.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }

    /// Truncates `v` to this width (zero-extended back to 64 bits).
    #[must_use]
    pub fn truncate(self, v: u64) -> u64 {
        match self {
            Width::B1 => v & 0xff,
            Width::B2 => v & 0xffff,
            Width::B4 => v & 0xffff_ffff,
            Width::B8 => v,
        }
    }

    /// Sign-extends the low `self` bytes of `v` to 64 bits.
    #[must_use]
    pub fn sign_extend(self, v: u64) -> u64 {
        match self {
            Width::B1 => v as u8 as i8 as i64 as u64,
            Width::B2 => v as u16 as i16 as i64 as u64,
            Width::B4 => v as u32 as i32 as i64 as u64,
            Width::B8 => v,
        }
    }
}

/// An ALU operation.
///
/// The set mirrors what the paper's Dependence Chain Engine supports
/// (Table 2): integer add/multiply/subtract/mov/load and logical
/// and/or/xor/not/shift/sign-extend. `Div` exists in the ISA so that chain
/// extraction has something to *reject* (chains must not contain expensive
/// operations, §1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division. Division by zero yields 0 (defined semantics for
    /// this research ISA). Excluded from dependence chains.
    Div,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT of the first source (second source ignored).
    Not,
    /// Logical shift left (shift amount masked to 6 bits).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Sign-extend the low byte of the first source.
    SextB,
    /// Sign-extend the low 16 bits of the first source.
    SextW,
    /// Sign-extend the low 32 bits of the first source.
    SextL,
}

impl AluOp {
    /// Evaluates the operation on two 64-bit inputs.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    ((a as i64).wrapping_div(b as i64)) as u64
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Not => !a,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Sar => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            AluOp::SextB => Width::B1.sign_extend(a),
            AluOp::SextW => Width::B2.sign_extend(a),
            AluOp::SextL => Width::B4.sign_extend(a),
        }
    }

    /// Whether the Dependence Chain Engine may execute this operation
    /// (§1: chains "do not contain expensive operations such as integer
    /// divide or floating point operations").
    #[must_use]
    pub fn dce_allowed(self) -> bool {
        !matches!(self, AluOp::Div)
    }

    /// Execution latency in cycles on the core's functional units.
    #[must_use]
    pub fn latency(self) -> u32 {
        match self {
            AluOp::Mul => 3,
            AluOp::Div => 20,
            _ => 1,
        }
    }
}

/// A branch condition, evaluated against the architectural [`Flags`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (`zf`).
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned greater-or-equal.
    Uge,
}

impl Cond {
    /// Evaluates the condition.
    #[must_use]
    pub fn eval(self, flags: Flags) -> bool {
        match self {
            Cond::Eq => flags.zf,
            Cond::Ne => !flags.zf,
            Cond::Lt => flags.lt_s,
            Cond::Le => flags.lt_s || flags.zf,
            Cond::Gt => !(flags.lt_s || flags.zf),
            Cond::Ge => !flags.lt_s,
            Cond::Ult => flags.lt_u,
            Cond::Uge => !flags.lt_u,
        }
    }
}

/// The architectural condition codes, produced by `cmp`.
///
/// Encoded as three predicates rather than x86-style individual bits; this
/// is sufficient to express all the comparison conditions the ISA offers
/// and keeps checkpointing trivial.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Flags {
    /// Operands were equal.
    pub zf: bool,
    /// First operand signed-less-than second.
    pub lt_s: bool,
    /// First operand unsigned-less-than second.
    pub lt_u: bool,
}

impl Flags {
    /// Computes flags for `cmp a, b`.
    #[must_use]
    pub fn from_cmp(a: u64, b: u64) -> Flags {
        Flags {
            zf: a == b,
            lt_s: (a as i64) < (b as i64),
            lt_u: a < b,
        }
    }

    /// Packs the flags into a byte (for compact checkpoints).
    #[must_use]
    pub fn pack(self) -> u8 {
        (self.zf as u8) | (self.lt_s as u8) << 1 | (self.lt_u as u8) << 2
    }

    /// Reverses [`Flags::pack`].
    #[must_use]
    pub fn unpack(b: u8) -> Flags {
        Flags {
            zf: b & 1 != 0,
            lt_s: b & 2 != 0,
            lt_u: b & 4 != 0,
        }
    }
}

/// A register-or-immediate source operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register source.
    Reg(ArchReg),
    /// A 64-bit immediate (stored sign-extended).
    Imm(i64),
}

impl Operand {
    /// The register this operand reads, if any.
    #[must_use]
    pub fn reg(self) -> Option<ArchReg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<ArchReg> for Operand {
    fn from(r: ArchReg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "${v}"),
        }
    }
}

/// An x86-style memory operand: `disp(base, index, scale)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemOperand {
    /// Base register, if any.
    pub base: Option<ArchReg>,
    /// Index register, if any.
    pub index: Option<ArchReg>,
    /// Scale applied to the index register (1, 2, 4 or 8).
    pub scale: u8,
    /// Constant displacement.
    pub disp: i64,
}

impl MemOperand {
    /// `disp(base)` addressing.
    #[must_use]
    pub fn base_disp(base: ArchReg, disp: i64) -> Self {
        MemOperand {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
        }
    }

    /// `disp(base, index, scale)` addressing.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn base_index(base: ArchReg, index: ArchReg, scale: u8, disp: i64) -> Self {
        assert!(matches!(scale, 1 | 2 | 4 | 8), "invalid scale {scale}");
        MemOperand {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
        }
    }

    /// An absolute address.
    #[must_use]
    pub fn absolute(addr: u64) -> Self {
        MemOperand {
            base: None,
            index: None,
            scale: 1,
            disp: addr as i64,
        }
    }

    /// The registers this operand reads.
    #[must_use]
    pub fn srcs(self) -> RegSet {
        let mut s = RegSet::empty();
        if let Some(b) = self.base {
            s.insert(b);
        }
        if let Some(i) = self.index {
            s.insert(i);
        }
        s
    }
}

impl fmt::Display for MemOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}(", self.disp)?;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
        }
        if let Some(i) = self.index {
            write!(f, ",{i},{}", self.scale)?;
        }
        write!(f, ")")
    }
}

/// The operation performed by a micro-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// `dst = op(src1, src2)`.
    Alu {
        /// The ALU operation.
        op: AluOp,
        /// Destination register.
        dst: ArchReg,
        /// First source register.
        src1: ArchReg,
        /// Second source (register or immediate).
        src2: Operand,
    },
    /// Register or immediate move: `dst = src`.
    Mov {
        /// Destination register.
        dst: ArchReg,
        /// Source operand.
        src: Operand,
    },
    /// Memory load: `dst = mem[addr]` with optional sign extension.
    Load {
        /// Destination register.
        dst: ArchReg,
        /// Effective-address expression.
        addr: MemOperand,
        /// Access width.
        width: Width,
        /// Whether the loaded value is sign-extended to 64 bits.
        signed: bool,
    },
    /// Memory store: `mem[addr] = src`.
    Store {
        /// Value to store.
        src: Operand,
        /// Effective-address expression.
        addr: MemOperand,
        /// Access width.
        width: Width,
    },
    /// Flag-setting compare: `flags = cmp(src1, src2)`.
    Cmp {
        /// First source register.
        src1: ArchReg,
        /// Second source (register or immediate).
        src2: Operand,
    },
    /// Conditional branch to `target` if `cond` holds on the flags.
    Branch {
        /// The condition.
        cond: Cond,
        /// Taken target PC.
        target: Pc,
    },
    /// Unconditional jump.
    Jump {
        /// Target PC.
        target: Pc,
    },
    /// Direct call: writes the return address (`pc + 1`) into `link` and
    /// jumps to `target`.
    Call {
        /// Callee entry PC.
        target: Pc,
        /// Register receiving the return address.
        link: ArchReg,
    },
    /// Indirect jump through a register. `is_return` marks
    /// link-register returns so the fetch unit predicts the target with
    /// its return-address stack instead of the BTB.
    JumpInd {
        /// Register holding the target PC.
        src: ArchReg,
        /// Whether this is a function return.
        is_return: bool,
    },
    /// No operation.
    Nop,
    /// Stops the machine.
    Halt,
}

/// A static micro-op: a [`UopKind`] plus its program counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Uop {
    /// The uop's program counter (its index within the program).
    pub pc: Pc,
    /// What the uop does.
    pub kind: UopKind,
}

impl Uop {
    /// The set of registers written by this uop.
    ///
    /// `cmp` writes the [`FLAGS`] register; branches, stores, `nop` and
    /// `halt` write nothing.
    #[must_use]
    pub fn dsts(&self) -> RegSet {
        match self.kind {
            UopKind::Alu { dst, .. } | UopKind::Mov { dst, .. } | UopKind::Load { dst, .. } => {
                RegSet::single(dst)
            }
            UopKind::Cmp { .. } => RegSet::single(FLAGS),
            UopKind::Call { link, .. } => RegSet::single(link),
            _ => RegSet::empty(),
        }
    }

    /// The set of registers read by this uop.
    ///
    /// Branches read [`FLAGS`]; loads and stores read their address
    /// registers; stores also read the stored value's register.
    #[must_use]
    pub fn srcs(&self) -> RegSet {
        let mut s = RegSet::empty();
        match self.kind {
            UopKind::Alu { src1, src2, .. } => {
                s.insert(src1);
                if let Some(r) = src2.reg() {
                    s.insert(r);
                }
            }
            UopKind::Mov { src, .. } => {
                if let Some(r) = src.reg() {
                    s.insert(r);
                }
            }
            UopKind::Load { addr, .. } => s = addr.srcs(),
            UopKind::Store { src, addr, .. } => {
                s = addr.srcs();
                if let Some(r) = src.reg() {
                    s.insert(r);
                }
            }
            UopKind::Cmp { src1, src2 } => {
                s.insert(src1);
                if let Some(r) = src2.reg() {
                    s.insert(r);
                }
            }
            UopKind::Branch { .. } => {
                s.insert(FLAGS);
            }
            UopKind::JumpInd { src, .. } => {
                s.insert(src);
            }
            UopKind::Jump { .. } | UopKind::Call { .. } | UopKind::Nop | UopKind::Halt => {}
        }
        s
    }

    /// Whether this uop is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self.kind, UopKind::Branch { .. })
    }

    /// Whether this uop is any control-flow instruction.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self.kind,
            UopKind::Branch { .. }
                | UopKind::Jump { .. }
                | UopKind::Call { .. }
                | UopKind::JumpInd { .. }
        )
    }

    /// Whether this uop's next PC comes from a register (its target must
    /// be *predicted* at fetch: RAS for returns, BTB otherwise).
    #[must_use]
    pub fn is_indirect(&self) -> bool {
        matches!(self.kind, UopKind::JumpInd { .. })
    }

    /// Whether this uop reads memory.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self.kind, UopKind::Load { .. })
    }

    /// Whether this uop writes memory.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self.kind, UopKind::Store { .. })
    }

    /// Whether this uop is a plain register/immediate move (candidate for
    /// move elimination during chain extraction, §4.3).
    #[must_use]
    pub fn is_mov(&self) -> bool {
        matches!(self.kind, UopKind::Mov { .. })
    }

    /// Execution latency of this uop's compute in cycles (memory latency is
    /// modelled by the cache hierarchy, not here).
    #[must_use]
    pub fn compute_latency(&self) -> u32 {
        match self.kind {
            UopKind::Alu { op, .. } => op.latency(),
            _ => 1,
        }
    }
}

impl fmt::Display for Uop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}: ", self.pc)?;
        match self.kind {
            UopKind::Alu {
                op,
                dst,
                src1,
                src2,
            } => {
                let name = format!("{op:?}").to_lowercase();
                write!(f, "{name} {dst}, {src1}, {src2}")
            }
            UopKind::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            UopKind::Load {
                dst,
                addr,
                width,
                signed,
            } => {
                let suffix = if signed { "s" } else { "" };
                write!(f, "ld{}{} {dst}, {addr}", width.bytes(), suffix)
            }
            UopKind::Store { src, addr, width } => {
                write!(f, "st{} {addr}, {src}", width.bytes())
            }
            UopKind::Cmp { src1, src2 } => write!(f, "cmp {src1}, {src2}"),
            UopKind::Branch { cond, target } => {
                let name = format!("{cond:?}").to_lowercase();
                write!(f, "b{name} {target:#06x}")
            }
            UopKind::Jump { target } => write!(f, "jmp {target:#06x}"),
            UopKind::Call { target, link } => write!(f, "call {target:#06x}, link {link}"),
            UopKind::JumpInd { src, is_return } => {
                if is_return {
                    write!(f, "ret {src}")
                } else {
                    write!(f, "jmpr {src}")
                }
            }
            UopKind::Nop => write!(f, "nop"),
            UopKind::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{R1, R2, R3};

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), u64::MAX);
        assert_eq!(AluOp::Mul.eval(7, 6), 42);
        assert_eq!(AluOp::Div.eval(42, 6), 7);
        assert_eq!(AluOp::Div.eval(42, 0), 0, "div-by-zero is defined as 0");
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Not.eval(0, 99), u64::MAX);
        assert_eq!(AluOp::Shl.eval(1, 4), 16);
        assert_eq!(AluOp::Sar.eval(-16i64 as u64, 2), -4i64 as u64);
        assert_eq!(AluOp::SextB.eval(0xff, 0), u64::MAX);
    }

    #[test]
    fn alu_div_negative() {
        assert_eq!(AluOp::Div.eval(-42i64 as u64, 6), -7i64 as u64);
    }

    #[test]
    fn dce_rejects_div_only() {
        assert!(!AluOp::Div.dce_allowed());
        for op in [AluOp::Add, AluOp::Mul, AluOp::Shl, AluOp::SextL] {
            assert!(op.dce_allowed(), "{op:?} should be DCE-allowed");
        }
    }

    #[test]
    fn cond_eval_matrix() {
        let f = Flags::from_cmp(3, 5);
        assert!(!f.zf);
        assert!(Cond::Lt.eval(f) && Cond::Le.eval(f) && Cond::Ne.eval(f));
        assert!(!Cond::Gt.eval(f) && !Cond::Ge.eval(f) && !Cond::Eq.eval(f));
        let f = Flags::from_cmp(5, 5);
        assert!(Cond::Eq.eval(f) && Cond::Le.eval(f) && Cond::Ge.eval(f));
        assert!(!Cond::Lt.eval(f) && !Cond::Gt.eval(f));
        let f = Flags::from_cmp(-1i64 as u64, 1);
        assert!(Cond::Lt.eval(f), "signed -1 < 1");
        assert!(!Cond::Ult.eval(f), "unsigned max > 1");
        assert!(Cond::Uge.eval(f));
    }

    #[test]
    fn flags_pack_round_trip() {
        for a in [0u64, 1, 5, u64::MAX] {
            for b in [0u64, 1, 5, u64::MAX] {
                let f = Flags::from_cmp(a, b);
                assert_eq!(Flags::unpack(f.pack()), f);
            }
        }
    }

    #[test]
    fn width_extend() {
        assert_eq!(Width::B4.truncate(0x1_2345_6789), 0x2345_6789);
        assert_eq!(Width::B2.sign_extend(0x8000), 0xffff_ffff_ffff_8000);
        assert_eq!(Width::B2.sign_extend(0x7fff), 0x7fff);
    }

    #[test]
    fn uop_dataflow_sets() {
        let u = Uop {
            pc: 0,
            kind: UopKind::Cmp {
                src1: R1,
                src2: Operand::Imm(2),
            },
        };
        assert_eq!(u.dsts(), RegSet::single(FLAGS));
        assert_eq!(u.srcs(), RegSet::single(R1));

        let b = Uop {
            pc: 1,
            kind: UopKind::Branch {
                cond: Cond::Ne,
                target: 9,
            },
        };
        assert_eq!(b.srcs(), RegSet::single(FLAGS));
        assert!(b.dsts().is_empty());

        let st = Uop {
            pc: 2,
            kind: UopKind::Store {
                src: Operand::Reg(R3),
                addr: MemOperand::base_index(R1, R2, 8, 16),
                width: Width::B8,
            },
        };
        assert_eq!(st.srcs(), [R1, R2, R3].into_iter().collect());
        assert!(st.dsts().is_empty());
    }

    #[test]
    fn display_formats() {
        let u = Uop {
            pc: 3,
            kind: UopKind::Load {
                dst: R1,
                addr: MemOperand::base_index(R2, R3, 4, 0x6f0),
                width: Width::B4,
                signed: false,
            },
        };
        let s = u.to_string();
        assert!(s.contains("ld4 r1"), "{s}");
        assert!(s.contains("(r2,r3,4)"), "{s}");
    }

    #[test]
    #[should_panic(expected = "invalid scale")]
    fn bad_scale_panics() {
        let _ = MemOperand::base_index(R1, R2, 3, 0);
    }
}
