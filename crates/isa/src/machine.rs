//! The functional emulator.
//!
//! [`Machine`] executes one uop per [`Machine::step`] call and returns an
//! [`ExecRecord`] describing everything the timing simulator needs: the
//! resolved branch direction, effective address, loaded/stored value, and
//! the destination value. A fetch unit models speculation by passing a
//! *forced direction* for conditional branches — the machine then follows
//! the forced (predicted) path while still recording the direction the
//! branch would actually take given current state. Checkpoints taken at
//! branches allow the simulator to rewind the machine on a misprediction.

use std::fmt;

use crate::error::IsaError;
use crate::memory::{JournalMark, JournaledMemory};
use crate::program::Program;
use crate::reg::{ArchReg, FLAGS};
use crate::uop::{Flags, MemOperand, Operand, Pc, Uop, UopKind, Width};

/// The architectural register state of the machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuState {
    /// General-purpose register values.
    pub regs: [u64; 16],
    /// Condition codes.
    pub flags: Flags,
    /// Next PC to execute.
    pub pc: Pc,
    /// Whether a `halt` has executed.
    pub halted: bool,
}

impl CpuState {
    /// A reset state starting at `pc` 0 with zeroed registers.
    #[must_use]
    pub fn new() -> Self {
        CpuState {
            regs: [0; 16],
            flags: Flags::default(),
            pc: 0,
            halted: false,
        }
    }

    /// Reads a general-purpose register.
    ///
    /// # Panics
    ///
    /// Panics if `r` is the flags register.
    #[must_use]
    pub fn reg(&self, r: ArchReg) -> u64 {
        assert!(!r.is_flags(), "read flags via .flags");
        self.regs[r.index()]
    }

    fn set_reg(&mut self, r: ArchReg, v: u64) {
        self.regs[r.index()] = v;
    }
}

impl Default for CpuState {
    fn default() -> Self {
        Self::new()
    }
}

/// A rewindable snapshot of machine state (registers + a memory journal
/// mark). Taken by the fetch unit at every conditional branch.
#[derive(Clone, Debug)]
pub struct MachineCheckpoint {
    cpu: CpuState,
    mem_mark: JournalMark,
}

/// How a branch executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchExec {
    /// The direction the branch actually resolves to, given the machine
    /// state at execution. (Garbage-but-harmless if the machine was already
    /// on a wrong path; such records are squashed before use.)
    pub actual_taken: bool,
    /// The direction the machine *followed* (the forced/predicted one).
    pub followed_taken: bool,
    /// The taken-target PC of the branch. For indirect jumps this is the
    /// *actual* (register-resolved) target.
    pub target: Pc,
    /// The PC execution would actually continue at (`target` or the
    /// fall-through for conditional branches; the register value for
    /// indirect jumps). `rec.next_pc` is the *followed* next PC, which
    /// differs under a forced (mispredicted) fetch.
    pub actual_next: Pc,
}

/// How a memory access executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemExec {
    /// Effective address.
    pub addr: u64,
    /// Access width.
    pub width: Width,
    /// True for stores.
    pub is_store: bool,
    /// Value loaded or stored (post sign-extension for signed loads).
    pub value: u64,
}

/// Everything the timing simulator needs to know about one executed uop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecRecord {
    /// PC of the executed uop.
    pub pc: Pc,
    /// PC the machine will execute next.
    pub next_pc: Pc,
    /// Branch resolution, for control uops.
    pub branch: Option<BranchExec>,
    /// Memory access details, for loads and stores.
    pub mem: Option<MemExec>,
    /// The destination register and the value written, if any. For `cmp`
    /// the destination is [`FLAGS`] and the value is the packed flags.
    pub dst: Option<(ArchReg, u64)>,
    /// Whether this uop was `halt`.
    pub halt: bool,
}

/// A fetch-time steering directive for [`Machine::step`]: which way the
/// speculative front end sends execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Force {
    /// Follow the architecturally correct path.
    #[default]
    None,
    /// Force a conditional branch's direction (the predictor's choice).
    Direction(bool),
    /// Force an indirect jump's target (the RAS/BTB's choice).
    Target(Pc),
}

impl Force {
    fn direction(self) -> Option<bool> {
        match self {
            Force::Direction(d) => Some(d),
            _ => None,
        }
    }

    fn target(self) -> Option<Pc> {
        match self {
            Force::Target(t) => Some(t),
            _ => None,
        }
    }
}

impl From<Option<bool>> for Force {
    fn from(o: Option<bool>) -> Self {
        match o {
            Some(d) => Force::Direction(d),
            None => Force::None,
        }
    }
}

/// The functional emulator: [`CpuState`] + [`JournaledMemory`].
pub struct Machine {
    cpu: CpuState,
    mem: JournaledMemory,
    steps: u64,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.cpu.pc)
            .field("halted", &self.cpu.halted)
            .field("steps", &self.steps)
            .finish()
    }
}

impl Machine {
    /// Creates a machine over the given memory, starting at PC 0.
    #[must_use]
    pub fn new(mem: JournaledMemory) -> Self {
        Machine {
            cpu: CpuState::new(),
            mem,
            steps: 0,
        }
    }

    /// Current next-PC.
    #[must_use]
    pub fn pc(&self) -> Pc {
        self.cpu.pc
    }

    /// Sets the next PC (used to start at an entry point).
    pub fn set_pc(&mut self, pc: Pc) {
        self.cpu.pc = pc;
    }

    /// Whether the machine has executed `halt`.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.cpu.halted
    }

    /// Total uops executed (including wrong-path ones).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Reads a general-purpose register.
    #[must_use]
    pub fn reg(&self, r: ArchReg) -> u64 {
        self.cpu.reg(r)
    }

    /// Writes a general-purpose register (used by tests and workload setup).
    pub fn set_reg(&mut self, r: ArchReg, v: u64) {
        assert!(!r.is_flags(), "set flags via cmp");
        self.cpu.set_reg(r, v);
    }

    /// The architectural register state.
    #[must_use]
    pub fn cpu(&self) -> &CpuState {
        &self.cpu
    }

    /// The data memory.
    #[must_use]
    pub fn memory(&self) -> &JournaledMemory {
        &self.mem
    }

    /// Mutable access to data memory (workload setup).
    pub fn memory_mut(&mut self) -> &mut JournaledMemory {
        &mut self.mem
    }

    /// Takes a rewindable checkpoint of the full machine state.
    #[must_use]
    pub fn checkpoint(&self) -> MachineCheckpoint {
        MachineCheckpoint {
            cpu: self.cpu.clone(),
            mem_mark: self.mem.mark(),
        }
    }

    /// Rewinds to `cp`, undoing all register and memory updates since.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's memory mark was already released.
    pub fn restore(&mut self, cp: &MachineCheckpoint) {
        self.mem.rollback_to(cp.mem_mark);
        self.cpu = cp.cpu.clone();
    }

    /// Releases the ability to rewind to checkpoints older than `cp`
    /// (called as branches retire).
    pub fn release(&mut self, cp: &MachineCheckpoint) {
        self.mem.release_before(cp.mem_mark);
    }

    fn effective_addr(&self, m: MemOperand) -> u64 {
        let base = m.base.map_or(0, |r| self.cpu.reg(r));
        let index = m.index.map_or(0, |r| self.cpu.reg(r));
        base.wrapping_add(index.wrapping_mul(u64::from(m.scale)))
            .wrapping_add(m.disp as u64)
    }

    fn operand(&self, o: Operand) -> u64 {
        match o {
            Operand::Reg(r) => self.cpu.reg(r),
            Operand::Imm(v) => v as u64,
        }
    }

    /// Executes the uop at the current PC.
    ///
    /// `force` steers speculation: [`Force::Direction`] overrides a
    /// conditional branch's direction, [`Force::Target`] overrides an
    /// indirect jump's target (the fetch unit's predictions). Other uops
    /// ignore it. `Option<bool>` converts into `Force` for convenience.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Halted`] if the machine already halted, or
    /// [`IsaError::PcOutOfRange`] if the PC fell off the program.
    pub fn step(
        &mut self,
        prog: &Program,
        force: impl Into<Force>,
    ) -> Result<ExecRecord, IsaError> {
        let force: Force = force.into();
        if self.cpu.halted {
            return Err(IsaError::Halted);
        }
        let pc = self.cpu.pc;
        let uop: &Uop = prog.fetch(pc).ok_or(IsaError::PcOutOfRange {
            pc,
            len: prog.len(),
        })?;
        self.steps += 1;

        let mut rec = ExecRecord {
            pc,
            next_pc: pc + 1,
            branch: None,
            mem: None,
            dst: None,
            halt: false,
        };

        match uop.kind {
            UopKind::Alu {
                op,
                dst,
                src1,
                src2,
            } => {
                let v = op.eval(self.cpu.reg(src1), self.operand(src2));
                self.cpu.set_reg(dst, v);
                rec.dst = Some((dst, v));
            }
            UopKind::Mov { dst, src } => {
                let v = self.operand(src);
                self.cpu.set_reg(dst, v);
                rec.dst = Some((dst, v));
            }
            UopKind::Load {
                dst,
                addr,
                width,
                signed,
            } => {
                let a = self.effective_addr(addr);
                let raw = self.mem.read(a, width);
                let v = if signed { width.sign_extend(raw) } else { raw };
                self.cpu.set_reg(dst, v);
                rec.mem = Some(MemExec {
                    addr: a,
                    width,
                    is_store: false,
                    value: v,
                });
                rec.dst = Some((dst, v));
            }
            UopKind::Store { src, addr, width } => {
                let a = self.effective_addr(addr);
                let v = width.truncate(self.operand(src));
                self.mem.write(a, width, v);
                rec.mem = Some(MemExec {
                    addr: a,
                    width,
                    is_store: true,
                    value: v,
                });
            }
            UopKind::Cmp { src1, src2 } => {
                let f = Flags::from_cmp(self.cpu.reg(src1), self.operand(src2));
                self.cpu.flags = f;
                rec.dst = Some((FLAGS, u64::from(f.pack())));
            }
            UopKind::Branch { cond, target } => {
                let actual = cond.eval(self.cpu.flags);
                let followed = force.direction().unwrap_or(actual);
                rec.next_pc = if followed { target } else { pc + 1 };
                rec.branch = Some(BranchExec {
                    actual_taken: actual,
                    followed_taken: followed,
                    target,
                    actual_next: if actual { target } else { pc + 1 },
                });
            }
            UopKind::Jump { target } => {
                rec.next_pc = target;
                rec.branch = Some(BranchExec {
                    actual_taken: true,
                    followed_taken: true,
                    target,
                    actual_next: target,
                });
            }
            UopKind::Call { target, link } => {
                self.cpu.set_reg(link, pc + 1);
                rec.dst = Some((link, pc + 1));
                rec.next_pc = target;
                rec.branch = Some(BranchExec {
                    actual_taken: true,
                    followed_taken: true,
                    target,
                    actual_next: target,
                });
            }
            UopKind::JumpInd { src, .. } => {
                let actual = self.cpu.reg(src);
                let followed = force.target().unwrap_or(actual);
                rec.next_pc = followed;
                rec.branch = Some(BranchExec {
                    actual_taken: true,
                    followed_taken: true,
                    target: actual,
                    actual_next: actual,
                });
            }
            UopKind::Nop => {}
            UopKind::Halt => {
                self.cpu.halted = true;
                rec.halt = true;
            }
        }

        self.cpu.pc = rec.next_pc;
        Ok(rec)
    }

    /// Runs until `halt` or `max_steps`, following actual branch directions.
    /// Returns the number of uops executed.
    ///
    /// # Errors
    ///
    /// Propagates any [`IsaError`] from [`Machine::step`].
    pub fn run(&mut self, prog: &Program, max_steps: u64) -> Result<u64, IsaError> {
        let start = self.steps;
        while !self.cpu.halted && self.steps - start < max_steps {
            self.step(prog, Force::None)?;
        }
        Ok(self.steps - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::memory::MemoryImage;
    use crate::reg::{R0, R1, R2, R3};
    use crate::uop::Cond;

    fn machine() -> Machine {
        Machine::new(MemoryImage::new().into_memory())
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 10);
        b.addi(R1, R0, 5);
        b.mul(R2, R1, 4i64);
        b.halt();
        let p = b.build().unwrap();
        let mut m = machine();
        m.run(&p, 100).unwrap();
        assert_eq!(m.reg(R2), 60);
        assert!(m.halted());
    }

    #[test]
    fn loop_executes_correct_count() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 8);
        let top = b.here();
        b.addi(R1, R1, 2);
        b.subi(R0, R0, 1);
        b.cmpi(R0, 0);
        b.br(Cond::Ne, top);
        b.halt();
        let p = b.build().unwrap();
        let mut m = machine();
        m.run(&p, 1000).unwrap();
        assert_eq!(m.reg(R1), 16);
    }

    #[test]
    fn memory_load_store() {
        let mut img = MemoryImage::new();
        img.write(0x100, Width::B8, 77);
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 0x100);
        b.load(R1, MemOperand::base_disp(R0, 0));
        b.addi(R1, R1, 1);
        b.store(MemOperand::base_disp(R0, 8), R1);
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(img.into_memory());
        m.run(&p, 100).unwrap();
        assert_eq!(m.reg(R1), 78);
        assert_eq!(m.memory().read(0x108, Width::B8), 78);
    }

    #[test]
    fn signed_load_extends() {
        let mut img = MemoryImage::new();
        img.write(0x10, Width::B2, 0xFFFE);
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 0x10);
        b.load_w(R1, MemOperand::base_disp(R0, 0), Width::B2, true);
        b.load_w(R2, MemOperand::base_disp(R0, 0), Width::B2, false);
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(img.into_memory());
        m.run(&p, 10).unwrap();
        assert_eq!(m.reg(R1) as i64, -2);
        assert_eq!(m.reg(R2), 0xFFFE);
    }

    #[test]
    fn forced_branch_goes_wrong_path_and_records_actual() {
        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.cmpi(R0, 0); // R0 == 0, so Eq is actually taken
        b.br(Cond::Eq, skip);
        b.mov_imm(R3, 0xbad);
        b.bind(skip);
        b.halt();
        let p = b.build().unwrap();
        let mut m = machine();
        m.step(&p, None).unwrap(); // cmp
        let rec = m.step(&p, Some(false)).unwrap(); // force not-taken
        let br = rec.branch.unwrap();
        assert!(br.actual_taken, "condition truly holds");
        assert!(!br.followed_taken, "machine followed the forced path");
        assert_eq!(rec.next_pc, 2, "fell through onto the wrong path");
        let rec = m.step(&p, None).unwrap();
        assert_eq!(rec.dst, Some((R3, 0xbad)), "wrong-path uop executed");
    }

    #[test]
    fn checkpoint_restore_rewinds_regs_and_memory() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 1);
        b.store(MemOperand::absolute(0x40), R0);
        b.mov_imm(R0, 2);
        b.store(MemOperand::absolute(0x40), R0);
        b.halt();
        let p = b.build().unwrap();
        let mut m = machine();
        m.step(&p, None).unwrap();
        m.step(&p, None).unwrap();
        let cp = m.checkpoint();
        m.step(&p, None).unwrap();
        m.step(&p, None).unwrap();
        assert_eq!(m.reg(R0), 2);
        assert_eq!(m.memory().read(0x40, Width::B8), 2);
        m.restore(&cp);
        assert_eq!(m.reg(R0), 1);
        assert_eq!(m.memory().read(0x40, Width::B8), 1);
        assert_eq!(m.pc(), 2);
        // Re-execution after restore proceeds normally.
        m.step(&p, None).unwrap();
        assert_eq!(m.reg(R0), 2);
    }

    #[test]
    fn step_after_halt_errors() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let mut m = machine();
        let rec = m.step(&p, None).unwrap();
        assert!(rec.halt);
        assert_eq!(m.step(&p, None), Err(IsaError::Halted));
    }

    #[test]
    fn pc_off_end_errors() {
        let mut b = ProgramBuilder::new();
        b.nop();
        let p = b.build().unwrap();
        let mut m = machine();
        m.step(&p, None).unwrap();
        assert!(matches!(
            m.step(&p, None),
            Err(IsaError::PcOutOfRange { pc: 1, len: 1 })
        ));
    }

    #[test]
    fn base_index_scale_addressing() {
        let mut img = MemoryImage::new();
        img.write_u32_slice(0x1000, &[10, 20, 30, 40]);
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 0x1000);
        b.mov_imm(R1, 2);
        b.load_w(R2, MemOperand::base_index(R0, R1, 4, 0), Width::B4, false);
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(img.into_memory());
        m.run(&p, 10).unwrap();
        assert_eq!(m.reg(R2), 30);
    }
}
