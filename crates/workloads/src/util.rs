//! Shared helpers: host-side data generation and guest-side code idioms.

use br_isa::{reg, ArchReg, ProgramBuilder};

/// A deterministic xorshift64 generator for building workload data.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator; zero seeds are remapped.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Emits the guest-side xorshift64 step on `state`, clobbering `tmp`.
/// This is the canonical "random probe" idiom: the resulting branch
/// outcomes carry no history correlation, but the dependence chain can
/// recompute them exactly.
pub fn emit_xorshift(b: &mut ProgramBuilder, state: ArchReg, tmp: ArchReg) {
    b.shl(tmp, state, 13i64);
    b.xor(state, state, tmp);
    b.shr(tmp, state, 7i64);
    b.xor(state, state, tmp);
    b.shl(tmp, state, 17i64);
    b.xor(state, state, tmp);
}

/// Emits `rounds` of filler ALU work on scratch registers `r8`, `r9`,
/// `r13` — the benchmark's "real work" per iteration, giving the DCE
/// slack to run ahead (each round is 3 uops).
pub fn emit_do_work(b: &mut ProgramBuilder, rounds: usize) {
    for _ in 0..rounds {
        b.mul(reg::R8, reg::R8, 3i64);
        b.addi(reg::R9, reg::R9, 7);
        b.xor(reg::R13, reg::R13, reg::R9);
    }
}

/// Returns `scale` clamped to at least `min` and rounded down to a power
/// of two (index masks stay cheap).
#[must_use]
pub fn pow2_scale(scale: usize, min: usize) -> u64 {
    let s = scale.max(min);
    let mut p = 1usize;
    while p * 2 <= s {
        p *= 2;
    }
    p as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_isa::{Machine, MemoryImage};

    #[test]
    fn xorshift_deterministic_and_spread() {
        let mut a = XorShift64::new(5);
        let mut b = XorShift64::new(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = a.next_u64();
            assert_eq!(v, b.next_u64());
            seen.insert(v % 64);
        }
        assert!(seen.len() > 50, "poor low-bit spread");
    }

    #[test]
    fn zero_seed_remapped() {
        assert_ne!(XorShift64::new(0).next_u64(), 0);
    }

    #[test]
    fn guest_xorshift_matches_host() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(reg::R1, 0x1234_5678);
        for _ in 0..3 {
            emit_xorshift(&mut b, reg::R1, reg::R2);
        }
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(MemoryImage::new().into_memory());
        m.run(&p, 100).unwrap();

        let mut host = 0x1234_5678u64;
        for _ in 0..3 {
            host ^= host << 13;
            host ^= host >> 7;
            host ^= host << 17;
        }
        assert_eq!(m.reg(reg::R1), host);
    }

    #[test]
    fn pow2_scale_bounds() {
        assert_eq!(pow2_scale(100, 64), 64);
        assert_eq!(pow2_scale(4096, 64), 4096);
        assert_eq!(pow2_scale(5000, 64), 4096);
        assert_eq!(pow2_scale(0, 128), 128);
    }
}
