//! The Dependence Chain Cache (§4.2): extracted chains awaiting initiation.

use std::collections::BTreeSet;
use std::sync::Arc;

use br_isa::Pc;

use crate::chain::DependenceChain;

#[derive(Clone, Debug)]
struct CacheEntry {
    chain: Arc<DependenceChain>,
    lru: u64,
}

/// A small fully-associative LRU cache of dependence chains, indexed by
/// initiation tag at lookup time. Multiple chains may share a tag (e.g.
/// both branch A's and branch B's chains can be initiated by `<A, NT>`);
/// a lookup returns all of them, matching §4.1 "initiate all matching
/// chains".
#[derive(Clone, Debug)]
pub struct DependenceChainCache {
    capacity: usize,
    entries: Vec<CacheEntry>,
    tick: u64,
    installs: u64,
    lookups: u64,
    hits: u64,
}

impl DependenceChainCache {
    /// Creates a cache holding `capacity` chains (32 in the Mini config).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "chain cache capacity must be nonzero");
        DependenceChainCache {
            capacity,
            entries: Vec::new(),
            tick: 0,
            installs: 0,
            lookups: 0,
            hits: 0,
        }
    }

    /// Installs a chain, replacing any existing chain with the same tag
    /// and target branch, or evicting the LRU entry when full.
    pub fn install(&mut self, chain: DependenceChain) -> Arc<DependenceChain> {
        self.tick += 1;
        self.installs += 1;
        let arc = Arc::new(chain);
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.chain.tag == arc.tag && e.chain.branch_pc == arc.branch_pc)
        {
            e.chain = Arc::clone(&arc);
            e.lru = self.tick;
            return arc;
        }
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter_mut()
                .min_by_key(|e| e.lru)
                .expect("nonempty at capacity");
            *victim = CacheEntry {
                chain: Arc::clone(&arc),
                lru: self.tick,
            };
        } else {
            self.entries.push(CacheEntry {
                chain: Arc::clone(&arc),
                lru: self.tick,
            });
        }
        arc
    }

    /// All chains whose tag matches the `(pc, outcome)` event, refreshing
    /// their LRU position.
    pub fn lookup(&mut self, pc: Pc, outcome: bool) -> Vec<Arc<DependenceChain>> {
        let mut chains = Vec::new();
        self.lookup_into(pc, outcome, &mut chains);
        chains
    }

    /// Allocation-free [`DependenceChainCache::lookup`]: clears `out` and
    /// fills it with the matching chains (the hot path reuses one buffer).
    pub fn lookup_into(&mut self, pc: Pc, outcome: bool, out: &mut Vec<Arc<DependenceChain>>) {
        out.clear();
        self.tick += 1;
        self.lookups += 1;
        let tick = self.tick;
        for e in &mut self.entries {
            if e.chain.tag.matches(pc, outcome) {
                e.lru = tick;
                out.push(Arc::clone(&e.chain));
            }
        }
        if !out.is_empty() {
            self.hits += 1;
        }
    }

    /// Whether any cached chain would match the `(pc, outcome)` event
    /// (no LRU side effects).
    #[must_use]
    pub fn has_match(&self, pc: Pc, outcome: bool) -> bool {
        self.entries
            .iter()
            .any(|e| e.chain.tag.matches(pc, outcome))
    }

    /// Whether some cached chain pre-computes the branch at `pc` (i.e.
    /// `pc` is a *covered* branch — drives Figure 12's denominator).
    #[must_use]
    pub fn covers_branch(&self, pc: Pc) -> bool {
        self.entries.iter().any(|e| e.chain.branch_pc == pc)
    }

    /// The set of covered branch PCs.
    #[must_use]
    pub fn covered_branches(&self) -> BTreeSet<Pc> {
        self.entries.iter().map(|e| e.chain.branch_pc).collect()
    }

    /// Iterates over the cached chains.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<DependenceChain>> {
        self.entries.iter().map(|e| &e.chain)
    }

    /// Number of cached chains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total installs performed.
    #[must_use]
    pub fn installs(&self) -> u64 {
        self.installs
    }

    /// Lifetime `(lookups, hits)` where a hit is a lookup matching at
    /// least one chain. Telemetry turns the deltas into an interval hit
    /// rate.
    #[must_use]
    pub fn lookup_stats(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }

    /// Fault injection: evicts the entry at position `sel % len`
    /// (models a spurious capacity eviction — the chain must be
    /// re-extracted, a pure performance event). Returns whether anything
    /// was evicted.
    pub fn chaos_evict(&mut self, sel: u64) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        let idx = (sel % self.entries.len() as u64) as usize;
        self.entries.swap_remove(idx);
        true
    }

    /// Validates structural invariants: entry count within capacity and
    /// LRU stamps not exceeding the access tick.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.entries.len() > self.capacity {
            return Err(format!(
                "chain cache: {} entries exceed capacity {}",
                self.entries.len(),
                self.capacity
            ));
        }
        for e in &self.entries {
            if e.lru > self.tick {
                return Err(format!(
                    "chain cache[{:#x}]: LRU stamp {} ahead of tick {}",
                    e.chain.branch_pc, e.lru, self.tick
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{ChainOp, ChainSrc, ChainTag};
    use br_isa::Cond;

    fn chain(tag_pc: Pc, outcome: Option<bool>, branch_pc: Pc) -> DependenceChain {
        DependenceChain {
            tag: ChainTag {
                pc: tag_pc,
                outcome,
            },
            branch_pc,
            cond: Cond::Eq,
            ops: vec![ChainOp::Cmp {
                src1: ChainSrc::Reg(0),
                src2: ChainSrc::Imm(0),
            }],
            live_ins: vec![(br_isa::reg::R1, 0)],
            live_outs: vec![],
            num_local_regs: 1,
            guard_terminated: false,
            eliminated_uops: 0,
            source_pcs: std::collections::BTreeSet::new(),
        }
    }

    #[test]
    fn lookup_matches_wildcard_and_outcome() {
        let mut cc = DependenceChainCache::new(8);
        cc.install(chain(0x10, None, 0x10)); // <A,*> -> A
        cc.install(chain(0x10, Some(false), 0x20)); // <A,NT> -> B
        assert_eq!(cc.lookup(0x10, false).len(), 2);
        assert_eq!(cc.lookup(0x10, true).len(), 1);
        assert!(cc.covers_branch(0x20));
        assert!(!cc.covers_branch(0x30));
    }

    #[test]
    fn reinstall_replaces_same_identity() {
        let mut cc = DependenceChainCache::new(8);
        cc.install(chain(0x10, None, 0x10));
        let mut c2 = chain(0x10, None, 0x10);
        c2.eliminated_uops = 5;
        cc.install(c2);
        assert_eq!(cc.len(), 1);
        assert_eq!(cc.lookup(0x10, true)[0].eliminated_uops, 5);
    }

    #[test]
    fn lru_eviction() {
        let mut cc = DependenceChainCache::new(2);
        cc.install(chain(0x10, None, 0x10));
        cc.install(chain(0x20, None, 0x20));
        let _ = cc.lookup(0x10, true); // refresh 0x10
        cc.install(chain(0x30, None, 0x30)); // evicts 0x20
        assert!(cc.covers_branch(0x10));
        assert!(!cc.covers_branch(0x20));
        assert!(cc.covers_branch(0x30));
        assert_eq!(cc.len(), 2);
    }
}
