//! Speculative global branch history with incrementally folded views.
//!
//! TAGE needs the global history folded down to each table's index and tag
//! widths. Folding is maintained incrementally ([`FoldedHistory`]) as bits
//! are inserted, and the whole folded state is cheap to checkpoint — the
//! underlying bit ring is *not* part of the checkpoint because restored
//! positions always point into bits that have not been overwritten (the
//! ring is sized far beyond maximum history + maximum in-flight branches).

/// A circular-buffer compressed (folded) view of the most recent `olength`
/// history bits, `clength` bits wide. Standard CBP-style implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FoldedHistory {
    comp: u32,
    clength: u32,
    olength: u32,
    outpoint: u32,
}

impl FoldedHistory {
    /// Creates a folded view of the last `olength` bits, `clength` wide.
    ///
    /// # Panics
    ///
    /// Panics if `clength` is 0 or greater than 31.
    #[must_use]
    pub fn new(olength: u32, clength: u32) -> Self {
        assert!(clength > 0 && clength < 32, "bad folded width {clength}");
        FoldedHistory {
            comp: 0,
            clength,
            olength,
            outpoint: olength % clength,
        }
    }

    /// Folds in the newest bit and folds out the bit leaving the window.
    pub fn update(&mut self, new_bit: bool, out_bit: bool) {
        self.comp = (self.comp << 1) | u32::from(new_bit);
        self.comp ^= u32::from(out_bit) << self.outpoint;
        self.comp ^= self.comp >> self.clength;
        self.comp &= (1 << self.clength) - 1;
    }

    /// The folded value.
    #[must_use]
    pub fn value(self) -> u32 {
        self.comp
    }

    /// The original (unfolded) history length.
    #[must_use]
    pub fn history_length(self) -> u32 {
        self.olength
    }
}

/// Snapshot of the speculative history state; restored on mispredictions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistoryCheckpoint {
    head: u64,
    path: u64,
    folded: Vec<FoldedHistory>,
}

/// Speculative global history: a large bit ring, a path-history register,
/// and a set of registered folded views.
#[derive(Clone, Debug)]
pub struct GlobalHistory {
    bits: Vec<bool>,
    /// Monotonic count of bits ever inserted; `head % bits.len()` is the
    /// slot the *next* bit will occupy.
    head: u64,
    path: u64,
    folded: Vec<FoldedHistory>,
}

impl GlobalHistory {
    /// Creates a history ring of `capacity` bits (power of two enforced).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two or is smaller than 64.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two() && capacity >= 64,
            "history capacity must be a power of two >= 64"
        );
        GlobalHistory {
            bits: vec![false; capacity],
            head: 0,
            path: 0,
            folded: Vec::new(),
        }
    }

    /// Registers a folded view; returns its handle index.
    pub fn add_folded(&mut self, olength: u32, clength: u32) -> usize {
        assert!(
            (olength as usize) < self.bits.len() / 2,
            "history length {olength} too close to ring capacity {}",
            self.bits.len()
        );
        self.folded.push(FoldedHistory::new(olength, clength));
        self.folded.len() - 1
    }

    /// The folded value for handle `h`.
    #[must_use]
    pub fn folded(&self, h: usize) -> u32 {
        self.folded[h].value()
    }

    /// The `n` most recent history bits packed into a u64 (bit 0 newest).
    #[must_use]
    pub fn recent(&self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        let mut v = 0u64;
        for i in 0..u64::from(n) {
            if self.head > i {
                let idx = ((self.head - 1 - i) % self.bits.len() as u64) as usize;
                v |= u64::from(self.bits[idx]) << i;
            }
        }
        v
    }

    /// Path history (low bits of branch PCs, shifted per branch).
    #[must_use]
    pub fn path(&self) -> u64 {
        self.path
    }

    /// Pushes a branch outcome (and its PC into path history).
    pub fn push(&mut self, pc: u64, taken: bool) {
        let cap = self.bits.len() as u64;
        for f in &mut self.folded {
            let out_idx = self.head.checked_sub(u64::from(f.history_length()));
            let out_bit = match out_idx {
                Some(i) => self.bits[(i % cap) as usize],
                None => false,
            };
            f.update(taken, out_bit);
        }
        self.bits[(self.head % cap) as usize] = taken;
        self.head += 1;
        self.path = (self.path << 1) ^ (pc & 0x3f);
    }

    /// Captures the current speculative position.
    #[must_use]
    pub fn checkpoint(&self) -> HistoryCheckpoint {
        HistoryCheckpoint {
            head: self.head,
            path: self.path,
            folded: self.folded.clone(),
        }
    }

    /// Captures the current speculative position into an existing
    /// checkpoint buffer, reusing its folded-view allocation.
    pub fn checkpoint_into(&self, cp: &mut HistoryCheckpoint) {
        cp.head = self.head;
        cp.path = self.path;
        cp.folded.clone_from(&self.folded);
    }

    /// Restores a checkpoint taken earlier on this history.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint registers a different number of folded
    /// views (checkpoints are only valid for the history they came from).
    pub fn restore(&mut self, cp: &HistoryCheckpoint) {
        assert_eq!(
            cp.folded.len(),
            self.folded.len(),
            "checkpoint from a different history configuration"
        );
        self.head = cp.head;
        self.path = cp.path;
        self.folded.clone_from(&cp.folded);
    }

    /// Total bits ever pushed.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: brute-force fold of the last `olength` bits.
    fn brute_fold(bits: &[bool], olength: u32, clength: u32) -> u32 {
        let mut comp = 0u32;
        let n = bits.len();
        let take = olength.min(n as u32) as usize;
        // Oldest-first insertion mirrors the incremental update order.
        for i in (0..take).rev() {
            let bit = bits[n - 1 - i];
            comp = (comp << 1) | u32::from(bit);
            comp ^= comp >> clength;
            comp &= (1 << clength) - 1;
        }
        comp
    }

    #[test]
    fn folded_matches_brute_force() {
        let mut gh = GlobalHistory::new(1024);
        let h = gh.add_folded(37, 11);
        let mut all = Vec::new();
        let mut x: u64 = 0x1234_5678_9abc_def0;
        for i in 0..500 {
            // xorshift for a deterministic pseudo-random pattern
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let taken = x & 1 == 1;
            gh.push(i, taken);
            all.push(taken);
            assert_eq!(
                gh.folded(h),
                brute_fold(&all, 37, 11),
                "mismatch after {} pushes",
                i + 1
            );
        }
    }

    #[test]
    fn checkpoint_restore_replays_identically() {
        let mut gh = GlobalHistory::new(512);
        let h0 = gh.add_folded(13, 7);
        let h1 = gh.add_folded(64, 9);
        for i in 0..100 {
            gh.push(i, i % 3 == 0);
        }
        let cp = gh.checkpoint();
        let f0 = gh.folded(h0);
        let f1 = gh.folded(h1);
        let recent = gh.recent(32);
        // Wander down a wrong path.
        for i in 0..50 {
            gh.push(1000 + i, i % 2 == 0);
        }
        gh.restore(&cp);
        assert_eq!(gh.folded(h0), f0);
        assert_eq!(gh.folded(h1), f1);
        assert_eq!(gh.recent(32), recent);
        // Re-execution produces the same folded state as a fresh history fed
        // the same total sequence.
        gh.push(7, true);
        let mut fresh = GlobalHistory::new(512);
        let g0 = fresh.add_folded(13, 7);
        for i in 0..100 {
            fresh.push(i, i % 3 == 0);
        }
        fresh.push(7, true);
        assert_eq!(gh.folded(h0), fresh.folded(g0));
    }

    #[test]
    fn recent_orders_newest_first() {
        let mut gh = GlobalHistory::new(64);
        gh.push(0, true);
        gh.push(0, false);
        gh.push(0, true);
        // newest (taken=1) in bit 0, then 0, then 1
        assert_eq!(gh.recent(3), 0b101);
    }

    #[test]
    fn path_history_changes_with_pc() {
        let mut a = GlobalHistory::new(64);
        let mut b = GlobalHistory::new(64);
        a.push(0x10, true);
        b.push(0x24, true);
        assert_ne!(a.path(), b.path());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_capacity_panics() {
        let _ = GlobalHistory::new(100);
    }

    #[test]
    #[should_panic(expected = "too close to ring capacity")]
    fn overlong_history_rejected() {
        let mut gh = GlobalHistory::new(64);
        let _ = gh.add_folded(40, 10);
    }
}
