//! Crate error type.

use std::error::Error;
use std::fmt;

use crate::uop::Pc;

/// Errors produced while building or executing programs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// The program counter left the program (no `halt`/branch covered it).
    PcOutOfRange {
        /// The faulting PC.
        pc: Pc,
        /// Program length.
        len: usize,
    },
    /// A branch or jump targets a PC outside the program.
    BadBranchTarget {
        /// PC of the branch uop.
        pc: Pc,
        /// The invalid target.
        target: Pc,
    },
    /// A label used by the builder was never bound to a position.
    UnboundLabel {
        /// The label's index.
        label: usize,
    },
    /// The machine was stepped after halting.
    Halted,
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::PcOutOfRange { pc, len } => {
                write!(f, "pc {pc:#x} outside program of {len} uops")
            }
            IsaError::BadBranchTarget { pc, target } => {
                write!(f, "branch at {pc:#x} targets invalid pc {target:#x}")
            }
            IsaError::UnboundLabel { label } => write!(f, "label {label} was never bound"),
            IsaError::Halted => write!(f, "machine already halted"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            IsaError::PcOutOfRange { pc: 5, len: 2 },
            IsaError::BadBranchTarget { pc: 1, target: 99 },
            IsaError::UnboundLabel { label: 3 },
            IsaError::Halted,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
