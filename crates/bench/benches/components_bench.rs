//! Component micro-benchmarks: the hot per-cycle primitives of the
//! simulator (predictor lookup, cache access, DRAM tick, chain
//! extraction, full-system cycle rate).
//!
//! Plain self-timing harness (`cargo bench -p br-bench`): each entry runs
//! a fixed iteration count and reports mean wall-clock per iteration.

use std::collections::BTreeSet;
use std::hint::black_box;
use std::time::Instant;

use br_core::{extract_chain, CebRecord, ChainExtractionBuffer};
use br_isa::Machine;
use br_mem::{Cache, CacheConfig, Dram, DramConfig, MemoryConfig, MemorySystem, ReqSource};
use br_ooo::{Core, CoreConfig, NullHooks};
use br_predictor::{ConditionalPredictor, TageScl, TageSclConfig};
use br_workloads::{workload_by_name, WorkloadParams};

fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    black_box(f()); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() * 1e6 / f64::from(iters);
    println!("{name:<36} {iters:>8} iters  {per_iter:>12.3} us/iter");
}

fn bench_predictor() {
    let mut p = TageScl::new(TageSclConfig::kb64());
    let mut pc = 0x1000u64;
    bench("tage_scl_predict_train", 100_000, || {
        pc = pc.wrapping_mul(6364136223846793005).wrapping_add(1);
        let addr = 0x1000 + (pc >> 56);
        let pred = p.predict(addr);
        let taken = pc & 8 == 8;
        p.update_history(addr, taken);
        p.train(addr, taken, &pred);
        pred.taken
    });
}

fn bench_caches() {
    let mut l1 = Cache::new(CacheConfig::l1());
    let mut x = 1u64;
    bench("l1_access", 100_000, || {
        x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        l1.access(x % (1 << 20), false).hit
    });

    let mut dram = Dram::new(DramConfig::default());
    let mut now = 0u64;
    let mut id = 0u64;
    bench("dram_tick_with_traffic", 100_000, || {
        if dram.can_accept() {
            id += 1;
            dram.enqueue(id, (id * 4096) % (1 << 28), false, now);
        }
        now += 1;
        dram.tick(now).len()
    });
}

fn bench_extraction() {
    // Fill a CEB with a realistic retired stream from the leela kernel.
    let w = workload_by_name("leela_17").unwrap();
    let image = w.build(&WorkloadParams {
        scale: 512,
        iterations: 200,
        seed: 1,
    });
    let mut m = Machine::new(image.memory.to_memory());
    let mut ceb = ChainExtractionBuffer::new(512);
    let mut branch_pc = None;
    while !m.halted() {
        let rec = m.step(&image.program, None).unwrap();
        let uop = *image.program.fetch(rec.pc).unwrap();
        let retired = br_ooo::RetiredUop {
            seq: m.steps(),
            uop,
            rec,
            cycle: m.steps(),
        };
        ceb.push(CebRecord::from_retired(&retired));
        if uop.is_cond_branch() && branch_pc.is_none() && m.steps() > 100 {
            branch_pc = Some(uop.pc);
        }
    }
    let target = branch_pc.expect("kernel has branches");
    let limits = br_core::ExtractLimits {
        max_chain_len: 16,
        local_regs: 8,
    };
    bench("chain_extraction_walk", 10_000, || {
        extract_chain(&ceb, target, &BTreeSet::new(), &limits).is_ok()
    });
}

fn bench_full_system() {
    let w = workload_by_name("leela_17").unwrap();
    let image = w.build(&WorkloadParams {
        scale: 512,
        iterations: 1_000_000,
        seed: 1,
    });
    bench("core_cycles_per_sec_leela", 10, || {
        let machine = Machine::new(image.memory.to_memory());
        let mut core = Core::new(
            CoreConfig::default(),
            image.program.clone(),
            machine,
            Box::new(TageScl::new(TageSclConfig::kb64())),
        );
        core.set_max_retired(5_000);
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut hooks = NullHooks;
        for cycle in 0..100_000 {
            let resps = mem.tick(cycle);
            if core.tick(&resps, &mut mem, &mut hooks).done {
                break;
            }
        }
        core.stats().retired_uops
    });

    let _ = ReqSource::Core; // referenced to keep the import meaningful
}

fn main() {
    bench_predictor();
    bench_caches();
    bench_extraction();
    bench_full_system();
}
