//! # br-isa — the micro-op ISA substrate
//!
//! The Branch Runahead paper ([Pruett & Patt, MICRO 2021]) operates on the
//! *micro-op dataflow* of a program: dependence chains are backward
//! register/memory slices of branch instructions. The original evaluation
//! used x86 micro-ops supplied by a PIN-based frontend; this crate provides
//! an equivalent substrate built from scratch:
//!
//! * a small RISC-style micro-op ISA ([`Uop`], [`AluOp`], [`Cond`]) with
//!   16 general-purpose registers and an architectural flags register that
//!   participates in dataflow exactly like x86 condition codes,
//! * a program representation ([`Program`]) and an assembler-style builder
//!   ([`ProgramBuilder`]) with labels,
//! * a byte-addressable, journaled memory ([`JournaledMemory`]) supporting
//!   O(1) checkpoint and rollback, and
//! * a functional emulator ([`Machine`]) that can be *driven down a wrong
//!   path* (a fetch unit forces the direction of conditional branches) and
//!   later restored from a checkpoint — the property the simulator needs to
//!   model genuine wrong-path execution, which Branch Runahead's merge-point
//!   predictor depends on.
//!
//! ## Example
//!
//! ```
//! use br_isa::{ProgramBuilder, Machine, MemoryImage, Operand, Cond, reg};
//!
//! # fn main() -> Result<(), br_isa::IsaError> {
//! let mut b = ProgramBuilder::new();
//! let done = b.new_label();
//! b.mov_imm(reg::R0, 5);
//! let top = b.here();
//! b.addi(reg::R1, reg::R1, 3);
//! b.subi(reg::R0, reg::R0, 1);
//! b.cmpi(reg::R0, 0);
//! b.br(Cond::Ne, top);
//! b.bind(done);
//! b.halt();
//! let prog = b.build()?;
//!
//! let mut m = Machine::new(MemoryImage::new().into_memory());
//! while !m.halted() {
//!     m.step(&prog, None)?;
//! }
//! assert_eq!(m.reg(reg::R1), 15);
//! # Ok(())
//! # }
//! ```
//!
//! [Pruett & Patt, MICRO 2021]: https://doi.org/10.1145/3466752.3480053

#![warn(missing_docs)]

mod asm;
mod error;
mod machine;
mod memory;
mod program;
pub mod reg;
mod uop;

pub use asm::{Label, ProgramBuilder};
pub use error::IsaError;
pub use machine::{BranchExec, CpuState, ExecRecord, Force, Machine, MachineCheckpoint, MemExec};
pub use memory::{JournalMark, JournaledMemory, MemoryImage};
pub use program::Program;
pub use reg::{ArchReg, RegSet, FLAGS, NUM_ARCH_REGS};
pub use uop::{AluOp, Cond, Flags, MemOperand, Operand, Pc, Uop, UopKind, Width};
