//! Stream prefetcher: 64 streams, fixed distance, prefetch into the L2
//! (Table 1: "Stream: 64 Streams, Distance 16. Prefetch into LLC").

use crate::LINE_BYTES;

/// Configuration for [`StreamPrefetcher`].
#[derive(Clone, Copy, Debug)]
pub struct StreamPrefetcherConfig {
    /// Maximum concurrently tracked streams.
    pub streams: usize,
    /// Prefetch distance in lines.
    pub distance: u64,
    /// Accesses within this many lines of a stream head extend the stream.
    pub window: u64,
    /// Misses needed to confirm a stream before prefetching starts.
    pub train_threshold: u32,
}

impl Default for StreamPrefetcherConfig {
    fn default() -> Self {
        StreamPrefetcherConfig {
            streams: 64,
            distance: 16,
            window: 4,
            train_threshold: 2,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Stream {
    last_line: u64,
    next_prefetch: u64,
    direction: i64,
    confidence: u32,
    lru: u64,
}

/// A classic unit-stride stream prefetcher trained on L1 misses.
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    cfg: StreamPrefetcherConfig,
    streams: Vec<Stream>,
    tick: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// Builds a prefetcher from `cfg`.
    #[must_use]
    pub fn new(cfg: StreamPrefetcherConfig) -> Self {
        StreamPrefetcher {
            cfg,
            streams: Vec::new(),
            tick: 0,
            issued: 0,
        }
    }

    /// Trains on a demand miss at byte address `addr`; returns the byte
    /// addresses of lines to prefetch (possibly empty).
    pub fn train(&mut self, addr: u64) -> Vec<u64> {
        self.tick += 1;
        let line = addr / LINE_BYTES;
        let window = self.cfg.window;
        // Extend an existing stream?
        if let Some(s) = self.streams.iter_mut().find(|s| {
            let d = line as i64 - s.last_line as i64;
            d != 0 && d.signum() == s.direction && d.unsigned_abs() <= window
        }) {
            s.last_line = line;
            s.confidence += 1;
            s.lru = self.tick;
            if s.confidence >= self.cfg.train_threshold {
                let mut out = Vec::new();
                let target = line as i64 + s.direction * self.cfg.distance as i64;
                // Jump-start a newly confirmed stream so the prefetch head
                // is ahead of the demand stream, not trailing it.
                let behind = (s.next_prefetch as i64 - line as i64).signum() != s.direction;
                if behind {
                    s.next_prefetch =
                        (line as i64 + s.direction * (self.cfg.distance as i64 - 2)) as u64;
                }
                // Issue up to 2 prefetches per training event, walking the
                // prefetch head toward (and not past) the target.
                while (target - s.next_prefetch as i64) * s.direction > 0 && out.len() < 2 {
                    s.next_prefetch = (s.next_prefetch as i64 + s.direction) as u64;
                    out.push(s.next_prefetch * LINE_BYTES);
                    self.issued += 1;
                }
                return out;
            }
            return Vec::new();
        }
        // Allocate a new candidate stream (direction guessed on the second
        // access; start with +1 and fix on the first extension attempt).
        for dir in [1i64, -1] {
            // Try to pair with a one-behind stream of unknown direction.
            if let Some(s) = self
                .streams
                .iter_mut()
                .find(|s| s.confidence == 0 && (line as i64 - s.last_line as i64) == dir)
            {
                s.direction = dir;
                s.last_line = line;
                s.confidence = 1;
                s.next_prefetch = line;
                s.lru = self.tick;
                return Vec::new();
            }
        }
        let candidate = Stream {
            last_line: line,
            next_prefetch: line,
            direction: 1,
            confidence: 0,
            lru: self.tick,
        };
        if self.streams.len() < self.cfg.streams {
            self.streams.push(candidate);
        } else if let Some(victim) = self.streams.iter_mut().min_by_key(|s| s.lru) {
            *victim = candidate;
        }
        Vec::new()
    }

    /// Total prefetches issued.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_misses_trigger_prefetches() {
        let mut p = StreamPrefetcher::new(StreamPrefetcherConfig::default());
        let mut count = 0;
        for i in 0..20u64 {
            let demand = 0x10000 + i * LINE_BYTES;
            for pf in p.train(demand) {
                // Every prefetch is ahead of the demand stream at issue
                // time, by at most the configured distance.
                assert!(pf > demand, "prefetch {pf:#x} behind demand {demand:#x}");
                assert!(pf <= demand + 16 * LINE_BYTES);
                count += 1;
            }
        }
        assert!(count > 0, "stream never confirmed");
        assert_eq!(p.issued(), count);
    }

    #[test]
    fn descending_stream_detected() {
        let mut p = StreamPrefetcher::new(StreamPrefetcherConfig::default());
        let mut count = 0;
        for i in (0..20u64).rev() {
            let demand = 0x40000 + i * LINE_BYTES;
            for pf in p.train(demand) {
                assert!(pf < demand, "prefetch {pf:#x} not below demand {demand:#x}");
                count += 1;
            }
        }
        assert!(count > 0);
    }

    #[test]
    fn random_misses_do_not_prefetch() {
        let mut p = StreamPrefetcher::new(StreamPrefetcherConfig::default());
        let mut x: u64 = 42;
        let mut total = 0;
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            total += p.train((x % (1 << 30)) & !(LINE_BYTES - 1)).len();
        }
        assert!(total <= 4, "random pattern should barely prefetch: {total}");
    }

    #[test]
    fn stream_table_capacity_bounded() {
        let mut p = StreamPrefetcher::new(StreamPrefetcherConfig {
            streams: 4,
            ..StreamPrefetcherConfig::default()
        });
        for i in 0..100u64 {
            let _ = p.train(i * 0x100000);
        }
        assert!(p.streams.len() <= 4);
    }
}
