//! Sharded job execution and region aggregation.
//!
//! [`run_jobs`] executes a batch of [`SimJob`]s across worker threads.
//! Scheduling is self-stealing: workers pull the next un-started job index
//! from a shared atomic counter, so a worker that draws short jobs simply
//! takes more of them — no static partitioning, no idle tails. Results are
//! returned **in job order** regardless of completion order, and each job
//! is a deterministic simulation, so the output is bit-identical for any
//! thread count (including the in-place sequential path used for
//! `threads == 1`).
//!
//! [`aggregate`] is the pure SimPoint weighted-average combiner shared by
//! the sequential and parallel paths; keeping it out of the execution code
//! is what guarantees the two paths cannot diverge.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use br_workloads::{WorkloadImage, WorkloadParams};

use crate::job::{SimError, SimJob};
use crate::system::RunResult;

/// Caches built workload images by `(workload, params)` so the many jobs
/// of an experiment (every configuration × every region) share one build
/// per distinct image. Generators are deterministic, so if two workers
/// race to build the same key the first insert wins and the duplicate is
/// dropped — wasted work, never wrong results.
#[derive(Debug, Default)]
struct ImageCache {
    map: Mutex<HashMap<(String, WorkloadParams), Arc<WorkloadImage>>>,
}

impl ImageCache {
    fn get_or_build(&self, job: &SimJob) -> Result<Arc<WorkloadImage>, SimError> {
        // Recover from poisoning instead of panicking: the cache is a map
        // of immutable `Arc`s, valid after any interrupted insert, and a
        // worker that panicked mid-job must not cascade into every other
        // job that happens to share its images.
        let key = job.image_key();
        if let Some(img) = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            return Ok(Arc::clone(img));
        }
        // Build outside the lock: image generation dominates, and holding
        // the lock across it would serialize every worker behind it.
        let built = job.build_image()?;
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(Arc::clone(map.entry(key).or_insert(built)))
    }
}

/// Renders a panic payload: the `&str`/`String` most panics carry, or a
/// placeholder for exotic payloads.
fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolves a thread-count knob: `0` means one worker per available CPU.
#[must_use]
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// Runs one job against the shared cache, converting panics and
/// machine-check violations into typed errors naming the job.
fn run_one_caught(job: &SimJob, cache: &ImageCache) -> Result<RunResult, SimError> {
    catch_unwind(AssertUnwindSafe(|| {
        let img = cache.get_or_build(job)?;
        job.try_execute(&img)
    }))
    .unwrap_or_else(|payload| {
        Err(SimError::JobPanicked {
            job: job.label(),
            message: describe_panic(payload.as_ref()),
        })
    })
}

/// Executes every job and returns a per-job outcome **in job order**: one
/// failing job (panic, machine-check violation, bad workload) never stops
/// the rest of the batch. Both the sequential (`threads <= 1`) and
/// sharded paths catch panics, so a batch with several concurrently
/// panicking jobs reports each failure under its own label while the
/// surviving jobs produce results bit-identical to a clean batch.
#[must_use]
pub fn run_jobs_partial(jobs: &[SimJob], threads: usize) -> Vec<Result<RunResult, SimError>> {
    let threads = resolve_threads(threads).min(jobs.len().max(1));
    let cache = ImageCache::default();
    if threads <= 1 {
        return jobs.iter().map(|job| run_one_caught(job, &cache)).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<RunResult, SimError>)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let cache = &cache;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                // Catch panics so one poisoned job surfaces as a
                // `SimError::JobPanicked` naming the job, instead of an
                // opaque scoped-thread abort that hides which simulation
                // died — and instead of taking the batch's other results
                // down with it.
                if tx.send((i, run_one_caught(&jobs[i], cache))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<Result<RunResult, SimError>>> = vec![None; jobs.len()];
        for (i, result) in rx {
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job index reported exactly once"))
            .collect()
    })
}

/// Executes every job and returns the results in job order, failing the
/// whole batch on the first per-job error. Invalid workload names fail
/// *before* any simulation starts, so those errors are cheap and never
/// partial. Callers that want the other jobs' results despite a failure
/// use [`run_jobs_partial`] instead.
pub fn run_jobs(jobs: &[SimJob], threads: usize) -> Result<Vec<RunResult>, SimError> {
    for job in jobs {
        job.resolve()?;
    }
    run_jobs_partial(jobs, threads).into_iter().collect()
}

/// Combines weighted region runs into one result (the paper's SimPoint
/// methodology). Scalar counters become the weighted average; structural
/// results (chains, branch sites, category breakdowns) are taken from the
/// heaviest region's run. A single run passes through untouched.
///
/// # Panics
///
/// Panics if `runs` is empty — an experiment with zero regions is a
/// driver bug, not a recoverable condition.
#[must_use]
pub fn aggregate(mut runs: Vec<(f64, RunResult)>) -> RunResult {
    assert!(!runs.is_empty(), "need at least one region run");
    if runs.len() == 1 {
        return runs.pop().expect("one run").1;
    }
    let total_w: f64 = runs.iter().map(|(w, _)| *w).sum();
    let heaviest = runs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
        .map(|(i, _)| i)
        .expect("nonempty");
    let avg = |f: &dyn Fn(&RunResult) -> u64| -> u64 {
        (runs.iter().map(|(w, r)| *w * f(r) as f64).sum::<f64>() / total_w) as u64
    };
    let averaged = [
        avg(&|r| r.core.cycles),
        avg(&|r| r.core.retired_uops),
        avg(&|r| r.core.retired_branches),
        avg(&|r| r.core.mispredicts),
        avg(&|r| r.core.issued_uops),
        avg(&|r| r.core.issued_loads),
        avg(&|r| r.core.fetched_uops),
        avg(&|r| r.core.fetched_branches),
    ];
    // Move the heaviest run out instead of cloning it: RunResult carries
    // per-site maps and chain structures that are expensive to duplicate.
    let mut out = runs.swap_remove(heaviest).1;
    [
        out.core.cycles,
        out.core.retired_uops,
        out.core.retired_branches,
        out.core.mispredicts,
        out.core.issued_uops,
        out.core.issued_loads,
        out.core.fetched_uops,
        out.core.fetched_branches,
    ] = averaged;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn jobs(n: u64) -> Vec<SimJob> {
        (0..n)
            .map(|k| SimJob {
                config: SimConfig::baseline(),
                workload: "leela_17".into(),
                params: WorkloadParams {
                    scale: 512,
                    iterations: 1_000_000,
                    seed: 11,
                },
                region_seed: k,
                weight: 1.0 / (k + 1) as f64,
                max_retired: 4_000,
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let batch = jobs(4);
        let seq = run_jobs(&batch, 1).unwrap();
        let par = run_jobs(&batch, 4).unwrap();
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.core.cycles, p.core.cycles);
            assert_eq!(s.core.retired_uops, p.core.retired_uops);
            assert_eq!(s.core.mispredicts, p.core.mispredicts);
            assert_eq!(s.config_name, p.config_name);
        }
    }

    #[test]
    fn bad_name_fails_whole_batch() {
        let mut batch = jobs(2);
        batch[1].workload = "bogus".into();
        assert!(matches!(
            run_jobs(&batch, 2),
            Err(SimError::UnknownWorkload { .. })
        ));
    }

    #[test]
    fn worker_panic_names_the_job() {
        let mut batch = jobs(2);
        let mut cfg = SimConfig::mini_br();
        cfg.runahead.as_mut().unwrap().hbt_entries = 0;
        batch[1].config = cfg;
        let err = run_jobs(&batch, 2).unwrap_err();
        match err {
            SimError::JobPanicked { job, message } => {
                assert!(job.contains("leela_17"), "label names the workload: {job}");
                assert!(job.contains("r1"), "label names the region: {job}");
                assert!(
                    message.contains("hbt_entries"),
                    "payload preserved: {message}"
                );
            }
            other => panic!("expected JobPanicked, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_single_is_identity() {
        let r = jobs(1)[0].run().unwrap();
        let agg = aggregate(vec![(0.7, r.clone())]);
        assert_eq!(agg.core.cycles, r.core.cycles);
        assert_eq!(agg.core.mispredicts, r.core.mispredicts);
    }

    #[test]
    fn aggregate_weighted_average_is_bounded() {
        let batch = jobs(2);
        let results = run_jobs(&batch, 1).unwrap();
        let lo = results.iter().map(|r| r.core.cycles).min().unwrap();
        let hi = results.iter().map(|r| r.core.cycles).max().unwrap();
        let weighted: Vec<(f64, RunResult)> = batch.iter().map(|j| j.weight).zip(results).collect();
        let agg = aggregate(weighted);
        assert!(agg.core.cycles >= lo && agg.core.cycles <= hi);
    }

    #[test]
    fn resolve_threads_auto_is_positive() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
