//! Component micro-benchmarks: the hot per-cycle primitives of the
//! simulator (predictor lookup, cache access, DRAM tick, chain
//! extraction, full-system cycle rate).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;

use br_core::{extract_chain, CebRecord, ChainExtractionBuffer};
use br_isa::Machine;
use br_mem::{Cache, CacheConfig, Dram, DramConfig, MemoryConfig, MemorySystem, ReqSource};
use br_ooo::{Core, CoreConfig, NullHooks};
use br_predictor::{ConditionalPredictor, TageScl, TageSclConfig};
use br_workloads::{workload_by_name, WorkloadParams};

fn bench_predictor(c: &mut Criterion) {
    let mut p = TageScl::new(TageSclConfig::kb64());
    let mut pc = 0x1000u64;
    c.bench_function("tage_scl_predict_train", |b| {
        b.iter(|| {
            pc = pc.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = 0x1000 + (pc >> 56);
            let pred = p.predict(addr);
            let taken = pc & 8 == 8;
            p.update_history(addr, taken);
            p.train(addr, taken, &pred);
            black_box(pred.taken)
        })
    });
}

fn bench_caches(c: &mut Criterion) {
    let mut l1 = Cache::new(CacheConfig::l1());
    let mut x = 1u64;
    c.bench_function("l1_access", |b| {
        b.iter(|| {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            black_box(l1.access(x % (1 << 20), false).hit)
        })
    });

    let mut dram = Dram::new(DramConfig::default());
    let mut now = 0u64;
    let mut id = 0u64;
    c.bench_function("dram_tick_with_traffic", |b| {
        b.iter(|| {
            if dram.can_accept() {
                id += 1;
                dram.enqueue(id, (id * 4096) % (1 << 28), false, now);
            }
            now += 1;
            black_box(dram.tick(now).len())
        })
    });
}

fn bench_extraction(c: &mut Criterion) {
    // Fill a CEB with a realistic retired stream from the leela kernel.
    let w = workload_by_name("leela_17").unwrap();
    let image = w.build(&WorkloadParams {
        scale: 512,
        iterations: 200,
        seed: 1,
    });
    let mut m = Machine::new(image.memory.into_memory());
    let mut ceb = ChainExtractionBuffer::new(512);
    let mut branch_pc = None;
    while !m.halted() {
        let rec = m.step(&image.program, None).unwrap();
        let uop = *image.program.fetch(rec.pc).unwrap();
        let retired = br_ooo::RetiredUop {
            seq: m.steps(),
            uop,
            rec,
            cycle: m.steps(),
        };
        ceb.push(CebRecord::from_retired(&retired));
        if uop.is_cond_branch() && branch_pc.is_none() && m.steps() > 100 {
            branch_pc = Some(uop.pc);
        }
    }
    let target = branch_pc.expect("kernel has branches");
    let limits = br_core::ExtractLimits {
        max_chain_len: 16,
        local_regs: 8,
    };
    c.bench_function("chain_extraction_walk", |b| {
        b.iter(|| black_box(extract_chain(&ceb, target, &BTreeSet::new(), &limits).is_ok()))
    });
}

fn bench_full_system(c: &mut Criterion) {
    c.bench_function("core_cycles_per_sec_leela", |b| {
        b.iter_with_setup(
            || {
                let w = workload_by_name("leela_17").unwrap();
                let image = w.build(&WorkloadParams {
                    scale: 512,
                    iterations: 1_000_000,
                    seed: 1,
                });
                let machine = Machine::new(image.memory.into_memory());
                let mut core = Core::new(
                    CoreConfig::default(),
                    image.program,
                    machine,
                    Box::new(TageScl::new(TageSclConfig::kb64())),
                );
                core.set_max_retired(5_000);
                (core, MemorySystem::new(MemoryConfig::default()))
            },
            |(mut core, mut mem)| {
                let mut hooks = NullHooks;
                for cycle in 0..100_000 {
                    let resps = mem.tick(cycle);
                    if core.tick(&resps, &mut mem, &mut hooks).done {
                        break;
                    }
                }
                black_box(core.stats().retired_uops)
            },
        )
    });

    let _ = ReqSource::Core; // referenced to keep the import meaningful
}

criterion_group!(
    benches,
    bench_predictor,
    bench_caches,
    bench_extraction,
    bench_full_system
);
criterion_main!(benches);
