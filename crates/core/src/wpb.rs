//! The Wrong Path Buffer: dynamic merge-point prediction (§4.4).
//!
//! On every flush, the wrong-path instructions still sitting in the ROB
//! are copied (by a modelled multi-cycle ROB walk) into a small
//! set-associative buffer, together with the *dest set* accumulated up to
//! each instruction. After recovery, retired correct-path instructions
//! probe the buffer; the first hit is the predicted merge point. The
//! union of the hitting wrong-path dest set and the accumulated
//! correct-path dest set — the *both-path dest set* — seeds affector
//! detection ([`crate::PoisonDetector`]).

use br_isa::{Pc, RegSet};
use br_ooo::{RetiredUop, WrongPathUop};

/// Bloom-filter word tracking memory destinations (the paper uses a bloom
/// filter for store addresses on the wrong path).
pub type MemBloom = u64;

/// Hashes a store address into the bloom filter.
#[must_use]
pub fn bloom_insert(bloom: MemBloom, addr: u64) -> MemBloom {
    let a = addr >> 3;
    let b1 = (a ^ (a >> 7)) & 63;
    let b2 = (a.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) & 63;
    bloom | (1 << b1) | (1 << b2)
}

/// Tests a load address against the bloom filter.
#[must_use]
pub fn bloom_probe(bloom: MemBloom, addr: u64) -> bool {
    let a = addr >> 3;
    let b1 = (a ^ (a >> 7)) & 63;
    let b2 = (a.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) & 63;
    bloom & (1 << b1) != 0 && bloom & (1 << b2) != 0
}

#[derive(Clone, Copy, Debug, Default)]
struct WpbWay {
    valid: bool,
    pc: Pc,
    dest: RegSet,
    bloom: MemBloom,
    /// Position in the wrong-path walk (uops past the branch).
    pos: usize,
    lru: u64,
}

/// A detected merge point and its side products.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeEvent {
    /// The merge-predicted (mispredicted) branch.
    pub branch_pc: Pc,
    /// The predicted merge point.
    pub merge_pc: Pc,
    /// Registers written on either side of the branch.
    pub both_path_dest: RegSet,
    /// Memory bloom of stores on either side.
    pub both_path_bloom: MemBloom,
    /// Conditional branches observed between the branch and the merge
    /// point (on either path): candidates guarded by `branch_pc`.
    pub guarded: Vec<Pc>,
    /// Correct-path distance to the merge point in uops.
    pub distance: usize,
}

/// The Wrong Path Buffer and its correct-path comparison state machine.
#[derive(Clone, Debug)]
pub struct WrongPathBuffer {
    sets: usize,
    ways: usize,
    table: Vec<WpbWay>,
    tick: u64,
    max_distance: usize,

    // Active comparison state.
    active: bool,
    branch_pc: Pc,
    /// Sequence number of the mispredicted branch: only younger retired
    /// uops are on the resumed correct path.
    branch_seq: u64,
    flush_cycle: u64,
    walk_rate: usize,
    correct_dest: RegSet,
    correct_bloom: MemBloom,
    /// Wrong-path conditional branches and their walk positions.
    wrong_branches: Vec<(Pc, usize)>,
    correct_branches: Vec<Pc>,
    distance: usize,

    // Statistics.
    arms: u64,
    merges_found: u64,
    searches_failed: u64,
}

impl WrongPathBuffer {
    /// Creates a WPB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (sets must be a power of two).
    #[must_use]
    pub fn new(entries: usize, ways: usize, max_distance: usize) -> Self {
        assert!(ways > 0 && entries.is_multiple_of(ways), "bad WPB geometry");
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "WPB sets must be a power of two");
        WrongPathBuffer {
            sets,
            ways,
            table: vec![WpbWay::default(); entries],
            tick: 0,
            max_distance,
            active: false,
            branch_pc: 0,
            branch_seq: 0,
            flush_cycle: 0,
            walk_rate: 1,
            correct_dest: RegSet::empty(),
            correct_bloom: 0,
            wrong_branches: Vec::new(),
            correct_branches: Vec::new(),
            distance: 0,
            arms: 0,
            merges_found: 0,
            searches_failed: 0,
        }
    }

    fn set_of(&self, pc: Pc) -> usize {
        (pc as usize) & (self.sets - 1)
    }

    fn insert(&mut self, pc: Pc, dest: RegSet, bloom: MemBloom, pos: usize) {
        self.tick += 1;
        let s = self.set_of(pc);
        let ways = &mut self.table[s * self.ways..(s + 1) * self.ways];
        // Prefer an existing entry for this pc (keep the OLDEST dest set:
        // the first occurrence is closest to the branch).
        if ways.iter().any(|w| w.valid && w.pc == pc) {
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("ways nonempty");
        *victim = WpbWay {
            valid: true,
            pc,
            dest,
            bloom,
            pos,
            lru: self.tick,
        };
    }

    fn probe(&self, pc: Pc) -> Option<(RegSet, MemBloom, usize)> {
        let s = self.set_of(pc);
        self.table[s * self.ways..(s + 1) * self.ways]
            .iter()
            .find(|w| w.valid && w.pc == pc)
            .map(|w| (w.dest, w.bloom, w.pos))
    }

    fn invalidate(&mut self) {
        for w in &mut self.table {
            w.valid = false;
        }
        self.active = false;
    }

    /// Arms the buffer at a flush. `wrong_path` is the squashed ROB
    /// content in fetch order; `retire_width` models the ROB-walk copy
    /// rate (footnote 14: copy at retire bandwidth).
    pub fn arm(
        &mut self,
        branch_pc: Pc,
        branch_seq: u64,
        wrong_path: &[WrongPathUop],
        cycle: u64,
        retire_width: usize,
    ) {
        self.invalidate();
        self.arms += 1;
        self.active = true;
        self.branch_pc = branch_pc;
        self.branch_seq = branch_seq;
        self.correct_dest = RegSet::empty();
        self.correct_bloom = 0;
        self.wrong_branches.clear();
        self.correct_branches.clear();
        self.distance = 0;

        let mut dest = RegSet::empty();
        let mut bloom: MemBloom = 0;
        // `copied` counts *accepted* uops (the walk can break early), so
        // enumerate() would not be equivalent.
        let mut copied = 0usize;
        #[allow(clippy::explicit_counter_loop)]
        for u in wrong_path {
            if u.pc == branch_pc {
                break; // second dynamic instance: we are in a loop
            }
            if copied >= self.max_distance {
                break;
            }
            dest = dest.union(u.dsts);
            if let Some(a) = u.store_addr {
                bloom = bloom_insert(bloom, a);
            }
            if u.branch.is_some() {
                self.wrong_branches.push((u.pc, copied));
            }
            self.insert(u.pc, dest, bloom, copied);
            copied += 1;
        }
        self.flush_cycle = cycle;
        self.walk_rate = retire_width.max(1);
    }

    /// Feeds one retired correct-path uop; returns the merge event when
    /// the merge point is found.
    pub fn on_correct_retire(&mut self, u: &RetiredUop) -> Option<MergeEvent> {
        if !self.active {
            return None;
        }
        if u.seq <= self.branch_seq {
            // Pre-branch uops still draining from the ROB are not part of
            // the resumed correct path.
            return None;
        }
        if u.uop.pc == self.branch_pc {
            // Second correct-path instance before any merge: give up.
            self.searches_failed += 1;
            self.invalidate();
            return None;
        }
        if self.distance >= self.max_distance {
            self.searches_failed += 1;
            self.invalidate();
            return None;
        }
        self.distance += 1;

        // Probe before accumulating this uop's own dests: the merge point
        // instruction itself executes on both paths. The ROB walk copies
        // entries at retire bandwidth starting at the flush, so an entry
        // is only visible once the walk has reached its position — a race
        // the walk always wins in steady state because the correct path
        // must first refill the pipeline (footnote 13).
        let walked = (u.cycle.saturating_sub(self.flush_cycle) as usize) * self.walk_rate;
        let hit = self
            .probe(u.uop.pc)
            .filter(|(_, _, pos)| *pos < walked.max(1));

        if let Some((wrong_dest, wrong_bloom, merge_pos)) = hit {
            // Only branches *between* the mispredicted branch and the
            // merge point (on either path) are guarded by it.
            let ev = MergeEvent {
                branch_pc: self.branch_pc,
                merge_pc: u.uop.pc,
                both_path_dest: wrong_dest.union(self.correct_dest),
                both_path_bloom: wrong_bloom | self.correct_bloom,
                guarded: self
                    .wrong_branches
                    .iter()
                    .filter(|(_, pos)| *pos < merge_pos)
                    .map(|(pc, _)| *pc)
                    .chain(self.correct_branches.iter().copied())
                    .collect(),
                distance: self.distance,
            };
            self.merges_found += 1;
            self.invalidate();
            return Some(ev);
        }

        self.correct_dest = self.correct_dest.union(u.uop.dsts());
        if let Some(m) = u.rec.mem.filter(|m| m.is_store) {
            self.correct_bloom = bloom_insert(self.correct_bloom, m.addr);
        }
        if u.uop.is_cond_branch() {
            self.correct_branches.push(u.uop.pc);
        }
        None
    }

    /// Whether a comparison is in progress.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// (arms, merges found, searches failed).
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.arms, self.merges_found, self.searches_failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_isa::{reg, ExecRecord, Uop, UopKind};

    fn wp(pc: Pc, dst: Option<br_isa::ArchReg>) -> WrongPathUop {
        WrongPathUop {
            pc,
            dsts: dst.map_or(RegSet::empty(), RegSet::single),
            store_addr: None,
            branch: None,
        }
    }

    fn retired(pc: Pc, dst: Option<br_isa::ArchReg>, cycle: u64) -> RetiredUop {
        let uop = Uop {
            pc,
            kind: match dst {
                Some(d) => UopKind::Mov {
                    dst: d,
                    src: br_isa::Operand::Imm(0),
                },
                None => UopKind::Nop,
            },
        };
        RetiredUop {
            seq: 1,
            uop,
            rec: ExecRecord {
                pc,
                next_pc: pc + 1,
                branch: None,
                mem: None,
                dst: None,
                halt: false,
            },
            cycle,
        }
    }

    #[test]
    fn finds_hammock_merge_point() {
        // if (b) { pc 10,11 } else { pc 20,21 } ; merge at 30.
        let mut wpb = WrongPathBuffer::new(128, 4, 100);
        wpb.arm(
            5,
            0,
            &[
                wp(10, Some(reg::R1)),
                wp(11, Some(reg::R2)),
                wp(30, Some(reg::R5)),
            ],
            0,
            4,
        );
        // Correct path: 20, 21, then 30 = merge.
        assert!(wpb
            .on_correct_retire(&retired(20, Some(reg::R3), 10))
            .is_none());
        assert!(wpb
            .on_correct_retire(&retired(21, Some(reg::R4), 10))
            .is_none());
        let ev = wpb
            .on_correct_retire(&retired(30, Some(reg::R5), 10))
            .expect("merge at 30");
        assert_eq!(ev.merge_pc, 30);
        assert_eq!(ev.branch_pc, 5);
        // Both-path dest set: wrong {r1,r2,r5-prefix? no: dest set at 30's
        // insertion includes r1,r2,r5} ∪ correct {r3,r4}.
        for r in [reg::R1, reg::R2, reg::R3, reg::R4] {
            assert!(ev.both_path_dest.contains(r), "{r} in both-path dest");
        }
        assert!(!wpb.is_active(), "one-shot per arm");
    }

    #[test]
    fn loop_branch_terminates_walk_at_second_instance() {
        let mut wpb = WrongPathBuffer::new(128, 4, 100);
        // Wrong path re-encounters the branch (pc 5): stop copying there.
        wpb.arm(
            5,
            0,
            &[wp(6, Some(reg::R1)), wp(5, None), wp(7, Some(reg::R2))],
            0,
            4,
        );
        // pc 7 must not be in the buffer.
        assert!(wpb.probe(7).is_none());
        assert!(wpb.probe(6).is_some());
    }

    #[test]
    fn gives_up_at_second_correct_instance() {
        let mut wpb = WrongPathBuffer::new(128, 4, 100);
        wpb.arm(5, 0, &[wp(10, None)], 0, 4);
        assert!(wpb.on_correct_retire(&retired(20, None, 10)).is_none());
        assert!(wpb.on_correct_retire(&retired(5, None, 10)).is_none());
        assert!(!wpb.is_active());
        assert_eq!(wpb.stats().2, 1, "failure counted");
    }

    #[test]
    fn distance_bound_enforced() {
        let mut wpb = WrongPathBuffer::new(128, 4, 3);
        wpb.arm(5, 0, &[wp(99, None)], 0, 4);
        for pc in 10..13 {
            assert!(wpb.on_correct_retire(&retired(pc, None, 10)).is_none());
        }
        assert!(wpb.on_correct_retire(&retired(13, None, 10)).is_none());
        assert!(!wpb.is_active());
    }

    #[test]
    fn rob_walk_races_the_retire_stream() {
        let mut wpb = WrongPathBuffer::new(128, 4, 100);
        // 12 wrong-path uops; the walk copies 4 per cycle from the flush.
        let wrong: Vec<WrongPathUop> = (10..22).map(|p| wp(p, None)).collect();
        wpb.arm(5, 0, &wrong, 0, 4);
        // At cycle 1 only positions 0..4 are visible: pc 18 (pos 8) cannot
        // hit yet...
        assert!(wpb.on_correct_retire(&retired(18, None, 1)).is_none());
        // ...but pc 10 (pos 0) can, even this early.
        assert!(wpb.on_correct_retire(&retired(10, None, 1)).is_some());

        // Re-arm: by cycle 3 the walk has covered position 8.
        let wrong: Vec<WrongPathUop> = (10..22).map(|p| wp(p, None)).collect();
        wpb.arm(5, 0, &wrong, 0, 4);
        assert!(wpb.on_correct_retire(&retired(18, None, 3)).is_some());
    }

    #[test]
    fn bloom_filter_behaviour() {
        let mut bloom = 0;
        bloom = bloom_insert(bloom, 0x1000);
        bloom = bloom_insert(bloom, 0x2000);
        assert!(bloom_probe(bloom, 0x1000));
        assert!(bloom_probe(bloom, 0x2000));
        // Most other addresses miss.
        let misses = (0..100u64)
            .filter(|i| !bloom_probe(bloom, 0x9_0000 + i * 64))
            .count();
        assert!(misses > 80, "bloom too dense: {misses}/100 misses");
    }

    #[test]
    fn guarded_branches_collected_from_both_paths() {
        let mut wpb = WrongPathBuffer::new(128, 4, 100);
        let mut wrong = vec![wp(10, None)];
        wrong[0].branch = Some(true); // a branch on the wrong path
        wrong.push(wp(30, Some(reg::R5)));
        wpb.arm(5, 0, &wrong, 0, 4);
        // A conditional branch on the correct path.
        let mut br = retired(22, None, 10);
        br.uop = Uop {
            pc: 22,
            kind: UopKind::Branch {
                cond: br_isa::Cond::Eq,
                target: 0,
            },
        };
        br.rec.branch = Some(br_isa::BranchExec {
            actual_taken: false,
            followed_taken: false,
            target: 0,
            actual_next: 23,
        });
        assert!(wpb.on_correct_retire(&br).is_none());
        let ev = wpb
            .on_correct_retire(&retired(30, None, 10))
            .expect("merge");
        assert!(ev.guarded.contains(&10));
        assert!(ev.guarded.contains(&22));
    }
}
