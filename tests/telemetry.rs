//! Telemetry acceptance: the collected record must *reconcile* with the
//! end-of-run statistics it shadows (same underlying events, two views),
//! the interval samples must advance monotonically, and a run with
//! telemetry disabled must be byte-identical to one that never heard of
//! the subsystem.

use branch_runahead::sim::{SimConfig, System, TelemetryConfig};
use branch_runahead::telemetry::EventKind;
use branch_runahead::workloads::{workload_by_name, WorkloadParams};

fn image() -> branch_runahead::workloads::WorkloadImage {
    workload_by_name("leela_17")
        .unwrap()
        .build(&WorkloadParams {
            scale: 512,
            iterations: 1_000_000,
            seed: 17,
        })
}

fn run_with_telemetry() -> branch_runahead::sim::RunResult {
    let mut cfg = SimConfig::mini_br();
    cfg.max_retired = 60_000;
    cfg.telemetry = TelemetryConfig {
        enabled: true,
        sample_interval: 5_000,
        event_capacity: 1 << 16,
    };
    System::new(cfg, &image()).run()
}

#[test]
fn counters_reconcile_with_run_stats() {
    let r = run_with_telemetry();
    let t = r.telemetry.as_ref().expect("telemetry enabled");
    let br = r.br.as_ref().expect("BR enabled");

    assert_eq!(t.counter("core.retired_uops"), Some(r.core.retired_uops));
    assert_eq!(
        t.counter("core.retired_branches"),
        Some(r.core.retired_branches)
    );
    assert_eq!(t.counter("core.mispredicts"), Some(r.core.mispredicts));
    assert_eq!(
        t.counter("br.extraction_attempts"),
        Some(br.extraction_attempts)
    );
    assert_eq!(t.counter("br.chains_extracted"), Some(br.chains_extracted));
    assert_eq!(
        t.counter("br.extraction_rejects"),
        Some(br.extraction_rejects)
    );
    assert_eq!(t.counter("br.dce_syncs"), Some(br.syncs));

    // The chain-length histogram shadows the stats' sum.
    let (_, hist) = t
        .histograms
        .iter()
        .find(|(n, _)| n == "br.chain_len")
        .expect("chain_len histogram");
    assert_eq!(hist.sum(), br.chain_len_sum);
    assert_eq!(hist.count(), br.chains_extracted);
}

#[test]
fn events_reconcile_with_counters() {
    let r = run_with_telemetry();
    let t = r.telemetry.as_ref().expect("telemetry enabled");
    // Nothing dropped at this capacity, so each traced kind must match
    // its counter exactly.
    assert_eq!(t.dropped_events, 0, "ring too small for this run");
    for (kind, counter) in [
        (EventKind::ChainExtract, "br.chains_extracted"),
        (EventKind::ChainReject, "br.extraction_rejects"),
        (EventKind::DceSync, "br.dce_syncs"),
        (EventKind::DceFlush, "br.dce_flushes"),
        (EventKind::WpbMerge, "br.merge_events"),
        (EventKind::HbtInsert, "br.hbt_inserts"),
        (EventKind::Recovery, "core.recoveries"),
    ] {
        assert_eq!(
            t.event_count(kind) as u64,
            t.counter(counter).unwrap_or(0),
            "{} events disagree with {counter}",
            kind.name()
        );
    }
    // Events arrive merged in nondecreasing cycle order.
    assert!(t.events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
}

#[test]
fn samples_are_monotonic_and_plausible() {
    let r = run_with_telemetry();
    let t = r.telemetry.as_ref().expect("telemetry enabled");
    assert!(
        t.samples.len() >= 5,
        "60k uops at 5k cadence: {}",
        t.samples.len()
    );
    for w in t.samples.windows(2) {
        assert!(w[0].cycle < w[1].cycle, "cycles must advance");
        assert!(
            w[0].retired_uops < w[1].retired_uops,
            "retired count must advance"
        );
    }
    for s in &t.samples {
        assert!(s.ipc > 0.0 && s.ipc <= 8.0, "implausible IPC {}", s.ipc);
        assert!(s.mpki >= 0.0, "negative MPKI");
        for rate in [
            s.l1_miss_rate,
            s.chain_cache_hit_rate,
            s.coverage_rate,
            s.late_rate,
            s.throttle_rate,
            s.correct_rate,
            s.incorrect_rate,
        ] {
            assert!((0.0..=1.0).contains(&rate), "rate out of range: {rate}");
        }
    }
}

#[test]
fn disabled_telemetry_changes_nothing() {
    let mut cfg = SimConfig::mini_br();
    cfg.max_retired = 30_000;
    let plain = System::new(cfg.clone(), &image()).run();
    assert!(plain.telemetry.is_none(), "off by default");

    cfg.telemetry = TelemetryConfig {
        enabled: true,
        sample_interval: 2_000,
        event_capacity: 1 << 14,
    };
    let traced = System::new(cfg, &image()).run();
    // Observation must not perturb the simulation.
    assert_eq!(plain.core.cycles, traced.core.cycles);
    assert_eq!(plain.core.retired_uops, traced.core.retired_uops);
    assert_eq!(plain.core.mispredicts, traced.core.mispredicts);
    assert_eq!(
        plain.br.as_ref().map(|b| b.dce_uops),
        traced.br.as_ref().map(|b| b.dce_uops)
    );
}
