#!/usr/bin/env python3
"""Builds EXPERIMENTS.md from figures_full.txt (the `figures all` output).

Keeps the hand-written methodology header of EXPERIMENTS.md (everything up
to the `<!-- RESULTS -->` marker) and appends one section per experiment:
the paper's claim, the measured table, and the verdict commentary below.
"""

import re
import sys

COMMENTARY = {
    "table1": (
        "Table 1 — baseline configuration",
        "4-wide, 256-entry ROB, 92-entry RS, 64 KB TAGE-SC-L, "
        "32 KB L1s, 2 MB L2, stream prefetcher, DDR4.",
        "Rendered from the live `SimConfig`; every value above is the one "
        "the simulator actually uses.",
    ),
    "table2": (
        "Table 2 — Branch Runahead configurations",
        "Core-Only 9 KB / Mini 17 KB / Big unlimited.",
        "Same structures and the same 32-entry chain cache / 64-instance "
        "window / 16x queues. Our storage estimate (6.1 / 10.5 KiB) "
        "counts only the major arrays, so it under-reads the paper's "
        "9/17 KB labels; the ratio between the classes is what matters "
        "and it matches.",
    ),
    "fig1": (
        "Figure 1 — misprediction rate on the hardest branches",
        "TAGE-SC-L 11%, MTAGE-SC 9% (only 18% better despite "
        "unlimited storage), dependence chains 5%.",
        "Shape reproduced: the unlimited-history MTAGE is statistically "
        "indistinguishable from the 64 KB baseline on these branches, "
        "while dependence chains cut the rate by ~4x. Our synthetic hard "
        "branches are purer (near 50% baseline rate vs the paper's 11%) "
        "because each kernel concentrates its data-dependence; the "
        "*ordering and the gap structure* are the reproduced claim. "
        "Chains do not help xz_17 (control-dependent inner-loop trip "
        "count), tc (self-affecting two-pointer branch) or gobmk_06 "
        "(stores continuously mutate the chain's source data) — honest "
        "divergence cases the paper's §3 anticipates.",
    ),
    "fig2": (
        "Figure 2 — average dependence chain length",
        "Below 16 by construction, average under 8 micro-ops.",
        "Measured mean ≈7.8 uops — the same 'chains are short' conclusion, "
        "almost exactly the paper's number.",
    ),
    "fig3": (
        "Figure 3 — extra micro-ops due to Branch Runahead",
        "+34.3% micro-ops on average (vs SlipStream's +85%).",
        "`dce-overhead` (chain uops / retired uops) is the comparable "
        "metric: ~56% on these misprediction-dense kernels, still far "
        "below SlipStream's 85% re-execution. The *net* issued-uop change "
        "is only ~+2% because Branch Runahead also removes wrong-path "
        "fetch/issue work — a second-order effect the paper's Figure 3 "
        "does not isolate.",
    ),
    "fig5": (
        "Figure 5 — chains impacted by affectors or guards",
        "A large fraction of chains is affected (varies 10–100% "
        "per benchmark).",
        "Kernels with explicit guard structure (gcc_06 81%, astar_06 54%, "
        "leela_17 42%) show exactly the paper's effect; single-branch "
        "kernels have little to guard, pulling the mean down. The "
        "mechanism (guard-terminated tags like `<A, NT>`) is exercised "
        "end-to-end — see the `board_scan` example.",
    ),
    "fig10": (
        "Figure 10 — MPKI and IPC improvement (the headline)",
        "Means: MPKI −37.5% (Core-Only), −43.6% (Mini), −47.5% "
        "(Big); IPC +8.2% / +13.7% / +16.9%. The 80 KB TAGE-SC-L — same "
        "added storage as Mini — improves MPKI by only 0.8% and IPC by "
        "0.3%.",
        "Every structural claim holds: the 80 KB TAGE is a rounding error "
        "(−0.05% MPKI, +0.03% IPC gmean) while the same storage spent on "
        "Branch Runahead buys tens of percent; Core-Only < Mini; Big adds "
        "only a few points over Mini (paper: +3.8%). Our absolute "
        "improvements are larger than the paper's because the synthetic "
        "kernels are more misprediction-bound than full SPEC regions. "
        "tc regresses slightly (−6% MPKI) — its self-affecting chain "
        "diverges and the §4.2 throttle caps the damage.",
    ),
    "fig11-top": (
        "Figure 11 (top) — MTAGE vs Big Branch Runahead",
        "Unlimited MTAGE-SC helps SPEC somewhat but fails on GAP; "
        "Big BR beats it on average; MTAGE+BR is best on every benchmark.",
        "Reproduced in the essentials: MTAGE's mean improvement is ~0 "
        "(slightly negative — unlimited tables only add allocation noise "
        "on history-free branches), and Big BR dominates it by ~70 "
        "points. The combination tracks Big BR on most kernels; on two "
        "(omnetpp_17, gcc_06) it falls between MTAGE and BR rather than "
        "strictly above both — with MTAGE as the base predictor the "
        "misprediction pattern that triggers synchronization shifts, a "
        "coupling the paper's full-size regions average away.",
    ),
    "fig11-bottom": (
        "Figure 11 (bottom) — chain initiation policies",
        "Predictive ≥ Independent-early ≥ Non-speculative.",
        "The essential gap reproduces dramatically: non-speculative "
        "initiation is nearly useless (+4%) while both speculative "
        "policies deliver ~64% — chain-level parallelism is what buys "
        "timeliness. Predictive and independent-early tie here because "
        "wildcard (self-triggering) chains dominate these kernels, and "
        "those are initiated early under both policies; the paper's "
        "Predictive edge comes from guarded-chain-heavy benchmarks.",
    ),
    "fig12": (
        "Figure 12 — prediction breakdown",
        "Used predictions are almost always correct; ~40% arrive "
        "on time; *late* is the largest loss category.",
        "Reproduced: correct dominates used predictions (incorrect ≈1%), "
        "and late is the biggest non-correct slice — timeliness is the "
        "binding constraint here too. Our inactive fraction is smaller "
        "than the paper's because synchronization opportunities "
        "(mispredicts) are denser on these kernels.",
    ),
    "fig13": (
        "Figure 13 — parameter sweeps (Mini → Big)",
        "Window size and chain cache size dominate the Mini→Big "
        "gap; queues/CEB/HBT saturate early; optimal ≈128-entry window, "
        "64-entry chain cache.",
        "The paper's main finding — window size dominates the Mini→Big "
        "gap — reproduces exactly (+24% at 8 instances, +59% at Mini's "
        "64, saturating toward Big's 1024). The 16-uop chain-length cap "
        "is load-bearing (halving it drops the mean to +20%), and queue "
        "depth matters up to ~64 entries. Chain cache, CEB and HBT sizes "
        "are flat here: each synthetic kernel has only a handful of "
        "static branches, so Mini's 32 chains never thrash — the paper's "
        "chain-cache sensitivity comes from SPEC's thousands of branch "
        "sites, which is a workload-scale difference, not a mechanism "
        "difference.",
    ),
    "fig14": (
        "Figure 14 — energy",
        "Energy *decreases* on average (faster run time outweighs "
        "the new structures and extra uops).",
        "Same sign and mechanism under the analytic model: Mini and Big "
        "save ~13% on average because the leakage and per-uop energy "
        "saved by shorter runs exceeds the DCE's added dynamic energy. "
        "Core-Only is roughly neutral (+3%) — less speedup to pay for "
        "the same extraction machinery — and tc, the divergent kernel "
        "with no speedup, pays the bill (+13–21%), exactly the paper's "
        "worst-case pattern.",
    ),
    "merge-point": (
        "§4.4 — merge-point prediction accuracy",
        "The WPB method is 92% accurate vs 78% for prior "
        "code-layout heuristics.",
        "The WPB is essentially perfect on these kernels (their hammocks "
        "reconverge within the ROB), while the classic 'merge = taken "
        "target' layout heuristic averages 85% and collapses to 0% on "
        "two-sided branches (tc) — the same qualitative gap as the "
        "paper's 92-vs-78, wider here because the WPB has easy hammocks "
        "and the heuristic has hard diamonds.",
    ),
    "ablations": (
        "Ablations — in-order DCE and disabled affector/guard detection",
        "Out-of-order intra-chain scheduling is needed for "
        "MLP (§4.2); affector/guard identification matters (§4.4).",
        "The affector/guard claim reproduces sharply: disabling it drops "
        "the mean from 63% to 54%, and collapses exactly the kernels with "
        "guard structure — astar_06 98→5, deepsjeng_17 96→66, leela_17 "
        "95→68, mcf_17 12→1 (their guarded chains degrade into mis-tagged "
        "self chains that diverge whenever the guard changes direction). "
        "In-order intra-chain scheduling ties here because most chains "
        "carry a single load; the paper's MLP argument applies to "
        "multi-load slices.",
    ),
    "area": (
        "§5.2 — area",
        "DCE ≈0.38 mm², ≈2.2% of a 16.96 mm² core (1.4% for "
        "Core-Only).",
        "The analytic model is calibrated to the paper's McPAT breakdown "
        "and reproduces it by construction; it exists so energy scaling "
        "has a consistent basis.",
    ),
}

ORDER = [
    "table1", "table2", "fig1", "fig2", "fig3", "fig5", "fig10",
    "fig11-top", "fig11-bottom", "fig12", "fig13", "fig14",
    "merge-point", "ablations", "area",
]


def main() -> None:
    full = open("figures_full.txt").read()
    sections = {}
    for m in re.finditer(r"=== (\S+) ===\n(.*?)(?=\n=== |\Z)", full, re.S):
        sections[m.group(1)] = m.group(2).strip("\n")

    head = open("EXPERIMENTS.md").read().split("<!-- RESULTS -->")[0]
    out = [head + "<!-- RESULTS -->\n"]
    for name in ORDER:
        if name not in sections:
            print(f"warning: {name} missing from figures_full.txt", file=sys.stderr)
            continue
        title, paper, verdict = COMMENTARY[name]
        out.append(f"\n## {title}\n")
        out.append(f"\n**Paper.** {paper}\n")
        out.append(f"\n```text\n{sections[name]}\n```\n")
        out.append(f"\n**Measured.** {verdict}\n")
    open("EXPERIMENTS.md", "w").write("".join(out))
    print(f"EXPERIMENTS.md written with {len(sections)} sections")


if __name__ == "__main__":
    main()
