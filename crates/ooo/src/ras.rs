//! Indirect-target prediction: a return-address stack for function
//! returns and a last-target BTB for other indirect jumps.

use std::collections::HashMap;

use br_isa::Pc;

/// A fixed-depth, wrap-around return-address stack.
///
/// Checkpointing copies the whole array — at 16 entries this is cheaper
/// than the corruption-repair schemes real hardware uses, and exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReturnAddressStack {
    entries: Vec<Pc>,
    top: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "RAS needs at least one entry");
        ReturnAddressStack {
            entries: vec![0; depth],
            top: 0,
        }
    }

    /// Pushes a return address (a call was fetched).
    pub fn push(&mut self, ret: Pc) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = ret;
    }

    /// Pops the predicted return target (a return was fetched).
    pub fn pop(&mut self) -> Pc {
        let v = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        v
    }

    /// Snapshot for branch-recovery checkpoints.
    #[must_use]
    pub fn checkpoint(&self) -> ReturnAddressStack {
        self.clone()
    }

    /// Snapshot into an existing buffer, reusing its allocation.
    pub fn checkpoint_into(&self, out: &mut ReturnAddressStack) {
        out.entries.clone_from(&self.entries);
        out.top = self.top;
    }

    /// Restores a snapshot.
    pub fn restore(&mut self, cp: &ReturnAddressStack) {
        self.entries.clone_from(&cp.entries);
        self.top = cp.top;
    }
}

/// A last-target branch target buffer for non-return indirect jumps.
#[derive(Clone, Debug, Default)]
pub struct Btb {
    targets: HashMap<Pc, Pc>,
}

impl Btb {
    /// Creates an empty BTB.
    #[must_use]
    pub fn new() -> Self {
        Btb::default()
    }

    /// Predicted target for the indirect jump at `pc` (fall-through when
    /// never seen).
    #[must_use]
    pub fn predict(&self, pc: Pc) -> Pc {
        self.targets.get(&pc).copied().unwrap_or(pc + 1)
    }

    /// Records a resolved target.
    pub fn update(&mut self, pc: Pc, target: Pc) {
        self.targets.insert(pc, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ras_lifo() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(10);
        ras.push(20);
        assert_eq!(ras.pop(), 20);
        assert_eq!(ras.pop(), 10);
    }

    #[test]
    fn ras_checkpoint_restore() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(1);
        let cp = ras.checkpoint();
        ras.push(2);
        ras.push(3);
        ras.restore(&cp);
        assert_eq!(ras.pop(), 1);
    }

    #[test]
    fn ras_wraps_on_overflow() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.pop(), 3);
        assert_eq!(ras.pop(), 2);
        // The third pop revisits the overwritten slot: stale data, which
        // is exactly how a real wrap-around RAS degrades.
        assert_eq!(ras.pop(), 3);
    }

    #[test]
    fn btb_last_target() {
        let mut btb = Btb::new();
        assert_eq!(btb.predict(5), 6, "cold BTB falls through");
        btb.update(5, 99);
        assert_eq!(btb.predict(5), 99);
        btb.update(5, 42);
        assert_eq!(btb.predict(5), 42);
    }
}
