//! The fetch-time predictor protocol.

use br_isa::Pc;

use crate::history::HistoryCheckpoint;
use crate::inline_vec::InlineVec;
use crate::perceptron::MAX_PERCEPTRON_TABLES;
use crate::sc::MAX_SC_TABLES;
use crate::tage::TageMeta;

/// Opaque per-prediction metadata, captured at predict time and handed back
/// at train time. Real hardware latches the same information (provider
/// table, indices, tags) in the branch's ROB/BIQ entry.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PredMeta {
    /// No metadata (static or table-free predictors).
    None,
    /// Bimodal index.
    Bimodal {
        /// Table index used.
        index: usize,
    },
    /// Gshare index.
    Gshare {
        /// Table index used.
        index: usize,
    },
    /// TAGE metadata (see [`TageMeta`]).
    Tage(TageMeta),
    /// Hashed-perceptron metadata: the table indices and the signed sum
    /// at prediction time.
    Perceptron {
        /// Per-table row indices.
        indices: InlineVec<u32, MAX_PERCEPTRON_TABLES>,
        /// The weight sum (sign = direction).
        sum: i32,
    },
    /// TAGE-SC-L: TAGE metadata plus SC/loop decisions.
    TageScl {
        /// Inner TAGE metadata.
        tage: TageMeta,
        /// The raw TAGE direction before SC/loop overrides.
        tage_taken: bool,
        /// Whether the loop predictor supplied the final direction.
        loop_used: bool,
        /// Loop-predictor direction (valid when `loop_used`).
        loop_taken: bool,
        /// Whether the statistical corrector inverted the TAGE direction.
        sc_inverted: bool,
        /// SC per-table indices at prediction time.
        sc_indices: InlineVec<u32, MAX_SC_TABLES>,
        /// SC weighted sum at prediction time.
        sc_sum: i32,
    },
}

/// A prediction: the direction plus trainer metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Low confidence hint (provider counter weak). Used by diagnostics.
    pub low_confidence: bool,
    /// Metadata to pass back to [`ConditionalPredictor::train`].
    pub meta: PredMeta,
}

impl Prediction {
    /// A static prediction with no metadata.
    #[must_use]
    pub fn fixed(taken: bool) -> Self {
        Prediction {
            taken,
            low_confidence: false,
            meta: PredMeta::None,
        }
    }
}

/// Checkpoint of a predictor's speculative state (global history, folded
/// histories, loop-predictor speculative iteration counts).
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum PredictorCheckpoint {
    /// No speculative state.
    None,
    /// Global-history checkpoint only.
    History(HistoryCheckpoint),
    /// TAGE-SC-L composite: TAGE history, SC history, and the loop
    /// predictor's speculative iteration counters.
    Composite {
        /// TAGE global-history checkpoint.
        tage: HistoryCheckpoint,
        /// Statistical-corrector history checkpoint.
        sc: HistoryCheckpoint,
        /// Loop-predictor speculative counters snapshot.
        loop_spec: Vec<(usize, u16)>,
    },
}

/// A conditional branch direction predictor with speculative history.
///
/// Predictors are required to be [`Send`] so a whole simulation (core +
/// predictor + memory) is a self-contained unit of work that can move to
/// a worker thread; all implementations here are plain owned data.
///
/// Call sequence per fetched branch: [`predict`](Self::predict) →
/// [`checkpoint`](Self::checkpoint) (attach to the branch) →
/// [`update_history`](Self::update_history) with the *followed* direction.
/// On a misprediction, [`restore`](Self::restore) the mispredicted branch's
/// checkpoint and re-apply `update_history` with the corrected direction.
/// At retirement, [`train`](Self::train) with the actual direction and the
/// prediction's metadata.
pub trait ConditionalPredictor: Send {
    /// Short human-readable name (e.g. `"tage-sc-l-64kb"`).
    fn name(&self) -> &'static str;

    /// Predicts the direction of the conditional branch at `pc` using the
    /// current speculative history.
    fn predict(&mut self, pc: Pc) -> Prediction;

    /// Speculatively pushes the followed direction of the branch at `pc`
    /// into the global history.
    fn update_history(&mut self, pc: Pc, taken: bool);

    /// Captures the speculative state to restore on a misprediction.
    fn checkpoint(&self) -> PredictorCheckpoint;

    /// Captures the speculative state into an existing checkpoint buffer,
    /// reusing its allocations when the buffer's variant matches. The
    /// default falls back to a fresh [`Self::checkpoint`].
    fn checkpoint_into(&self, cp: &mut PredictorCheckpoint) {
        *cp = self.checkpoint();
    }

    /// Restores state captured by [`Self::checkpoint`].
    fn restore(&mut self, cp: &PredictorCheckpoint);

    /// Trains tables with the resolved direction. `pred` must be the value
    /// returned by [`Self::predict`] for this dynamic branch.
    fn train(&mut self, pc: Pc, taken: bool, pred: &Prediction);

    /// Approximate storage budget in KiB (for Table/figure labelling).
    fn storage_kib(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_prediction_has_no_meta() {
        let p = Prediction::fixed(true);
        assert!(p.taken);
        assert_eq!(p.meta, PredMeta::None);
    }
}
