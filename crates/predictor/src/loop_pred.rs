//! The loop predictor ("L" of TAGE-SC-L).
//!
//! Detects branches with a constant trip count and predicts the loop exit
//! with high confidence — something counter- and history-based tables do
//! poorly for long loops. Iteration counts are tracked both speculatively
//! (advanced at fetch, checkpointed/restored across mispredictions) and
//! architecturally (advanced at retire, used for training).

use br_isa::Pc;

/// Configuration for [`LoopPredictor`].
#[derive(Clone, Copy, Debug)]
pub struct LoopPredictorConfig {
    /// log2 number of entries.
    pub log2_entries: u32,
    /// Confidence threshold at which predictions are used.
    pub confidence_max: u8,
    /// Maximum trackable trip count.
    pub max_iter: u16,
}

impl Default for LoopPredictorConfig {
    fn default() -> Self {
        LoopPredictorConfig {
            log2_entries: 6,
            confidence_max: 3,
            max_iter: 1023,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct LoopEntry {
    valid: bool,
    tag: u16,
    /// Learned trip count (number of `dir` outcomes before the exit).
    trip: u16,
    /// Architectural iteration counter (retire order).
    iter_retire: u16,
    /// Speculative iteration counter (fetch order).
    iter_spec: u16,
    /// The repeated (in-loop) direction.
    dir: bool,
    confidence: u8,
    age: u8,
}

/// A direct-mapped loop-exit predictor.
#[derive(Clone, Debug)]
pub struct LoopPredictor {
    cfg: LoopPredictorConfig,
    entries: Vec<LoopEntry>,
}

/// The loop predictor's verdict for a branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopLookup {
    /// Predicted direction.
    pub taken: bool,
    /// Whether confidence is high enough to override TAGE.
    pub confident: bool,
}

impl LoopPredictor {
    /// Creates a loop predictor.
    #[must_use]
    pub fn new(cfg: LoopPredictorConfig) -> Self {
        LoopPredictor {
            entries: vec![LoopEntry::default(); 1 << cfg.log2_entries],
            cfg,
        }
    }

    fn index(&self, pc: Pc) -> usize {
        (pc as usize) & ((1 << self.cfg.log2_entries) - 1)
    }

    fn tag(&self, pc: Pc) -> u16 {
        ((pc >> self.cfg.log2_entries) & 0x3fff) as u16
    }

    /// Looks up a prediction using the *speculative* iteration count.
    #[must_use]
    pub fn lookup(&self, pc: Pc) -> Option<LoopLookup> {
        let e = &self.entries[self.index(pc)];
        if !e.valid || e.tag != self.tag(pc) || e.trip == 0 {
            return None;
        }
        let exit = e.iter_spec + 1 > e.trip;
        Some(LoopLookup {
            taken: if exit { !e.dir } else { e.dir },
            confident: e.confidence >= self.cfg.confidence_max,
        })
    }

    /// Advances the speculative iteration counter for a fetched branch.
    pub fn spec_update(&mut self, pc: Pc, taken: bool) {
        let idx = self.index(pc);
        let tag = self.tag(pc);
        let e = &mut self.entries[idx];
        if e.valid && e.tag == tag {
            if taken == e.dir {
                e.iter_spec = e.iter_spec.saturating_add(1).min(self.cfg.max_iter);
            } else {
                e.iter_spec = 0;
            }
        }
    }

    /// Snapshots all speculative iteration counters (entry index, value).
    #[must_use]
    pub fn spec_checkpoint(&self) -> Vec<(usize, u16)> {
        let mut out = Vec::new();
        self.spec_checkpoint_into(&mut out);
        out
    }

    /// [`Self::spec_checkpoint`] into an existing buffer, reusing its
    /// allocation.
    pub fn spec_checkpoint_into(&self, out: &mut Vec<(usize, u16)>) {
        out.clear();
        out.extend(
            self.entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.valid)
                .map(|(i, e)| (i, e.iter_spec)),
        );
    }

    /// Restores a snapshot from [`Self::spec_checkpoint`]. Entries
    /// allocated since the snapshot keep their architectural count.
    pub fn spec_restore(&mut self, snap: &[(usize, u16)]) {
        // First, re-sync everything to the architectural count (covers
        // entries allocated after the checkpoint was taken)...
        for e in &mut self.entries {
            e.iter_spec = e.iter_retire;
        }
        // ...then overlay the checkpointed speculative counts.
        for &(i, v) in snap {
            if self.entries[i].valid {
                self.entries[i].iter_spec = v;
            }
        }
    }

    /// Trains with a retired outcome. `mispredicted` is whether the outer
    /// predictor got this branch wrong (allocation trigger).
    pub fn train(&mut self, pc: Pc, taken: bool, mispredicted: bool) {
        let idx = self.index(pc);
        let tag = self.tag(pc);
        let e = &mut self.entries[idx];
        if e.valid && e.tag == tag {
            if taken == e.dir {
                e.iter_retire = e.iter_retire.saturating_add(1).min(self.cfg.max_iter);
                if e.iter_retire > e.trip && e.confidence > 0 {
                    // Ran past the learned trip count: trip was wrong.
                    e.confidence = 0;
                    e.trip = 0;
                }
            } else {
                // Exit observed: check the trip count.
                if e.trip == e.iter_retire && e.trip != 0 {
                    e.confidence = (e.confidence + 1).min(self.cfg.confidence_max);
                } else {
                    if e.confidence == 0 {
                        e.trip = e.iter_retire;
                    } else {
                        e.confidence = 0;
                        e.trip = e.iter_retire;
                    }
                }
                e.iter_retire = 0;
                e.iter_spec = 0;
                e.age = e.age.saturating_add(1).min(7);
            }
        } else if mispredicted {
            // Allocate, evicting only aged-out entries.
            let evict = !e.valid || e.age == 0;
            if evict {
                // The mispredicted outcome is typically the loop *exit*,
                // so the repeated in-loop direction is its opposite.
                *e = LoopEntry {
                    valid: true,
                    tag,
                    trip: 0,
                    iter_retire: 0,
                    iter_spec: 0,
                    dir: !taken,
                    confidence: 0,
                    age: 7,
                };
            } else {
                e.age -= 1;
            }
        }
    }

    /// Storage estimate in KiB.
    #[must_use]
    pub fn storage_kib(&self) -> f64 {
        // tag(14) + trip(10) + 2x iter(10) + dir(1) + conf(2) + age(3) + v(1)
        self.entries.len() as f64 * 51.0 / 8.0 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a loop branch with a fixed trip count: `trip` taken outcomes
    /// then one not-taken (classic backward loop branch).
    fn run_loop(p: &mut LoopPredictor, pc: Pc, trip: u16, rounds: usize) -> (u32, u32) {
        let mut used = 0;
        let mut correct = 0;
        for _ in 0..rounds {
            for i in 0..=trip {
                let taken = i < trip;
                if let Some(l) = p.lookup(pc) {
                    if l.confident {
                        used += 1;
                        if l.taken == taken {
                            correct += 1;
                        }
                    }
                }
                p.spec_update(pc, taken);
                p.train(pc, taken, i == trip); // exit mispredicted by TAGE
            }
        }
        (used, correct)
    }

    #[test]
    fn learns_fixed_trip_count() {
        let mut p = LoopPredictor::new(LoopPredictorConfig::default());
        let (used, correct) = run_loop(&mut p, 0x40, 8, 50);
        assert!(used > 100, "loop predictor never became confident");
        assert_eq!(used, correct, "confident loop predictions must be right");
    }

    #[test]
    fn changing_trip_count_drops_confidence() {
        let mut p = LoopPredictor::new(LoopPredictorConfig::default());
        let _ = run_loop(&mut p, 0x40, 8, 20);
        // Switch to trip 5; the first confident exit prediction will be
        // wrong, after which confidence must reset (no more confident use
        // until re-learned).
        let (_, _) = run_loop(&mut p, 0x40, 5, 1);
        let (used2, correct2) = run_loop(&mut p, 0x40, 5, 20);
        assert!(correct2 + 2 >= used2, "at most the relearn transient wrong");
    }

    #[test]
    fn spec_checkpoint_restore() {
        let mut p = LoopPredictor::new(LoopPredictorConfig::default());
        let _ = run_loop(&mut p, 0x40, 8, 10);
        let snap = p.spec_checkpoint();
        p.spec_update(0x40, true);
        p.spec_update(0x40, true);
        p.spec_restore(&snap);
        assert_eq!(p.spec_checkpoint(), snap);
    }

    #[test]
    fn no_prediction_for_unknown_pc() {
        let p = LoopPredictor::new(LoopPredictorConfig::default());
        assert!(p.lookup(0x1234).is_none());
    }
}
