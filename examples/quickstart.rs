//! Quickstart: run one benchmark kernel with and without Branch Runahead
//! and compare MPKI / IPC — the paper's headline experiment in miniature.
//!
//! ```text
//! cargo run --release --example quickstart [workload]
//! ```

use branch_runahead::sim::{SimConfig, System};
use branch_runahead::workloads::{workload_by_name, WorkloadParams};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "leela_17".into());
    let Some(w) = workload_by_name(&name) else {
        eprintln!("unknown workload {name:?}");
        std::process::exit(1);
    };
    let params = WorkloadParams::default();
    println!("workload: {} — {}", w.name(), w.description());

    let image = w.build(&params);
    let mut cfg = SimConfig::baseline();
    cfg.max_retired = 300_000;
    let base = System::new(cfg, &image).run();

    let mut cfg_br = SimConfig::mini_br();
    cfg_br.max_retired = 300_000;
    let mut sys = System::new(cfg_br, &image);
    let with = sys.run();

    println!("\n{:<22}{:>14}{:>14}", "", "tage-sc-l-64kb", "mini-br");
    println!("{:<22}{:>14.3}{:>14.3}", "IPC", base.ipc(), with.ipc());
    println!("{:<22}{:>14.2}{:>14.2}", "MPKI", base.mpki(), with.mpki());
    println!(
        "{:<22}{:>14}{:>14}",
        "mispredicts", base.core.mispredicts, with.core.mispredicts
    );
    println!(
        "\nBranch Runahead: MPKI {:+.1}%, IPC {:+.1}%  (paper means: -47.5% MPKI, +16.9% IPC)",
        -with.mpki_improvement_pct(&base),
        with.ipc_improvement_pct(&base)
    );

    let br = with.br.expect("BR stats present");
    println!(
        "chains extracted: {} (avg {:.1} uops), DCE executed {} uops, {} syncs",
        br.chains_extracted,
        br.avg_chain_len(),
        br.dce_uops,
        br.syncs
    );
}
