//! The metrics registry: named counters, gauges, and log-scaled
//! histograms.
//!
//! Registration returns a small index (`CounterId` etc.); the hot-path
//! update methods are plain slice indexing, so an enabled sink costs one
//! bounds-checked array write per update and a disabled sink (see
//! [`crate::Telemetry`]) costs one branch.

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterId(pub(crate) u32);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeId(pub(crate) u32);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistId(pub(crate) u32);

/// Number of histogram buckets: bucket 0 holds zeros, bucket `k` holds
/// values with `ilog2(v) == k - 1`, so the full `u64` range fits.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` values.
///
/// Bucket 0 counts zeros; bucket `k` (for `k >= 1`) counts values `v`
/// with `2^(k-1) <= v < 2^k`. Exact count/sum/min/max ride along so the
/// mean is exact even though the distribution is coarse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let bucket = match v {
            0 => 0,
            v => v.ilog2() as usize + 1,
        };
        self.buckets[bucket] += 1;
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts (see [`HIST_BUCKETS`] for the layout).
    #[must_use]
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (`0.0 <= p <= 1.0`); 0 when empty. Coarse by construction: the
    /// true quantile lies within a factor of two below the returned
    /// value.
    #[must_use]
    pub fn quantile_upper_bound(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (k, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return match k {
                    0 => 0,
                    64 => u64::MAX,
                    k => (1u64 << k) - 1,
                };
            }
        }
        self.max
    }
}

/// A registry of named metrics. Names are `&'static str` by design: every
/// instrumentation site names its metric in code, and registration
/// deduplicates, so repeated attach/registration cycles are idempotent.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, i64)>,
    histograms: Vec<(&'static str, Histogram)>,
}

impl Metrics {
    /// Registers (or finds) the counter `name`.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i as u32);
        }
        self.counters.push((name, 0));
        CounterId((self.counters.len() - 1) as u32)
    }

    /// Registers (or finds) the gauge `name`.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| *n == name) {
            return GaugeId(i as u32);
        }
        self.gauges.push((name, 0));
        GaugeId((self.gauges.len() - 1) as u32)
    }

    /// Registers (or finds) the histogram `name`.
    pub fn histogram(&mut self, name: &'static str) -> HistId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| *n == name) {
            return HistId(i as u32);
        }
        self.histograms.push((name, Histogram::default()));
        HistId((self.histograms.len() - 1) as u32)
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0 as usize].1 += delta;
    }

    /// Sets a gauge to `value`.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0 as usize].1 = value;
    }

    /// Records `value` into a histogram.
    #[inline]
    pub fn record(&mut self, id: HistId, value: u64) {
        self.histograms[id.0 as usize].1.record(value);
    }

    /// Iterates counters in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().copied()
    }

    /// Iterates gauges in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, i64)> + '_ {
        self.gauges.iter().copied()
    }

    /// Iterates histograms in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(n, h)| (*n, h))
    }

    /// Current value of the counter named `name`, if registered.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registration_dedupes_and_accumulates() {
        let mut m = Metrics::default();
        let a = m.counter("x");
        let b = m.counter("x");
        assert_eq!(a, b);
        m.add(a, 3);
        m.add(b, 4);
        assert_eq!(m.counter_value("x"), Some(7));
        assert_eq!(m.counter_value("y"), None);
    }

    #[test]
    fn gauge_holds_last_value() {
        let mut m = Metrics::default();
        let g = m.gauge("depth");
        m.set_gauge(g, 5);
        m.set_gauge(g, -2);
        assert_eq!(m.gauges().collect::<Vec<_>>(), vec![("depth", -2)]);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        let b = h.buckets();
        assert_eq!(b[0], 1); // 0
        assert_eq!(b[1], 1); // 1
        assert_eq!(b[2], 2); // 2..=3
        assert_eq!(b[3], 2); // 4..=7
        assert_eq!(b[4], 1); // 8..=15
        assert_eq!(b[11], 1); // 1024..=2047
        assert!((h.mean() - (1 + 2 + 3 + 4 + 7 + 8 + 1024) as f64 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::default();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn quantile_bound_brackets_the_median() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let q = h.quantile_upper_bound(0.5);
        assert!((50..=127).contains(&q), "median bound off: {q}");
    }
}
