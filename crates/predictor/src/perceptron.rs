//! Hashed perceptron predictor (Jiménez & Lin, HPCA 2001; the
//! multiperspective variants were CBP-2016 contenders the paper cites).
//!
//! Each prediction sums signed weights selected by hashing the PC with
//! several history segments; the sign is the direction. Training bumps
//! the selected weights when the prediction was wrong or the magnitude
//! was below threshold. Like TAGE, perceptrons exploit history
//! correlation — and like TAGE they saturate on the data-dependent
//! branches Branch Runahead targets, which is exactly why this predictor
//! is included as a comparison point.

use br_isa::Pc;

use crate::history::GlobalHistory;
use crate::inline_vec::InlineVec;
use crate::traits::{ConditionalPredictor, PredMeta, Prediction, PredictorCheckpoint};

/// Hard cap on weight tables (history segments), sized comfortably above
/// the default 6-segment configuration so lookups stay inline.
pub const MAX_PERCEPTRON_TABLES: usize = 12;

/// Configuration for [`Perceptron`].
#[derive(Clone, Debug)]
pub struct PerceptronConfig {
    /// log2 rows per weight table.
    pub table_log2: u32,
    /// History segment lengths, one table per segment (0 = bias table).
    pub segments: Vec<u32>,
    /// Weight saturation magnitude.
    pub weight_max: i16,
    /// Training threshold (θ); classic value ≈ 1.93·h + 14.
    pub theta: i32,
}

impl Default for PerceptronConfig {
    fn default() -> Self {
        PerceptronConfig {
            table_log2: 12,
            segments: vec![0, 4, 8, 16, 24, 32],
            weight_max: 127,
            theta: 76,
        }
    }
}

/// The hashed perceptron predictor.
pub struct Perceptron {
    cfg: PerceptronConfig,
    /// One weight table per segment.
    tables: Vec<Vec<i16>>,
    hist: GlobalHistory,
    folds: Vec<Option<usize>>,
}

impl std::fmt::Debug for Perceptron {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Perceptron")
            .field("tables", &self.tables.len())
            .finish()
    }
}

impl Perceptron {
    /// Builds a perceptron from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.segments` is empty.
    #[must_use]
    pub fn new(cfg: PerceptronConfig) -> Self {
        assert!(!cfg.segments.is_empty(), "need at least the bias table");
        assert!(
            cfg.segments.len() <= MAX_PERCEPTRON_TABLES,
            "at most {MAX_PERCEPTRON_TABLES} weight tables supported"
        );
        let mut hist = GlobalHistory::new(1024);
        let folds = cfg
            .segments
            .iter()
            .map(|&len| (len > 0).then(|| hist.add_folded(len, cfg.table_log2)))
            .collect();
        Perceptron {
            tables: vec![vec![0i16; 1 << cfg.table_log2]; cfg.segments.len()],
            hist,
            folds,
            cfg,
        }
    }

    fn indices(&self, pc: Pc) -> InlineVec<u32, MAX_PERCEPTRON_TABLES> {
        let mask = (1usize << self.cfg.table_log2) - 1;
        let mut v = InlineVec::new();
        for (t, f) in self.folds.iter().enumerate() {
            v.push(match f {
                None => ((pc as usize) & mask) as u32,
                Some(h) => {
                    let folded = u64::from(self.hist.folded(*h));
                    (((pc.rotate_left(t as u32 * 3) ^ folded) as usize) & mask) as u32
                }
            });
        }
        v
    }

    fn sum(&self, indices: &[u32]) -> i32 {
        indices
            .iter()
            .enumerate()
            .map(|(t, &i)| i32::from(self.tables[t][i as usize]))
            .sum()
    }
}

impl ConditionalPredictor for Perceptron {
    fn name(&self) -> &'static str {
        "perceptron"
    }

    fn predict(&mut self, pc: Pc) -> Prediction {
        let indices = self.indices(pc);
        let sum = self.sum(&indices);
        Prediction {
            taken: sum >= 0,
            low_confidence: sum.abs() < self.cfg.theta / 2,
            meta: PredMeta::Perceptron { indices, sum },
        }
    }

    fn update_history(&mut self, pc: Pc, taken: bool) {
        self.hist.push(pc, taken);
    }

    fn checkpoint(&self) -> PredictorCheckpoint {
        PredictorCheckpoint::History(self.hist.checkpoint())
    }

    fn checkpoint_into(&self, cp: &mut PredictorCheckpoint) {
        match cp {
            PredictorCheckpoint::History(h) => self.hist.checkpoint_into(h),
            _ => *cp = self.checkpoint(),
        }
    }

    fn restore(&mut self, cp: &PredictorCheckpoint) {
        match cp {
            PredictorCheckpoint::History(h) => self.hist.restore(h),
            _ => panic!("checkpoint type mismatch for Perceptron"),
        }
    }

    fn train(&mut self, _pc: Pc, taken: bool, pred: &Prediction) {
        let PredMeta::Perceptron { indices, sum } = &pred.meta else {
            panic!("metadata type mismatch for Perceptron");
        };
        let wrong = pred.taken != taken;
        if wrong || sum.abs() <= self.cfg.theta {
            let max = self.cfg.weight_max;
            for (t, &i) in indices.iter().enumerate() {
                let w = &mut self.tables[t][i as usize];
                if taken {
                    *w = (*w + 1).min(max);
                } else {
                    *w = (*w - 1).max(-max - 1);
                }
            }
        }
    }

    fn storage_kib(&self) -> f64 {
        self.tables.len() as f64 * (1 << self.cfg.table_log2) as f64 * 8.0 / 8.0 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(p: &mut Perceptron, pc: Pc, taken: bool) -> bool {
        let pred = p.predict(pc);
        let hit = pred.taken == taken;
        p.update_history(pc, taken);
        p.train(pc, taken, &pred);
        hit
    }

    #[test]
    fn learns_bias_and_alternation() {
        let mut p = Perceptron::new(PerceptronConfig::default());
        let mut hits = 0;
        for i in 0..2000 {
            if step(&mut p, 0x40, i % 2 == 0) && i > 500 {
                hits += 1;
            }
        }
        assert!(hits > 1400, "alternation should be learned: {hits}");
    }

    #[test]
    fn learns_linearly_separable_correlation() {
        // Outcome = XOR-free AND of two history bits is linearly separable.
        let mut p = Perceptron::new(PerceptronConfig::default());
        let mut prev = (false, false);
        let mut hits = 0;
        let mut total = 0;
        let mut x = 7u64;
        for i in 0..6000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = x & 1 == 1;
            let b = x & 2 == 2;
            step(&mut p, 0x100, a);
            step(&mut p, 0x104, b);
            let outcome = prev.0 && prev.1;
            let hit = step(&mut p, 0x108, outcome);
            prev = (a, b);
            if i > 3000 {
                total += 1;
                if hit {
                    hits += 1;
                }
            }
        }
        assert!(
            hits as f64 / total as f64 > 0.8,
            "AND of history bits is learnable: {hits}/{total}"
        );
    }

    #[test]
    fn near_chance_on_data_dependent_branch() {
        let mut p = Perceptron::new(PerceptronConfig::default());
        let mut x = 99u64;
        let mut hits = 0;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if step(&mut p, 0x200, x & 4 == 4) {
                hits += 1;
            }
        }
        let rate = hits as f64 / 4000.0;
        assert!(
            (0.38..0.64).contains(&rate),
            "perceptron also saturates on random outcomes: {rate}"
        );
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut p = Perceptron::new(PerceptronConfig::default());
        for i in 0..200 {
            step(&mut p, 0x30 + (i % 3), i % 2 == 0);
        }
        let cp = p.checkpoint();
        let before = p.predict(0x42).taken;
        for i in 0..50 {
            p.update_history(i, true);
        }
        p.restore(&cp);
        assert_eq!(p.predict(0x42).taken, before);
    }
}
