//! Deterministic fault injection and the architectural-equivalence soak.
//!
//! Branch Runahead's core contract is that DCE chain outcomes are *hints*:
//! a wrong, late, or stale prediction may only cost performance, never
//! correctness (§3, §4.2 of the paper). This module turns that claim into
//! a testable property. A [`FaultInjector`], seeded from the job so every
//! schedule replays bit-identically, perturbs the BR/core boundary in five
//! ways:
//!
//! * **outcome flips** — a chain-computed direction handed to fetch is
//!   inverted ([`FaultKind::FlipOutcome`]);
//! * **dropped pushes** — a DCE→prediction-queue fill is swallowed, so the
//!   slot stays empty and fetch sees `Late` ([`FaultKind::DropFill`]);
//! * **chain evictions** — a pseudo-random chain-cache entry vanishes
//!   ([`FaultKind::EvictChain`]);
//! * **decay storms** — the HBT decays early, delaying HTP detection
//!   ([`FaultKind::DecayStorm`]);
//! * **memory delays** — DCE D-cache responses are withheld for extra
//!   cycles, making chains late or stale ([`FaultKind::DelayMem`]).
//!
//! [`run_soak`] then runs every job once fault-free and `N` times under
//! seeded schedules, all with machine checks on, and demands the retired
//! instruction stream (via `CoreStats::retire_fingerprint`) be
//! bit-identical across all of them — only IPC/MPKI/coverage may move.

use std::collections::HashMap;

use br_core::BranchRunahead;
use br_isa::{CpuState, Pc};
use br_mem::MemResp;
use br_ooo::{BranchOutcome, CoreHooks, FetchedBranch, MispredictInfo, RetiredUop, WrongPathUop};

use crate::job::{SimError, SimJob};
use crate::runner::run_jobs_partial;
use crate::system::SystemHooks;

/// The fault taxonomy. Discriminants are the stable `arg` codes carried
/// by `EventKind::FaultInject` telemetry events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A chain outcome delivered to fetch was bit-flipped.
    FlipOutcome = 0,
    /// A DCE→prediction-queue push was dropped.
    DropFill = 1,
    /// A chain-cache entry was spuriously evicted.
    EvictChain = 2,
    /// The HBT was forced through an early decay event.
    DecayStorm = 3,
    /// A DCE memory response was delayed.
    DelayMem = 4,
}

/// A fault schedule: per-opportunity rates (16-bit fixed point, chances
/// out of 65536) plus the structural-chaos cadence and the seed that
/// makes the whole schedule reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed of the schedule's deterministic RNG. [`run_soak`] derives a
    /// distinct seed per `(job, schedule)` from this base.
    pub seed: u64,
    /// Chance (per 65536) an overridden prediction is bit-flipped.
    pub flip_outcome: u16,
    /// Chance (per 65536, rolled each chaos tick) a queue fill is dropped.
    pub drop_fill: u16,
    /// Chance (per 65536, rolled each chaos tick) a chain is evicted.
    pub evict_chain: u16,
    /// Chance (per 65536, rolled each chaos tick) of an HBT decay storm.
    pub decay_storm: u16,
    /// Chance (per 65536, per DCE response) the response is delayed.
    pub delay_mem: u16,
    /// Extra cycles a delayed DCE response is withheld.
    pub delay_cycles: u64,
    /// Cycles between structural chaos ticks (0 disables them).
    pub period: u64,
    /// Deliberately corrupt a prediction-queue pointer on every chaos
    /// tick — the CI fixture proving machine checks catch real damage.
    pub sabotage: bool,
}

impl Default for FaultSpec {
    /// The `--faults default` schedule: every fault class active at a
    /// rate that fires many times per quick run without drowning it.
    fn default() -> Self {
        FaultSpec {
            seed: 0xB12A_5EED,
            flip_outcome: rate_from_prob(0.02),
            drop_fill: rate_from_prob(0.10),
            evict_chain: rate_from_prob(0.10),
            decay_storm: rate_from_prob(0.02),
            delay_mem: rate_from_prob(0.05),
            delay_cycles: 48,
            period: 512,
            sabotage: false,
        }
    }
}

/// Converts a probability in `[0, 1]` to the 16-bit fixed-point rate.
#[must_use]
pub fn rate_from_prob(p: f64) -> u16 {
    (p.clamp(0.0, 1.0) * 65536.0).round().min(65535.0) as u16
}

impl FaultSpec {
    /// A schedule injecting nothing (useful as a parse base).
    #[must_use]
    pub fn none() -> Self {
        FaultSpec {
            seed: 0xB12A_5EED,
            flip_outcome: 0,
            drop_fill: 0,
            evict_chain: 0,
            decay_storm: 0,
            delay_mem: 0,
            delay_cycles: 48,
            period: 512,
            sabotage: false,
        }
    }

    /// Parses a `--faults` specification: `default` for the stock
    /// schedule, or a comma-separated `key=value` list over a silent
    /// base. Keys: `flip`, `drop`, `evict`, `decay`, `delaymem`
    /// (probabilities in `[0,1]`), `delay` (cycles), `period` (cycles),
    /// `seed` (u64), `sabotage` (`0`/`1`). Example:
    /// `flip=0.05,drop=0.2,period=256,seed=7`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending token and
    /// the accepted keys.
    pub fn parse(spec: &str) -> Result<Self, SimError> {
        if spec == "default" {
            return Ok(FaultSpec::default());
        }
        let mut out = FaultSpec::none();
        let bad = |token: &str, why: &str| {
            SimError::InvalidConfig(format!(
                "bad --faults token {token:?}: {why}; expected \"default\" or a \
                 comma list of flip/drop/evict/decay/delaymem=<prob 0..1>, \
                 delay/period/seed=<int>, sabotage=0|1"
            ))
        };
        for token in spec.split(',').filter(|t| !t.is_empty()) {
            let Some((key, value)) = token.split_once('=') else {
                return Err(bad(token, "missing '='"));
            };
            let prob = || -> Result<u16, SimError> {
                let p: f64 = value.parse().map_err(|_| bad(token, "not a probability"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(bad(token, "probability outside [0, 1]"));
                }
                Ok(rate_from_prob(p))
            };
            let int = || -> Result<u64, SimError> {
                value.parse().map_err(|_| bad(token, "not an integer"))
            };
            match key {
                "flip" => out.flip_outcome = prob()?,
                "drop" => out.drop_fill = prob()?,
                "evict" => out.evict_chain = prob()?,
                "decay" => out.decay_storm = prob()?,
                "delaymem" => out.delay_mem = prob()?,
                "delay" => out.delay_cycles = int()?,
                "period" => out.period = int()?,
                "seed" => out.seed = int()?,
                "sabotage" => out.sabotage = int()? != 0,
                _ => return Err(bad(token, "unknown key")),
            }
        }
        Ok(out)
    }
}

/// Counts of injected faults, by kind. Bit-identical across replays of
/// the same `(job, fault seed)` — the determinism tests compare these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Chain outcomes bit-flipped on their way to fetch.
    pub outcome_flips: u64,
    /// DCE→queue pushes dropped.
    pub dropped_fills: u64,
    /// Chain-cache entries spuriously evicted.
    pub chain_evictions: u64,
    /// HBT decay storms forced.
    pub decay_storms: u64,
    /// DCE memory responses delayed.
    pub delayed_responses: u64,
}

impl FaultStats {
    /// Total faults injected.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.outcome_flips
            + self.dropped_fills
            + self.chain_evictions
            + self.decay_storms
            + self.delayed_responses
    }
}

/// Executes one [`FaultSpec`] deterministically against a running system.
/// Owned by `System`; the run loop calls [`FaultInjector::filter_responses`]
/// and [`FaultInjector::chaos_tick`], and wraps the core's hooks in
/// [`FaultedHooks`] so outcome flips happen at the prediction hand-off.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    rng: u64,
    /// Withheld DCE responses: `(deliver_at_cycle, response)`.
    held: Vec<(u64, MemResp)>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for `spec`.
    #[must_use]
    pub fn new(spec: FaultSpec) -> Self {
        let mut rng = spec.seed ^ 0x9E37_79B9_7F4A_7C15;
        if rng == 0 {
            rng = 0x2545_F491_4F6C_DD1D;
        }
        FaultInjector {
            spec,
            rng,
            held: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// The schedule being executed.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Faults injected so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn roll(&mut self, rate: u16) -> bool {
        rate > 0 && (self.next_rand() & 0xFFFF) < u64::from(rate)
    }

    /// Whether a structural chaos tick is due this cycle.
    #[must_use]
    pub fn chaos_due(&self, cycle: u64) -> bool {
        self.spec.period > 0 && cycle > 0 && cycle.is_multiple_of(self.spec.period)
    }

    /// Filters one cycle's memory responses: DCE-owned responses selected
    /// by the schedule are withheld for `delay_cycles`, and previously
    /// held responses that have come due are re-delivered (appended in
    /// hold order, so delivery is deterministic). Core responses are
    /// never touched — the fault boundary is strictly the assist engine.
    pub fn filter_responses(
        &mut self,
        cycle: u64,
        responses: Vec<MemResp>,
        br: &BranchRunahead,
    ) -> Vec<MemResp> {
        let mut out = Vec::with_capacity(responses.len());
        for r in responses {
            if br.owns_mem_request(r.id) && self.roll(self.spec.delay_mem) {
                self.stats.delayed_responses += 1;
                self.held.push((cycle + self.spec.delay_cycles.max(1), r));
            } else {
                out.push(r);
            }
        }
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 <= cycle {
                out.push(self.held.remove(i).1);
            } else {
                i += 1;
            }
        }
        out
    }

    /// Records delayed responses into telemetry (split from
    /// [`FaultInjector::filter_responses`] so the latter can take the
    /// engine immutably inside the run loop's borrow pattern).
    pub fn note_delays(&mut self, cycle: u64, before: u64, br: &mut BranchRunahead) {
        for _ in before..self.stats.delayed_responses {
            br.record_external_fault(cycle, 0, FaultKind::DelayMem as u64);
        }
    }

    /// One structural chaos tick: rolls each structural fault class and
    /// applies the ones that fire to the engine. Sabotage (the CI
    /// fixture's deliberate corruption) is re-applied every tick so a
    /// flush between ticks cannot hide it from the next invariant sweep.
    pub fn chaos_tick(&mut self, cycle: u64, br: &mut BranchRunahead) {
        if self.spec.sabotage {
            br.chaos_sabotage();
        }
        if self.roll(self.spec.drop_fill) {
            self.stats.dropped_fills += 1;
            br.chaos_drop_next_fill(cycle);
        }
        if self.roll(self.spec.evict_chain) {
            let sel = self.next_rand();
            if br.chaos_evict_chain(sel, cycle) {
                self.stats.chain_evictions += 1;
            }
        }
        if self.roll(self.spec.decay_storm) {
            self.stats.decay_storms += 1;
            br.chaos_decay_storm(cycle);
        }
    }
}

/// Wraps the system's hooks for one core tick, bit-flipping chain
/// outcomes on their way from the prediction queues to fetch. Every other
/// hook delegates untouched: the fault surface is exactly the prediction
/// hand-off, matching the paper's prediction-as-hint contract.
pub struct FaultedHooks<'a> {
    inner: &'a mut SystemHooks,
    inj: &'a mut FaultInjector,
}

impl<'a> FaultedHooks<'a> {
    /// Wraps `inner`, perturbing it per `inj`'s schedule.
    pub fn new(inner: &'a mut SystemHooks, inj: &'a mut FaultInjector) -> Self {
        FaultedHooks { inner, inj }
    }
}

impl CoreHooks for FaultedHooks<'_> {
    fn override_prediction(&mut self, pc: Pc, base: bool, cycle: u64) -> Option<bool> {
        let value = self.inner.override_prediction(pc, base, cycle)?;
        if self.inj.roll(self.inj.spec.flip_outcome) {
            self.inj.stats.outcome_flips += 1;
            if let Some(br) = self.inner.runahead_mut() {
                br.record_external_fault(cycle, pc, FaultKind::FlipOutcome as u64);
            }
            Some(!value)
        } else {
            Some(value)
        }
    }

    fn on_branch_fetch(&mut self, b: &FetchedBranch) {
        self.inner.on_branch_fetch(b);
    }

    fn on_mispredict(
        &mut self,
        info: &MispredictInfo,
        wrong_path: &[WrongPathUop],
        cpu: &CpuState,
    ) {
        self.inner.on_mispredict(info, wrong_path, cpu);
    }

    fn on_retire(&mut self, u: &RetiredUop) {
        self.inner.on_retire(u);
    }

    fn on_branch_retire(&mut self, b: &BranchOutcome) {
        self.inner.on_branch_retire(b);
    }
}

// --------------------------------------------------------------- soak

/// Summary of one soak run (the reference or one fault schedule).
#[derive(Clone, Debug)]
pub struct SoakRun {
    /// [`SimJob::label`] of the job.
    pub job: String,
    /// The fault schedule's seed; `None` for the fault-free reference.
    pub fault_seed: Option<u64>,
    /// Retired-instruction-stream fingerprint (when the run completed).
    pub retire_fingerprint: Option<u64>,
    /// IPC of the run (performance metrics are allowed to move).
    pub ipc: f64,
    /// MPKI of the run.
    pub mpki: f64,
    /// Faults actually injected.
    pub faults: FaultStats,
    /// `"ok"`, or the [`SimError::kind`] of the failure.
    pub status: String,
}

/// One failed soak run with its typed error.
#[derive(Clone, Debug)]
pub struct SoakFailure {
    /// [`SimJob::label`] of the failing job.
    pub job: String,
    /// The fault schedule's seed (`None`: the reference run failed).
    pub fault_seed: Option<u64>,
    /// What went wrong.
    pub error: SimError,
}

/// The result of an architectural-equivalence soak.
#[derive(Clone, Debug, Default)]
pub struct SoakReport {
    /// Every run performed, in job order (reference first per job).
    pub runs: Vec<SoakRun>,
    /// Every failure, in job order.
    pub failures: Vec<SoakFailure>,
}

impl SoakReport {
    /// Whether every run held the equivalence and invariant contract.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Machine-readable JSON: `{"total_runs", "fault_runs", "passed",
    /// "failures": [{"job", "fault_seed", "kind", "error"}], "runs":
    /// [...]}`. Parsed by `tools/check_soak.py`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let seed = |s: Option<u64>| s.map_or("null".to_string(), |v| v.to_string());
        let failures: Vec<String> = self
            .failures
            .iter()
            .map(|f| {
                format!(
                    "{{\"job\": \"{}\", \"fault_seed\": {}, \"kind\": \"{}\", \"error\": \"{}\"}}",
                    escape(&f.job),
                    seed(f.fault_seed),
                    f.error.kind(),
                    escape(&f.error.to_string())
                )
            })
            .collect();
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                format!(
                    "{{\"job\": \"{}\", \"fault_seed\": {}, \"fingerprint\": {}, \
                     \"ipc\": {:.4}, \"mpki\": {:.4}, \"faults_injected\": {}, \
                     \"status\": \"{}\"}}",
                    escape(&r.job),
                    seed(r.fault_seed),
                    r.retire_fingerprint
                        .map_or("null".to_string(), |f| f.to_string()),
                    r.ipc,
                    r.mpki,
                    r.faults.total(),
                    escape(&r.status)
                )
            })
            .collect();
        format!(
            "{{\"total_runs\": {}, \"fault_runs\": {}, \"passed\": {}, \
             \"failures\": [{}], \"runs\": [{}]}}",
            self.runs.len(),
            self.runs.iter().filter(|r| r.fault_seed.is_some()).count(),
            self.passed(),
            failures.join(", "),
            runs.join(", ")
        )
    }
}

/// The seed of schedule `k` for `job` under base spec seed `base`:
/// deterministic, distinct per `(job, k)`, replayable in isolation.
#[must_use]
pub fn schedule_seed(base: u64, job: &SimJob, k: u32) -> u64 {
    base ^ job
        .fingerprint()
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(k % 63)
        ^ u64::from(k + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Runs the architectural-equivalence soak: each job once fault-free and
/// `schedules` times under derived fault seeds, all with machine checks
/// on. A fault run fails as [`SimError::FaultedRun`] when its retired
/// instruction stream differs from the reference, or surfaces its own
/// [`SimError::InvariantViolation`] / [`SimError::JobPanicked`]. Failing
/// runs never stop the rest of the batch — the report carries partial
/// results plus every failure, in job order.
#[must_use]
pub fn run_soak(jobs: &[SimJob], spec: FaultSpec, schedules: u32, threads: usize) -> SoakReport {
    let mut batch: Vec<SimJob> = Vec::with_capacity(jobs.len() * (schedules as usize + 1));
    let mut seeds: Vec<Option<u64>> = Vec::with_capacity(batch.capacity());
    for job in jobs {
        let mut reference = job.clone();
        reference.config.machine_check = true;
        reference.config.faults = None;
        batch.push(reference);
        seeds.push(None);
        for k in 0..schedules {
            let mut faulted = job.clone();
            faulted.config.machine_check = true;
            let mut s = spec;
            s.seed = schedule_seed(spec.seed, job, k);
            faulted.config.faults = Some(s);
            batch.push(faulted);
            seeds.push(Some(s.seed));
        }
    }

    let results = run_jobs_partial(&batch, threads);
    let mut report = SoakReport::default();
    // Reference fingerprints by job index into `jobs`.
    let mut references: HashMap<usize, (u64, u64)> = HashMap::new();
    let stride = schedules as usize + 1;
    for (i, (job, result)) in batch.iter().zip(results).enumerate() {
        let base_index = i / stride;
        let fault_seed = seeds[i];
        match result {
            Ok(r) => {
                let fp = r.core.retire_fingerprint;
                let mut status = "ok".to_string();
                if fault_seed.is_none() {
                    references.insert(base_index, (fp, r.core.retired_uops));
                } else {
                    match references.get(&base_index) {
                        Some(&(ref_fp, ref_retired)) => {
                            if fp != ref_fp || r.core.retired_uops != ref_retired {
                                let error = SimError::FaultedRun {
                                    job: job.label(),
                                    fault_seed: fault_seed.unwrap_or_default(),
                                    what: format!(
                                        "retired stream diverged from the fault-free run: \
                                         fingerprint {fp:#018x} vs {ref_fp:#018x}, \
                                         {} vs {ref_retired} uops retired",
                                        r.core.retired_uops
                                    ),
                                };
                                status = error.kind().to_string();
                                report.failures.push(SoakFailure {
                                    job: job.label(),
                                    fault_seed,
                                    error,
                                });
                            }
                        }
                        None => {
                            // The reference itself failed; every fault run
                            // of the job is unjudgeable.
                            let error = SimError::FaultedRun {
                                job: job.label(),
                                fault_seed: fault_seed.unwrap_or_default(),
                                what: "no reference run to compare against (it failed)".to_string(),
                            };
                            status = error.kind().to_string();
                            report.failures.push(SoakFailure {
                                job: job.label(),
                                fault_seed,
                                error,
                            });
                        }
                    }
                }
                report.runs.push(SoakRun {
                    job: job.label(),
                    fault_seed,
                    retire_fingerprint: Some(fp),
                    ipc: r.ipc(),
                    mpki: r.mpki(),
                    faults: r.faults.unwrap_or_default(),
                    status,
                });
            }
            Err(error) => {
                report.runs.push(SoakRun {
                    job: job.label(),
                    fault_seed,
                    retire_fingerprint: None,
                    ipc: 0.0,
                    mpki: 0.0,
                    faults: FaultStats::default(),
                    status: error.kind().to_string(),
                });
                report.failures.push(SoakFailure {
                    job: job.label(),
                    fault_seed,
                    error,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_default_and_overrides() {
        let d = FaultSpec::parse("default").unwrap();
        assert_eq!(d, FaultSpec::default());
        let s = FaultSpec::parse("flip=0.5,delay=7,period=128,seed=42,sabotage=1").unwrap();
        assert_eq!(s.flip_outcome, 32768);
        assert_eq!(s.delay_cycles, 7);
        assert_eq!(s.period, 128);
        assert_eq!(s.seed, 42);
        assert!(s.sabotage);
        assert_eq!(s.drop_fill, 0, "unset keys stay silent");
    }

    #[test]
    fn parse_rejects_bad_tokens() {
        for bad in ["flip", "flip=2.0", "nope=1", "delay=x"] {
            let err = FaultSpec::parse(bad).unwrap_err();
            assert!(matches!(err, SimError::InvalidConfig(_)), "{bad}: {err:?}");
            assert!(err.to_string().contains("--faults"), "actionable: {err}");
        }
    }

    #[test]
    fn injector_replays_deterministically() {
        let spec = FaultSpec {
            flip_outcome: 30000,
            ..FaultSpec::default()
        };
        let mut a = FaultInjector::new(spec);
        let mut b = FaultInjector::new(spec);
        let rolls_a: Vec<bool> = (0..64).map(|_| a.roll(30000)).collect();
        let rolls_b: Vec<bool> = (0..64).map(|_| b.roll(30000)).collect();
        assert_eq!(rolls_a, rolls_b);
        assert!(rolls_a.iter().any(|r| *r) && rolls_a.iter().any(|r| !*r));
    }

    #[test]
    fn schedule_seeds_distinct_per_job_and_index() {
        let job = SimJob {
            config: crate::SimConfig::mini_br(),
            workload: "leela_17".into(),
            params: br_workloads::WorkloadParams::default(),
            region_seed: 0,
            weight: 1.0,
            max_retired: 1000,
        };
        let mut other = job.clone();
        other.region_seed = 1;
        let s0 = schedule_seed(1, &job, 0);
        assert_eq!(s0, schedule_seed(1, &job, 0), "replayable");
        assert_ne!(s0, schedule_seed(1, &job, 1));
        assert_ne!(s0, schedule_seed(1, &other, 0));
        assert_ne!(s0, schedule_seed(2, &job, 0));
    }

    #[test]
    fn report_json_is_well_formed() {
        let mut report = SoakReport::default();
        report.runs.push(SoakRun {
            job: "a/b/r0".into(),
            fault_seed: Some(7),
            retire_fingerprint: Some(0xabc),
            ipc: 1.5,
            mpki: 3.25,
            faults: FaultStats {
                outcome_flips: 2,
                ..FaultStats::default()
            },
            status: "ok".into(),
        });
        report.failures.push(SoakFailure {
            job: "a/b/r0".into(),
            fault_seed: Some(7),
            error: SimError::InvalidConfig("x \"quoted\"".into()),
        });
        let json = report.to_json();
        assert!(json.contains("\"passed\": false"));
        assert!(json.contains("\"kind\": \"invalid_config\""));
        assert!(json.contains("\\\"quoted\\\""), "quotes escaped: {json}");
    }
}
