//! Deterministic exporters: Chrome `trace_event` JSON, JSONL, and CSV.
//!
//! Every function here is a pure `&[(label, TelemetryRun)] -> String`
//! transform. File I/O lives with the callers (the bench harness); tests
//! compare the strings directly, which is what makes the determinism
//! guarantee ("byte-identical across thread counts") checkable without
//! touching the filesystem.
//!
//! Formatting is hand-rolled (this workspace is offline and carries no
//! serde); labels pass through [`escape_json`], numbers through
//! [`crate::sample::json_f64`], so output always parses.

use crate::sample::json_f64;
use crate::TelemetryRun;

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders runs as a Chrome `trace_event` JSON document (load in
/// `chrome://tracing` or Perfetto). Each run is a process (`pid` = its
/// index, named by a `process_name` metadata event); interval samples
/// become counter (`ph:"C"`) tracks and traced events become instant
/// (`ph:"i"`) events. The time axis (`ts`) is the simulated cycle.
#[must_use]
pub fn chrome_trace(runs: &[(String, TelemetryRun)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let emit = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&ev);
    };
    for (pid, (label, run)) in runs.iter().enumerate() {
        emit(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(label)
            ),
        );
        for s in &run.samples {
            for (track, value) in [
                ("ipc", json_f64(s.ipc)),
                ("mpki", json_f64(s.mpki)),
                ("coverage_rate", json_f64(s.coverage_rate)),
                ("dce_active", s.dce_active.to_string()),
                ("queue_slots", s.queue_slots.to_string()),
            ] {
                emit(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"{track}\",\"ph\":\"C\",\"ts\":{},\"pid\":{pid},\
                         \"tid\":0,\"args\":{{\"value\":{value}}}}}",
                        s.cycle
                    ),
                );
            }
        }
        for e in &run.events {
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\"tid\":0,\
                     \"s\":\"p\",\"args\":{{\"pc\":{},\"arg\":{}}}}}",
                    e.kind.name(),
                    e.cycle,
                    e.pc,
                    e.arg
                ),
            );
        }
    }
    out.push_str("]}");
    out
}

/// Renders every run's interval samples as JSONL (one JSON object per
/// line, each tagged with its run label).
#[must_use]
pub fn samples_jsonl(runs: &[(String, TelemetryRun)]) -> String {
    let mut out = String::new();
    for (label, run) in runs {
        let label = escape_json(label);
        for s in &run.samples {
            out.push_str(&format!("{{\"job\":\"{label}\",{}}}\n", s.json_fields()));
        }
    }
    out
}

/// Renders every run's interval samples as one CSV document with a `job`
/// label column.
#[must_use]
pub fn samples_csv(runs: &[(String, TelemetryRun)]) -> String {
    let mut out = format!("job,{}\n", crate::Sample::CSV_HEADER);
    for (label, run) in runs {
        // CSV-quote the label; sample fields are all numeric.
        let quoted = format!("\"{}\"", label.replace('"', "\"\""));
        for s in &run.samples {
            out.push_str(&format!("{quoted},{}\n", s.csv_row()));
        }
    }
    out
}

/// Renders every run's traced events as JSONL.
#[must_use]
pub fn events_jsonl(runs: &[(String, TelemetryRun)]) -> String {
    let mut out = String::new();
    for (label, run) in runs {
        let label = escape_json(label);
        for e in &run.events {
            out.push_str(&format!(
                "{{\"job\":\"{label}\",\"cycle\":{},\"kind\":\"{}\",\"pc\":{},\"arg\":{}}}\n",
                e.cycle,
                e.kind.name(),
                e.pc,
                e.arg
            ));
        }
    }
    out
}

/// Renders every run's final counters, gauges, and histogram summaries as
/// one JSON document (the reconciliation surface: these totals must match
/// the simulator's own end-of-run statistics).
#[must_use]
pub fn counters_json(runs: &[(String, TelemetryRun)]) -> String {
    let mut out = String::from("{\"jobs\":[");
    for (i, (label, run)) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"job\":\"{}\",\"dropped_events\":{},\"counters\":{{",
            escape_json(label),
            run.dropped_events
        ));
        for (j, (name, v)) in run.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape_json(name)));
        }
        out.push_str("},\"gauges\":{");
        for (j, (name, v)) in run.gauges.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape_json(name)));
        }
        out.push_str("},\"histograms\":{");
        for (j, (name, h)) in run.histograms.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
                escape_json(name),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                json_f64(h.mean())
            ));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Sample, TraceEvent};

    fn run() -> TelemetryRun {
        TelemetryRun {
            samples: vec![Sample {
                cycle: 10,
                retired_uops: 5,
                ipc: 0.5,
                ..Sample::default()
            }],
            events: vec![TraceEvent {
                cycle: 7,
                kind: EventKind::ChainExtract,
                pc: 0x40,
                arg: 3,
            }],
            dropped_events: 1,
            counters: vec![("core.retired_uops".into(), 5)],
            gauges: vec![("br.cached_chains".into(), 2)],
            histograms: vec![("br.chain_len".into(), {
                let mut h = crate::Histogram::default();
                h.record(3);
                h
            })],
        }
    }

    #[test]
    fn chrome_trace_is_balanced_json() {
        let s = chrome_trace(&[("cfg \"x\"/w".into(), run())]);
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.ends_with("]}"));
        assert_eq!(
            s.matches('{').count(),
            s.matches('}').count(),
            "unbalanced braces"
        );
        assert!(s.contains("\"process_name\""));
        assert!(s.contains("\"chain_extract\""));
        assert!(s.contains("\\\"x\\\""), "label must be escaped: {s}");
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let s = samples_jsonl(&[("a".into(), run()), ("b".into(), run())]);
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        let e = events_jsonl(&[("a".into(), run())]);
        assert!(e.lines().all(|l| l.contains("\"kind\":\"chain_extract\"")));
    }

    #[test]
    fn csv_has_header_plus_rows() {
        let s = samples_csv(&[("a".into(), run())]);
        let mut lines = s.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("job,cycle,"));
        let row = lines.next().unwrap();
        assert_eq!(
            row.split(',').count(),
            header.split(',').count(),
            "column mismatch"
        );
    }

    #[test]
    fn counters_json_carries_totals() {
        let s = counters_json(&[("a".into(), run())]);
        assert!(s.contains("\"core.retired_uops\":5"));
        assert!(s.contains("\"br.cached_chains\":2"));
        assert!(s.contains("\"mean\":3"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
