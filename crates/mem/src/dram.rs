//! Banked DDR4-style DRAM timing model.
//!
//! A deliberately Ramulator-shaped substitute: per-bank open-row state,
//! row-hit/row-miss/row-conflict latencies, a bounded memory queue
//! (Table 1: 64 entries), a shared data bus, and FR-FCFS-like scheduling
//! (row hits first, then oldest). Latencies are expressed in core cycles
//! at the paper's 3.2 GHz.

/// Timing and geometry for [`Dram`].
#[derive(Clone, Copy, Debug)]
pub struct DramConfig {
    /// Number of banks.
    pub banks: usize,
    /// log2 of the row size in bytes (8 KB rows → 13).
    pub row_log2: u32,
    /// Column access latency (tCAS) in core cycles.
    pub t_cas: u64,
    /// Row activate latency (tRCD) in core cycles.
    pub t_rcd: u64,
    /// Precharge latency (tRP) in core cycles.
    pub t_rp: u64,
    /// Data-bus occupancy per transfer in core cycles.
    pub t_bus: u64,
    /// Memory queue capacity (Table 1: 64).
    pub queue_capacity: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        // DDR4-2400 timings (~14 ns each for CAS/RCD/RP) at 3.2 GHz.
        DramConfig {
            banks: 16,
            row_log2: 13,
            t_cas: 45,
            t_rcd: 45,
            t_rp: 45,
            t_bus: 4,
            queue_capacity: 64,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

#[derive(Clone, Copy, Debug)]
struct DramReq {
    id: u64,
    addr: u64,
    arrival: u64,
    is_write: bool,
}

/// Row-buffer outcome counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct DramStats {
    /// Accesses hitting the open row.
    pub row_hits: u64,
    /// Accesses to a closed bank.
    pub row_misses: u64,
    /// Accesses conflicting with a different open row.
    pub row_conflicts: u64,
    /// Read requests serviced.
    pub reads: u64,
    /// Write requests serviced.
    pub writes: u64,
}

/// A completed DRAM read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramResp {
    /// The id supplied at enqueue.
    pub id: u64,
    /// Cycle the data is available.
    pub finished: u64,
}

/// The DRAM device + controller model.
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    queue: Vec<DramReq>,
    /// In-service requests: (completion cycle, id, is_write).
    in_service: Vec<(u64, u64, bool)>,
    bus_free_at: u64,
    stats: DramStats,
}

impl Dram {
    /// Builds a DRAM model from `cfg`.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.banks.is_power_of_two(), "bank count must be 2^k");
        Dram {
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: 0
                };
                cfg.banks
            ],
            queue: Vec::new(),
            in_service: Vec::new(),
            bus_free_at: 0,
            stats: cfg_stats(),
            cfg,
        }
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let row_addr = addr >> self.cfg.row_log2;
        let bank = (row_addr as usize) & (self.cfg.banks - 1);
        let row = row_addr >> self.cfg.banks.trailing_zeros();
        (bank, row)
    }

    /// Whether the memory queue can accept another request.
    #[must_use]
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.cfg.queue_capacity
    }

    /// Enqueues a request. Returns `false` (rejecting it) if the queue is
    /// full.
    pub fn enqueue(&mut self, id: u64, addr: u64, is_write: bool, now: u64) -> bool {
        if !self.can_accept() {
            return false;
        }
        self.queue.push(DramReq {
            id,
            addr,
            arrival: now,
            is_write,
        });
        true
    }

    /// Advances the controller one cycle; returns reads whose data is now
    /// available.
    pub fn tick(&mut self, now: u64) -> Vec<DramResp> {
        let mut done = Vec::new();
        self.tick_into(now, &mut done);
        done
    }

    /// [`Self::tick`] into an existing buffer (cleared first), so the
    /// per-cycle caller never allocates.
    pub fn tick_into(&mut self, now: u64, done: &mut Vec<DramResp>) {
        done.clear();
        // Schedule: FR-FCFS — among requests whose bank is free, prefer
        // open-row hits, then oldest arrival.
        loop {
            let mut best: Option<(usize, bool)> = None; // (queue idx, row hit)
            for (i, r) in self.queue.iter().enumerate() {
                let (b, row) = self.bank_and_row(r.addr);
                if self.banks[b].busy_until > now {
                    continue;
                }
                let hit = self.banks[b].open_row == Some(row);
                match best {
                    None => best = Some((i, hit)),
                    Some((bi, bhit)) => {
                        let better =
                            (hit && !bhit) || (hit == bhit && r.arrival < self.queue[bi].arrival);
                        if better {
                            best = Some((i, hit));
                        }
                    }
                }
            }
            let Some((idx, _)) = best else { break };
            let req = self.queue.swap_remove(idx);
            let (b, row) = self.bank_and_row(req.addr);
            let bank = &mut self.banks[b];
            let access = match bank.open_row {
                Some(r) if r == row => {
                    self.stats.row_hits += 1;
                    self.cfg.t_cas
                }
                Some(_) => {
                    self.stats.row_conflicts += 1;
                    self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
                }
                None => {
                    self.stats.row_misses += 1;
                    self.cfg.t_rcd + self.cfg.t_cas
                }
            };
            bank.open_row = Some(row);
            let data_at = now + access;
            // Serialize transfers on the shared data bus.
            let bus_start = self.bus_free_at.max(data_at);
            self.bus_free_at = bus_start + self.cfg.t_bus;
            bank.busy_until = data_at;
            if req.is_write {
                self.stats.writes += 1;
            } else {
                self.stats.reads += 1;
                self.in_service
                    .push((bus_start + self.cfg.t_bus, req.id, false));
            }
        }

        self.in_service.retain(|&(finish, id, _)| {
            if finish <= now {
                done.push(DramResp { id, finished: now });
                false
            } else {
                true
            }
        });
    }

    /// Row-buffer statistics.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Outstanding requests (queued + in flight).
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.in_service.len()
    }
}

fn cfg_stats() -> DramStats {
    DramStats::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until(d: &mut Dram, id: u64, limit: u64) -> u64 {
        for now in 0..limit {
            if d.tick(now).iter().any(|r| r.id == id) {
                return now;
            }
        }
        panic!("request {id} never completed within {limit} cycles");
    }

    #[test]
    fn first_access_is_row_miss() {
        let mut d = Dram::new(DramConfig::default());
        assert!(d.enqueue(1, 0x10000, false, 0));
        let t = run_until(&mut d, 1, 1000);
        let cfg = DramConfig::default();
        assert!(t >= cfg.t_rcd + cfg.t_cas, "completed too fast: {t}");
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn same_row_hits_are_faster() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        d.enqueue(1, 0x10000, false, 0);
        let t1 = run_until(&mut d, 1, 1000);
        d.enqueue(2, 0x10040, false, t1);
        let t2 = run_until(&mut d, 2, t1 + 1000) - t1;
        assert!(t2 < t1, "row hit {t2} not faster than miss {t1}");
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        d.enqueue(1, 0, false, 0);
        let t1 = run_until(&mut d, 1, 1000);
        // Same bank (bank bits above row offset): add banks*rowsize.
        let conflict_addr = (cfg.banks as u64) << cfg.row_log2;
        d.enqueue(2, conflict_addr, false, t1);
        let t2 = run_until(&mut d, 2, t1 + 1000) - t1;
        assert!(t2 > cfg.t_rp, "conflict should pay precharge: {t2}");
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn parallel_banks_overlap() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        // Two requests to different banks enqueue at cycle 0.
        d.enqueue(1, 0, false, 0);
        d.enqueue(2, 1 << cfg.row_log2, false, 0);
        let mut finished = vec![];
        for now in 0..2000 {
            for r in d.tick(now) {
                finished.push((r.id, now));
            }
            if finished.len() == 2 {
                break;
            }
        }
        assert_eq!(finished.len(), 2);
        let spread = finished[1].1 - finished[0].1;
        assert!(
            spread <= cfg.t_bus + 1,
            "bank-parallel requests should finish near-together, spread {spread}"
        );
    }

    #[test]
    fn queue_capacity_respected() {
        let mut d = Dram::new(DramConfig {
            queue_capacity: 2,
            ..DramConfig::default()
        });
        assert!(d.enqueue(1, 0, false, 0));
        assert!(d.enqueue(2, 64, false, 0));
        assert!(!d.enqueue(3, 128, false, 0));
    }

    #[test]
    fn writes_consume_bandwidth_but_do_not_respond() {
        let mut d = Dram::new(DramConfig::default());
        d.enqueue(1, 0, true, 0);
        for now in 0..500 {
            assert!(d.tick(now).is_empty());
        }
        assert_eq!(d.stats().writes, 1);
    }
}
