//! Core configuration (paper Table 1 defaults).

/// Parameters of the out-of-order core.
#[derive(Clone, Copy, Debug)]
pub struct CoreConfig {
    /// Instruction-cache size in bytes (Table 1: 32 KB); 0 disables the
    /// I-cache model (perfect instruction supply).
    pub icache_bytes: u64,
    /// I-cache associativity.
    pub icache_ways: usize,
    /// Fetch-stall cycles on an I-cache miss (L2 service).
    pub icache_miss_latency: u64,
    /// Uops fetched per cycle (fetch breaks on a taken branch).
    pub fetch_width: usize,
    /// Uops issued to functional units per cycle.
    pub issue_width: usize,
    /// Uops retired per cycle.
    pub retire_width: usize,
    /// Reorder-buffer capacity.
    pub rob_entries: usize,
    /// Reservation-station capacity.
    pub rs_entries: usize,
    /// Number of ALUs.
    pub num_alus: usize,
    /// L1D ports usable per cycle (loads); leftovers go to the DCE.
    pub load_ports: usize,
    /// Front-end depth: cycles between fetch and issue eligibility.
    pub frontend_depth: u64,
    /// Extra cycles before fetch resumes after a misprediction redirect.
    pub redirect_latency: u64,
    /// Store-to-load forwarding latency in cycles.
    pub forward_latency: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        // Table 1: 4-wide issue, 256-entry ROB, 92-entry RS, 3.2 GHz.
        CoreConfig {
            icache_bytes: 32 * 1024,
            icache_ways: 8,
            icache_miss_latency: 15,
            fetch_width: 4,
            issue_width: 4,
            retire_width: 4,
            rob_entries: 256,
            rs_entries: 92,
            num_alus: 4,
            load_ports: 2,
            frontend_depth: 6,
            redirect_latency: 4,
            forward_latency: 2,
        }
    }
}

impl CoreConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any width or capacity is zero or the RS exceeds the ROB.
    pub fn validate(&self) {
        assert!(self.fetch_width > 0, "fetch width must be nonzero");
        assert!(self.issue_width > 0, "issue width must be nonzero");
        assert!(self.retire_width > 0, "retire width must be nonzero");
        assert!(self.rob_entries > 0, "ROB must be nonzero");
        assert!(self.rs_entries > 0, "RS must be nonzero");
        assert!(
            self.rs_entries <= self.rob_entries,
            "RS larger than ROB makes no sense"
        );
        assert!(self.num_alus > 0, "need at least one ALU");
        assert!(self.load_ports > 0, "need at least one load port");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CoreConfig::default();
        c.validate();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.rob_entries, 256);
        assert_eq!(c.rs_entries, 92);
    }

    #[test]
    #[should_panic(expected = "RS larger than ROB")]
    fn rs_bigger_than_rob_rejected() {
        CoreConfig {
            rs_entries: 300,
            ..CoreConfig::default()
        }
        .validate();
    }
}
