#!/usr/bin/env python3
"""Validate a figures --faults soak report (the JSON on stdout).

Two modes, matching the CI steps:

  check_soak.py pass REPORT.json
      The equivalence soak must have passed: no failures, every job has
      one fault-free reference plus >= 1 fault schedules, every fault
      run carries a replay seed, and at least one fault was injected.

  check_soak.py sabotage REPORT.json
      The deliberately corrupted run must have FAILED: the report names
      at least one failure of kind "invariant_violation" with a job
      label, a fault seed, and a non-empty error message (the report is
      machine-readable evidence that machine checks catch real damage).

Exit status 0 when the report matches the expected shape, 1 otherwise.
"""

import json
import sys
from collections import defaultdict
from pathlib import Path


def fail(msg: str) -> None:
    print(f"check_soak: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        report = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")
    for key in ("total_runs", "fault_runs", "passed", "failures", "runs"):
        if key not in report:
            fail(f"report missing {key!r}")
    if report["total_runs"] != len(report["runs"]):
        fail("total_runs disagrees with runs[]")
    return report


def check_pass(report: dict) -> None:
    if not report["passed"] or report["failures"]:
        fail(f"soak reported failures: {report['failures']}")
    if report["fault_runs"] < 1:
        fail("no fault schedules ran")
    by_job = defaultdict(lambda: {"reference": 0, "faulted": 0})
    for run in report["runs"]:
        if run["status"] != "ok":
            fail(f"run not ok in a passing report: {run}")
        if run["fault_seed"] is None:
            by_job[run["job"]]["reference"] += 1
        else:
            by_job[run["job"]]["faulted"] += 1
    for job, counts in by_job.items():
        if counts["reference"] != 1:
            fail(f"{job}: expected exactly one reference run, got {counts}")
        if counts["faulted"] < 1:
            fail(f"{job}: no fault schedules ran")
    if sum(run["faults_injected"] for run in report["runs"]) == 0:
        fail("no faults were injected anywhere — the soak tested nothing")
    print(
        f"check_soak: OK: {len(by_job)} jobs, "
        f"{report['fault_runs']} fault runs, all equivalent"
    )


def check_sabotage(report: dict) -> None:
    if report["passed"]:
        fail("sabotaged soak passed — machine checks caught nothing")
    violations = [
        f for f in report["failures"] if f.get("kind") == "invariant_violation"
    ]
    if not violations:
        fail(f"no invariant_violation among failures: {report['failures']}")
    for v in violations:
        if not v.get("job"):
            fail(f"violation does not name its job: {v}")
        if v.get("fault_seed") is None:
            fail(f"violation carries no replay seed: {v}")
        if not v.get("error"):
            fail(f"violation has an empty error message: {v}")
    # Partial-failure contract: the fault-free reference runs still
    # completed and reported results despite the sabotaged runs dying.
    references_ok = [
        run
        for run in report["runs"]
        if run["fault_seed"] is None and run["status"] == "ok"
    ]
    if not references_ok:
        fail("no surviving reference results — batch was not partial")
    print(
        f"check_soak: OK: {len(violations)} invariant violation(s) "
        f"caught and reported, {len(references_ok)} clean runs survived"
    )


def main() -> None:
    if len(sys.argv) != 3 or sys.argv[1] not in ("pass", "sabotage"):
        fail("usage: check_soak.py {pass|sabotage} REPORT.json")
    report = load(sys.argv[2])
    if sys.argv[1] == "pass":
        check_pass(report)
    else:
        check_sabotage(report)


if __name__ == "__main__":
    main()
